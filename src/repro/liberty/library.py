"""Liberty library data model: library / cell / pin / timing arc.

Binds the raw AST to typed objects and to the LVF / LVF2 statistical
tables.  A library parsed from text can be queried for the fitted
distribution of any (cell, arc, quantity, slew, load) point and written
back to `.lib` text; the round-trip preserves LVF2 attributes and the
backward-compatibility semantics of paper §3.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LibertySemanticError
from repro.liberty.ast import Group
from repro.liberty.lvf2_attrs import (
    LVF2_PREFIXES,
    PREFIX_ALIASES,
    LVF2Tables,
)
from repro.liberty.lvf_attrs import BASE_QUANTITIES, LVF_PREFIXES, LVFTables
from repro.liberty.parser import parse_liberty
from repro.liberty.tables import Table, TableTemplate
from repro.liberty.writer import write_liberty

__all__ = ["Library", "Cell", "Pin", "TimingArc", "read_library"]

#: Library-level simple attributes preserved verbatim on round-trip.
_LIBRARY_ATTRS = (
    "technology",
    "delay_model",
    "time_unit",
    "voltage_unit",
    "current_unit",
    "pulling_resistance_unit",
    "leakage_power_unit",
    "nom_process",
    "nom_temperature",
    "nom_voltage",
    "default_max_transition",
)


def _match_stat_table(name: str) -> tuple[str, str] | None:
    """Split a LUT group name into ``(prefix, base)`` if statistical.

    ``ocv_std_dev_cell_rise`` -> ``("ocv_std_dev", "cell_rise")``;
    returns ``None`` for non-statistical group names.
    """
    prefixes = tuple(LVF_PREFIXES) + tuple(LVF2_PREFIXES) + tuple(
        PREFIX_ALIASES
    )
    for prefix in prefixes:
        for base in BASE_QUANTITIES:
            if name == f"{prefix}_{base}":
                return (PREFIX_ALIASES.get(prefix, prefix), base)
    return None


@dataclass
class TimingArc:
    """One timing arc: related pin, sense/type, statistical tables.

    Attributes:
        related_pin: Driving input pin of the arc.
        timing_sense: ``positive_unate`` / ``negative_unate`` /
            ``non_unate``.
        timing_type: Liberty timing type (``combinational`` ...).
        when: Optional state-dependent condition.
        tables: Per-base-quantity LVF2 table sets.
    """

    related_pin: str
    timing_sense: str = "positive_unate"
    timing_type: str = "combinational"
    when: str | None = None
    tables: dict[str, LVF2Tables] = field(default_factory=dict)

    @property
    def is_statistical(self) -> bool:
        return any(
            tables.lvf.has_variation for tables in self.tables.values()
        )

    @property
    def is_lvf2(self) -> bool:
        return any(tables.is_lvf2 for tables in self.tables.values())

    # ------------------------------------------------------------------
    @classmethod
    def from_group(
        cls, group: Group, templates: dict[str, TableTemplate]
    ) -> "TimingArc":
        if group.name != "timing":
            raise LibertySemanticError(
                f"expected timing group, found {group.name}"
            )
        arc = cls(
            related_pin=group.get("related_pin", "") or "",
            timing_sense=group.get("timing_sense", "positive_unate")
            or "positive_unate",
            timing_type=group.get("timing_type", "combinational")
            or "combinational",
            when=group.get("when"),
        )
        nominal_tables: dict[str, Table] = {}
        stat_tables: dict[tuple[str, str], Table] = {}
        for child in group.groups():
            template = templates.get(child.label)
            if child.name in BASE_QUANTITIES:
                nominal_tables[child.name] = Table.from_group(
                    child, template
                )
                continue
            match = _match_stat_table(child.name)
            if match is not None:
                stat_tables[match] = Table.from_group(child, template)
        for base, nominal in nominal_tables.items():
            lvf = LVFTables(
                base=base,
                nominal=nominal,
                mean_shift=stat_tables.get(("ocv_mean_shift", base)),
                std_dev=stat_tables.get(("ocv_std_dev", base)),
                skewness=stat_tables.get(("ocv_skewness", base)),
            )
            arc.tables[base] = LVF2Tables(
                lvf=lvf,
                mean_shift1=stat_tables.get(("ocv_mean_shift1", base)),
                std_dev1=stat_tables.get(("ocv_std_dev1", base)),
                skewness1=stat_tables.get(("ocv_skewness1", base)),
                weight2=stat_tables.get(("ocv_weight2", base)),
                mean_shift2=stat_tables.get(("ocv_mean_shift2", base)),
                std_dev2=stat_tables.get(("ocv_std_dev2", base)),
                skewness2=stat_tables.get(("ocv_skewness2", base)),
            )
        return arc

    def to_group(self) -> Group:
        group = Group("timing", [])
        group.set("related_pin", self.related_pin)
        group.set("timing_sense", self.timing_sense)
        group.set("timing_type", self.timing_type)
        if self.when is not None:
            group.set("when", self.when)
        for base in BASE_QUANTITIES:
            tables = self.tables.get(base)
            if tables is None:
                continue
            lvf = tables.lvf
            group.add_group(lvf.nominal.to_group(base))
            pairs = [
                ("ocv_mean_shift", lvf.mean_shift),
                ("ocv_std_dev", lvf.std_dev),
                ("ocv_skewness", lvf.skewness),
                ("ocv_mean_shift1", tables.mean_shift1),
                ("ocv_std_dev1", tables.std_dev1),
                ("ocv_skewness1", tables.skewness1),
                ("ocv_weight2", tables.weight2),
                ("ocv_mean_shift2", tables.mean_shift2),
                ("ocv_std_dev2", tables.std_dev2),
                ("ocv_skewness2", tables.skewness2),
            ]
            for prefix, table in pairs:
                if table is not None:
                    group.add_group(table.to_group(f"{prefix}_{base}"))
        return group


@dataclass
class Pin:
    """A cell pin with direction, loading and (for outputs) arcs."""

    name: str
    direction: str = "input"
    capacitance: float | None = None
    function: str | None = None
    max_capacitance: float | None = None
    arcs: list[TimingArc] = field(default_factory=list)

    @classmethod
    def from_group(
        cls, group: Group, templates: dict[str, TableTemplate]
    ) -> "Pin":
        pin = cls(
            name=group.label,
            direction=group.get("direction", "input") or "input",
            function=group.get("function"),
        )
        capacitance = group.get("capacitance")
        if capacitance is not None:
            pin.capacitance = float(capacitance)
        max_cap = group.get("max_capacitance")
        if max_cap is not None:
            pin.max_capacitance = float(max_cap)
        for child in group.groups("timing"):
            pin.arcs.append(TimingArc.from_group(child, templates))
        return pin

    def to_group(self) -> Group:
        group = Group("pin", [self.name])
        group.set("direction", self.direction)
        if self.capacitance is not None:
            group.set("capacitance", f"{self.capacitance:.6g}")
        if self.max_capacitance is not None:
            group.set("max_capacitance", f"{self.max_capacitance:.6g}")
        if self.function is not None:
            group.set("function", self.function)
        for arc in self.arcs:
            group.add_group(arc.to_group())
        return group

    def arc_to(self, related_pin: str) -> TimingArc:
        """First arc driven by ``related_pin``.

        Raises:
            LibertySemanticError: When absent.
        """
        for arc in self.arcs:
            if arc.related_pin == related_pin:
                return arc
        raise LibertySemanticError(
            f"pin {self.name} has no arc from {related_pin}"
        )


@dataclass
class Cell:
    """A standard cell: pins, area, and footprint metadata."""

    name: str
    area: float = 0.0
    pins: dict[str, Pin] = field(default_factory=dict)

    @classmethod
    def from_group(
        cls, group: Group, templates: dict[str, TableTemplate]
    ) -> "Cell":
        cell = cls(name=group.label)
        area = group.get("area")
        if area is not None:
            cell.area = float(area)
        for child in group.groups("pin"):
            pin = Pin.from_group(child, templates)
            cell.pins[pin.name] = pin
        return cell

    def to_group(self) -> Group:
        group = Group("cell", [self.name])
        group.set("area", f"{self.area:.6g}")
        for pin in self.pins.values():
            group.add_group(pin.to_group())
        return group

    @property
    def input_pins(self) -> list[Pin]:
        return [p for p in self.pins.values() if p.direction == "input"]

    @property
    def output_pins(self) -> list[Pin]:
        return [p for p in self.pins.values() if p.direction == "output"]

    def arcs(self) -> list[tuple[Pin, TimingArc]]:
        """All (output pin, arc) pairs of the cell."""
        return [
            (pin, arc) for pin in self.output_pins for arc in pin.arcs
        ]


@dataclass
class Library:
    """A Liberty library with templates and cells."""

    name: str
    attributes: dict[str, str] = field(default_factory=dict)
    templates: dict[str, TableTemplate] = field(default_factory=dict)
    cells: dict[str, Cell] = field(default_factory=dict)

    @classmethod
    def from_group(cls, group: Group) -> "Library":
        if group.name != "library":
            raise LibertySemanticError(
                f"top-level group must be 'library', found {group.name!r}"
            )
        library = cls(name=group.label)
        for attr in group.attributes():
            if attr.name in _LIBRARY_ATTRS:
                library.attributes[attr.name] = attr.value
        for child in group.groups():
            if child.name in ("lu_table_template", "ocv_table_template"):
                template = TableTemplate.from_group(child)
                library.templates[template.name] = template
            elif child.name == "cell":
                cell = Cell.from_group(child, library.templates)
                library.cells[cell.name] = cell
        return library

    def to_group(self) -> Group:
        group = Group("library", [self.name])
        for name, value in self.attributes.items():
            group.set(name, value)
        for template in self.templates.values():
            group.add_group(template.to_group())
        for cell in self.cells.values():
            group.add_group(cell.to_group())
        return group

    def to_text(self) -> str:
        """Serialise to Liberty text."""
        return write_liberty(self.to_group())

    def cell(self, name: str) -> Cell:
        """Cell lookup with a helpful error.

        Raises:
            LibertySemanticError: When the cell is absent.
        """
        try:
            return self.cells[name]
        except KeyError:
            raise LibertySemanticError(
                f"library {self.name!r} has no cell {name!r}"
            ) from None

    @property
    def is_lvf2(self) -> bool:
        """True when any arc carries LVF2 extension tables."""
        return any(
            arc.is_lvf2
            for cell in self.cells.values()
            for _, arc in cell.arcs()
        )


def read_library(source: str) -> Library:
    """Parse Liberty text into a :class:`Library`."""
    return Library.from_group(parse_liberty(source))
