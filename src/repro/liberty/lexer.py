"""Liberty tokenizer.

Handles the lexical quirks of real `.lib` files: ``/* */`` block
comments, ``//`` and ``#`` line comments, double-quoted strings with
backslash-newline continuations (used for long ``values`` lists),
bare-word atoms containing dots/units, and the six punctuation tokens
``( ) { } : ;`` plus the comma.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.errors import LibertySyntaxError

__all__ = ["Token", "TokenKind", "tokenize"]


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    ATOM = "atom"  # bare word / number / unit expression
    STRING = "string"  # double-quoted, quotes stripped
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    COLON = ":"
    SEMI = ";"
    COMMA = ","
    EOF = "eof"


_PUNCT = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    ":": TokenKind.COLON,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
}

#: Characters that terminate a bare atom.
_ATOM_TERMINATORS = set(' \t\r\n"(){}:;,')


@dataclass(frozen=True)
class Token:
    """One lexical token with its 1-based source position."""

    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> Iterator[Token]:
    """Yield tokens from Liberty source text, ending with EOF.

    Raises:
        LibertySyntaxError: On unterminated strings or block comments.
    """
    position = 0
    line = 1
    column = 1
    length = len(source)

    def advance(count: int) -> None:
        nonlocal position, line, column
        for _ in range(count):
            if position < length and source[position] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            position += 1

    while position < length:
        char = source[position]
        # Whitespace (including escaped newlines between tokens).
        if char in " \t\r\n":
            advance(1)
            continue
        if char == "\\" and position + 1 < length and source[
            position + 1
        ] in "\r\n":
            advance(2)
            continue
        # Comments.
        if source.startswith("/*", position):
            end = source.find("*/", position + 2)
            if end < 0:
                raise LibertySyntaxError(
                    "unterminated block comment", line, column
                )
            advance(end + 2 - position)
            continue
        if source.startswith("//", position) or char == "#":
            newline = source.find("\n", position)
            advance((newline if newline >= 0 else length) - position)
            continue
        # Strings with backslash-newline continuation.
        if char == '"':
            start_line, start_column = line, column
            advance(1)
            pieces: list[str] = []
            while True:
                if position >= length:
                    raise LibertySyntaxError(
                        "unterminated string", start_line, start_column
                    )
                current = source[position]
                if current == '"':
                    advance(1)
                    break
                if current == "\\" and position + 1 < length:
                    following = source[position + 1]
                    if following in "\r\n":
                        # Line continuation inside a quoted value list.
                        advance(2)
                        if (
                            following == "\r"
                            and position < length
                            and source[position] == "\n"
                        ):
                            advance(1)
                        continue
                    pieces.append(following)
                    advance(2)
                    continue
                pieces.append(current)
                advance(1)
            yield Token(
                TokenKind.STRING, "".join(pieces), start_line, start_column
            )
            continue
        # Punctuation.
        if char in _PUNCT:
            yield Token(_PUNCT[char], char, line, column)
            advance(1)
            continue
        # Bare atom: numbers, identifiers, unit expressions like 1ns,
        # arithmetic like 0.5*VDD.
        start_line, start_column = line, column
        start = position
        while (
            position < length
            and source[position] not in _ATOM_TERMINATORS
            and not source.startswith("/*", position)
            and not source.startswith("//", position)
        ):
            advance(1)
        atom = source[start:position]
        if not atom:
            raise LibertySyntaxError(
                f"unexpected character {char!r}", start_line, start_column
            )
        yield Token(TokenKind.ATOM, atom, start_line, start_column)

    yield Token(TokenKind.EOF, "", line, column)
