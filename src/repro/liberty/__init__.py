"""Liberty format substrate with the LVF2 extension (paper §2.2, §3.3)."""

from repro.liberty.ast import ComplexAttribute, Group, SimpleAttribute
from repro.liberty.library import Cell, Library, Pin, TimingArc, read_library
from repro.liberty.lvf2_attrs import LVF2_PREFIXES, LVF2Tables, lvf2_attr_name
from repro.liberty.lvf_attrs import (
    BASE_QUANTITIES,
    LVF_PREFIXES,
    LVFTables,
    lvf_attr_name,
)
from repro.liberty.lvfk_attrs import (
    LVFkTables,
    lvfk_attr_name,
    parse_lvfk_timing_group,
)
from repro.liberty.parser import parse_group, parse_liberty
from repro.liberty.validate import Diagnostic, Severity, validate_library
from repro.liberty.tables import Table, TableTemplate, parse_number_list
from repro.liberty.writer import format_float, write_liberty

__all__ = [
    "BASE_QUANTITIES",
    "Cell",
    "ComplexAttribute",
    "Group",
    "LVF2Tables",
    "LVF2_PREFIXES",
    "LVFTables",
    "LVF_PREFIXES",
    "LVFkTables",
    "Library",
    "Pin",
    "SimpleAttribute",
    "Table",
    "TableTemplate",
    "TimingArc",
    "Diagnostic",
    "Severity",
    "format_float",
    "lvf2_attr_name",
    "lvf_attr_name",
    "lvfk_attr_name",
    "parse_group",
    "parse_lvfk_timing_group",
    "parse_liberty",
    "parse_number_list",
    "read_library",
    "validate_library",
    "write_liberty",
]
