"""LVF2 Liberty extension: the seven new attributes (paper §3.3).

Per base quantity, LVF2 adds

- ``ocv_mean_shift1_<base>``  (mu1 - nominal; defaults to LVF mean shift)
- ``ocv_std_dev1_<base>``     (sigma1; defaults to LVF std dev)
- ``ocv_skewness1_<base>``    (gamma1; defaults to LVF skewness)
- ``ocv_weight2_<base>``      (lambda in [0, 1]; defaults to 0)
- ``ocv_mean_shift2_<base>``  (mu2 - nominal)
- ``ocv_std_dev2_<base>``     (sigma2)
- ``ocv_skewness2_<base>``    (gamma2)

The inheritance defaults implement backward compatibility (Eq. 10): a
conventional LVF library read through this resolver yields
``LVF2Model(lambda=0, theta1=theta_LVF)``, which *is* the LVF
distribution.  The paper spells the first attribute
``ocv_mean_shfit1`` (sic) in one spot; the parser accepts the typo and
the writer always emits the correct spelling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import LibertySemanticError
from repro.liberty.lvf_attrs import LVFTables
from repro.liberty.tables import Table
from repro.models.lvf import LVFModel
from repro.models.lvf2 import LVF2Model

__all__ = ["LVF2_PREFIXES", "LVF2Tables", "lvf2_attr_name"]

#: LVF2 LUT prefixes in library-definition order (§3.3).
LVF2_PREFIXES = (
    "ocv_mean_shift1",
    "ocv_std_dev1",
    "ocv_skewness1",
    "ocv_weight2",
    "ocv_mean_shift2",
    "ocv_std_dev2",
    "ocv_skewness2",
)

#: Accepted alternative spellings seen in the wild (paper's own typo).
PREFIX_ALIASES = {"ocv_mean_shfit1": "ocv_mean_shift1"}


def lvf2_attr_name(prefix: str, base: str) -> str:
    """Compose an LVF2 LUT group name, e.g. ``ocv_weight2_cell_rise``."""
    if prefix in PREFIX_ALIASES:
        prefix = PREFIX_ALIASES[prefix]
    if prefix not in LVF2_PREFIXES:
        raise LibertySemanticError(f"unknown LVF2 prefix {prefix!r}")
    return f"{prefix}_{base}"


@dataclass(frozen=True)
class LVF2Tables:
    """LVF tables plus the seven LVF2 extension LUTs for one quantity.

    All extension tables are optional; absent tables take the §3.3
    defaults (inherit from LVF for component 1, zero weight for
    component 2).
    """

    lvf: LVFTables
    mean_shift1: Table | None = None
    std_dev1: Table | None = None
    skewness1: Table | None = None
    weight2: Table | None = None
    mean_shift2: Table | None = None
    std_dev2: Table | None = None
    skewness2: Table | None = None

    def __post_init__(self) -> None:
        shape = self.lvf.nominal.values.shape
        for name in (
            "mean_shift1",
            "std_dev1",
            "skewness1",
            "weight2",
            "mean_shift2",
            "std_dev2",
            "skewness2",
        ):
            table = getattr(self, name)
            if table is not None and table.values.shape != shape:
                raise LibertySemanticError(
                    f"ocv_{name}_{self.base} shape {table.values.shape} "
                    f"!= nominal shape {shape}"
                )
        if self.weight2 is not None:
            weights = self.weight2.values
            if np.any((weights < 0.0) | (weights > 1.0)):
                raise LibertySemanticError(
                    f"ocv_weight2_{self.base} values must lie in [0, 1]"
                )
        second_tables = (self.mean_shift2, self.std_dev2, self.skewness2)
        has_weight = self.weight2 is not None and np.any(
            self.weight2.values > 0.0
        )
        if has_weight and any(table is None for table in second_tables):
            raise LibertySemanticError(
                f"{self.base}: ocv_weight2 is nonzero but the second-"
                "component LUTs (mean_shift2/std_dev2/skewness2) are "
                "incomplete"
            )

    @property
    def base(self) -> str:
        return self.lvf.base

    @property
    def is_lvf2(self) -> bool:
        """True when any extension LUT is present."""
        return any(
            getattr(self, name) is not None
            for name in (
                "mean_shift1",
                "std_dev1",
                "skewness1",
                "weight2",
                "mean_shift2",
                "std_dev2",
                "skewness2",
            )
        )

    # ------------------------------------------------------------------
    def _component1(self, i: int, j: int | None) -> LVFModel:
        """First component with §3.3 default inheritance from LVF."""
        nominal = self.lvf.nominal.value_at(i, j)
        shift_table = (
            self.mean_shift1
            if self.mean_shift1 is not None
            else self.lvf.mean_shift
        )
        std_table = (
            self.std_dev1 if self.std_dev1 is not None else self.lvf.std_dev
        )
        skew_table = (
            self.skewness1
            if self.skewness1 is not None
            else self.lvf.skewness
        )
        if std_table is None:
            raise LibertySemanticError(
                f"{self.base}: neither ocv_std_dev1 nor ocv_std_dev "
                "present; no first-component sigma available"
            )
        mean = nominal + (
            shift_table.value_at(i, j) if shift_table is not None else 0.0
        )
        gamma = skew_table.value_at(i, j) if skew_table is not None else 0.0
        return LVFModel(
            mean, std_table.value_at(i, j), gamma, nominal=nominal
        )

    def lvf2_at(self, i: int, j: int | None = None) -> LVF2Model:
        """Resolve the LVF2 distribution at grid point ``(i, j)``.

        Implements Eq. 10: with no extension LUTs (or zero weight at
        this grid point) the result is the plain-LVF distribution as an
        ``lambda = 0`` LVF2 model.
        """
        first = self._component1(i, j)
        weight = (
            self.weight2.value_at(i, j) if self.weight2 is not None else 0.0
        )
        if weight <= 0.0:
            return LVF2Model(0.0, first, None, nominal=first.nominal)
        nominal = self.lvf.nominal.value_at(i, j)
        assert self.mean_shift2 is not None
        assert self.std_dev2 is not None
        assert self.skewness2 is not None
        second = LVFModel(
            nominal + self.mean_shift2.value_at(i, j),
            self.std_dev2.value_at(i, j),
            self.skewness2.value_at(i, j),
            nominal=nominal,
        )
        return LVF2Model(weight, first, second, nominal=nominal)

    # ------------------------------------------------------------------
    @classmethod
    def from_models(
        cls,
        base: str,
        nominal: Table,
        models: np.ndarray,
    ) -> "LVF2Tables":
        """Build the full LUT set from a grid of fitted LVF2 models.

        Args:
            base: Base quantity name.
            nominal: Nominal LUT (defines grid shape and indices).
            models: Object array of :class:`LVF2Model`, same shape as
                the nominal value grid.

        Returns:
            Tables with both the backward-compatible LVF moment LUTs
            (moment-matched overall distribution) and the LVF2
            extension LUTs.  When every model is collapsed the
            extension LUTs are omitted entirely — a legacy LVF library.
        """
        grid = np.asarray(models, dtype=object)
        if grid.shape != nominal.values.shape:
            raise LibertySemanticError(
                f"models shape {grid.shape} != nominal shape "
                f"{nominal.values.shape}"
            )

        def table_of(extract) -> Table:
            values = np.empty(grid.shape, dtype=float)
            for index in np.ndindex(grid.shape):
                values[index] = extract(
                    grid[index], nominal.values[index]
                )
            return Table(
                nominal.template, nominal.index_1, nominal.index_2, values
            )

        # Backward-compatible LVF view: overall moment match (Eq. 10
        # read in reverse — what a legacy tool should see).
        lvf = LVFTables(
            base=base,
            nominal=nominal,
            mean_shift=table_of(
                lambda m, nom: m.to_lvf().mu - nom
            ),
            std_dev=table_of(lambda m, nom: m.to_lvf().sigma),
            skewness=table_of(lambda m, nom: m.to_lvf().gamma),
        )
        all_collapsed = all(
            grid[index].is_collapsed for index in np.ndindex(grid.shape)
        )
        if all_collapsed:
            return cls(lvf=lvf)

        def second(attr: str, default: float):
            def extract(model: LVF2Model, nom: float) -> float:
                if model.component2 is None:
                    return default
                if attr == "mean_shift":
                    return model.component2.mu - nom
                return getattr(model.component2, attr)

            return extract

        return cls(
            lvf=lvf,
            mean_shift1=table_of(lambda m, nom: m.component1.mu - nom),
            std_dev1=table_of(lambda m, nom: m.component1.sigma),
            skewness1=table_of(lambda m, nom: m.component1.gamma),
            weight2=table_of(lambda m, nom: m.weight),
            mean_shift2=table_of(second("mean_shift", 0.0)),
            std_dev2=table_of(second("sigma", 1.0)),
            skewness2=table_of(second("gamma", 0.0)),
        )
