"""Semantic validation (lint) for Liberty libraries.

Characterisation flows emit libraries consumed by third-party STA
tools; a library that parses but carries inconsistent statistical data
fails silently at signoff.  :func:`validate_library` walks a parsed
:class:`~repro.liberty.library.Library` and reports every violation of
the LVF / LVF2 contracts as a typed diagnostic:

- LUT indices must be strictly increasing;
- ``ocv_std_dev`` (and ``ocv_std_dev1/2``) values must be positive;
- ``ocv_skewness`` values must be SN-attainable (|gamma| < 0.9953);
- ``ocv_weight2`` must lie in [0, 1], and any nonzero weight needs the
  full second-component LUT set (§3.3);
- nominal delays/transitions must be positive;
- every LUT of an arc must share the arc's grid shape;
- referenced table templates must exist.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.liberty.library import Library, TimingArc
from repro.liberty.lvf2_attrs import LVF2Tables
from repro.liberty.tables import Table
from repro.stats.skew_normal import MAX_SKEWNESS

__all__ = ["Severity", "Diagnostic", "validate_library"]


class Severity(enum.Enum):
    """Diagnostic severity, in increasing order of gravity."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Diagnostic:
    """One validation finding.

    Attributes:
        severity: How bad it is.
        location: Dotted path, e.g. ``NAND2_X1.Y.A.cell_rise``.
        message: Human-readable description.
    """

    severity: Severity
    location: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity.value}] {self.location}: {self.message}"


def _check_indices(
    table: Table, location: str
) -> Iterator[Diagnostic]:
    for axis_name, axis in (
        ("index_1", table.index_1),
        ("index_2", table.index_2),
    ):
        if not axis:
            continue
        diffs = np.diff(axis)
        if np.any(diffs <= 0.0):
            yield Diagnostic(
                Severity.ERROR,
                location,
                f"{axis_name} is not strictly increasing: {axis}",
            )
        if any(value < 0.0 for value in axis):
            yield Diagnostic(
                Severity.ERROR,
                location,
                f"{axis_name} contains negative breakpoints",
            )


def _check_positive(
    table: Table | None, location: str, what: str
) -> Iterator[Diagnostic]:
    if table is None:
        return
    if np.any(table.values <= 0.0):
        count = int(np.count_nonzero(table.values <= 0.0))
        yield Diagnostic(
            Severity.ERROR,
            location,
            f"{what} has {count} non-positive entries",
        )


def _check_skewness(
    table: Table | None, location: str, what: str
) -> Iterator[Diagnostic]:
    if table is None:
        return
    excess = np.abs(table.values) >= MAX_SKEWNESS
    if np.any(excess):
        worst = float(np.max(np.abs(table.values)))
        yield Diagnostic(
            Severity.WARNING,
            location,
            f"{what} exceeds the SN-attainable bound "
            f"({worst:.4f} >= {MAX_SKEWNESS:.4f}); "
            "tools will clamp it",
        )


def _check_arc_tables(
    tables: LVF2Tables, location: str, grid_shape: tuple[int, ...]
) -> Iterator[Diagnostic]:
    lvf = tables.lvf
    yield from _check_indices(lvf.nominal, location)
    yield from _check_positive(lvf.nominal, location, "nominal")
    yield from _check_positive(lvf.std_dev, location, "ocv_std_dev")
    yield from _check_positive(
        tables.std_dev1, location, "ocv_std_dev1"
    )
    yield from _check_skewness(lvf.skewness, location, "ocv_skewness")
    yield from _check_skewness(
        tables.skewness1, location, "ocv_skewness1"
    )
    yield from _check_skewness(
        tables.skewness2, location, "ocv_skewness2"
    )
    if tables.weight2 is not None:
        weights = tables.weight2.values
        nonzero = np.any(weights > 0.0)
        if nonzero:
            yield from _check_positive(
                tables.std_dev2, location, "ocv_std_dev2"
            )
        if not nonzero:
            yield Diagnostic(
                Severity.INFO,
                location,
                "ocv_weight2 is all-zero; the LVF2 extension LUTs are "
                "redundant (plain LVF suffices, Eq. 10)",
            )
    if lvf.nominal.values.shape != grid_shape:
        yield Diagnostic(
            Severity.ERROR,
            location,
            f"grid shape {lvf.nominal.values.shape} differs from the "
            f"arc's first quantity {grid_shape}",
        )


def _validate_arc(
    arc: TimingArc, location: str
) -> Iterator[Diagnostic]:
    if not arc.related_pin:
        yield Diagnostic(
            Severity.ERROR, location, "timing arc has no related_pin"
        )
    if not arc.tables:
        yield Diagnostic(
            Severity.WARNING,
            location,
            "timing arc carries no timing tables",
        )
        return
    first_shape = next(iter(arc.tables.values())).lvf.nominal.values.shape
    if not arc.is_statistical:
        yield Diagnostic(
            Severity.WARNING,
            location,
            "arc has nominal tables but no LVF variation data",
        )
    for base, tables in arc.tables.items():
        yield from _check_arc_tables(
            tables, f"{location}.{base}", first_shape
        )


def validate_library(library: Library) -> list[Diagnostic]:
    """Validate a parsed library; returns all diagnostics found.

    An empty list means the library satisfies every LVF/LVF2 contract
    this linter knows about.
    """
    diagnostics: list[Diagnostic] = []
    if not library.cells:
        diagnostics.append(
            Diagnostic(
                Severity.WARNING, library.name, "library has no cells"
            )
        )
    for cell in library.cells.values():
        if not cell.output_pins:
            diagnostics.append(
                Diagnostic(
                    Severity.WARNING,
                    cell.name,
                    "cell has no output pins",
                )
            )
        for pin, arc in cell.arcs():
            location = f"{cell.name}.{pin.name}.{arc.related_pin}"
            if (
                arc.related_pin
                and arc.related_pin not in cell.pins
            ):
                diagnostics.append(
                    Diagnostic(
                        Severity.ERROR,
                        location,
                        f"related_pin {arc.related_pin!r} is not a pin "
                        "of the cell",
                    )
                )
            diagnostics.extend(_validate_arc(arc, location))
    return diagnostics
