"""Liberty lookup tables (LUTs) and templates.

LVF characterises every timing arc over a slew × load grid (8×8 in the
paper).  Each quantity — nominal delay, ``ocv_mean_shift``,
``ocv_std_dev``, ``ocv_skewness`` and the seven LVF2 extensions — is
one LUT.  This module parses LUT groups to numpy arrays, serialises
them back, and provides the bilinear interpolation STA engines use to
query between characterised grid points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import LibertySemanticError
from repro.liberty.ast import Group
from repro.liberty.writer import format_float

__all__ = ["TableTemplate", "Table", "parse_number_list"]


def parse_number_list(text: str) -> tuple[float, ...]:
    """Parse a Liberty quoted number list: ``"0.01, 0.02, 0.04"``."""
    cleaned = text.replace("\\\n", " ").strip()
    if not cleaned:
        return ()
    try:
        return tuple(
            float(piece) for piece in cleaned.replace(",", " ").split()
        )
    except ValueError as error:
        raise LibertySemanticError(
            f"malformed number list {text!r}: {error}"
        ) from None


@dataclass(frozen=True)
class TableTemplate:
    """A ``lu_table_template``: named index axes shared across LUTs.

    Attributes:
        name: Template name, e.g. ``"delay_template_8x8"``.
        variable_1: Meaning of axis 1 (``input_net_transition``).
        variable_2: Meaning of axis 2 (``total_output_net_capacitance``)
            or ``None`` for 1-D templates.
        index_1: Default axis-1 breakpoints.
        index_2: Default axis-2 breakpoints (empty for 1-D).
    """

    name: str
    variable_1: str
    variable_2: str | None
    index_1: tuple[float, ...]
    index_2: tuple[float, ...] = ()

    @classmethod
    def from_group(cls, group: Group) -> "TableTemplate":
        if group.name not in ("lu_table_template", "ocv_table_template"):
            raise LibertySemanticError(
                f"not a table template group: {group.name}"
            )
        index_1 = group.get_complex("index_1")
        if not index_1:
            raise LibertySemanticError(
                f"template {group.label!r} missing index_1"
            )
        index_2 = group.get_complex("index_2")
        return cls(
            name=group.label,
            variable_1=group.get("variable_1", "") or "",
            variable_2=group.get("variable_2"),
            index_1=parse_number_list(index_1[0]),
            index_2=parse_number_list(index_2[0]) if index_2 else (),
        )

    def to_group(self) -> Group:
        group = Group("lu_table_template", [self.name])
        group.set("variable_1", self.variable_1)
        if self.variable_2 is not None:
            group.set("variable_2", self.variable_2)
        group.set_complex(
            "index_1", [", ".join(format_float(v) for v in self.index_1)]
        )
        if self.index_2:
            group.set_complex(
                "index_2",
                [", ".join(format_float(v) for v in self.index_2)],
            )
        return group

    @property
    def shape(self) -> tuple[int, ...]:
        if self.index_2:
            return (len(self.index_1), len(self.index_2))
        return (len(self.index_1),)


@dataclass(frozen=True)
class Table:
    """One LUT: index axes plus a value grid.

    ``values`` has shape ``(len(index_1),)`` for 1-D tables or
    ``(len(index_1), len(index_2))`` for 2-D tables, with axis 1 the
    input slew and axis 2 the output load in the timing-arc case.
    """

    template: str
    index_1: tuple[float, ...]
    index_2: tuple[float, ...]
    values: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=float)
        expected = (
            (len(self.index_1), len(self.index_2))
            if self.index_2
            else (len(self.index_1),)
        )
        if values.shape != expected:
            raise LibertySemanticError(
                f"table values shape {values.shape} does not match "
                f"indices {expected}"
            )
        object.__setattr__(self, "values", values)

    # ------------------------------------------------------------------
    @classmethod
    def from_group(
        cls, group: Group, template: TableTemplate | None = None
    ) -> "Table":
        """Parse a LUT group (``cell_rise``, ``ocv_std_dev_...``)."""
        index_1_raw = group.get_complex("index_1")
        index_2_raw = group.get_complex("index_2")
        index_1 = (
            parse_number_list(index_1_raw[0])
            if index_1_raw
            else (template.index_1 if template else ())
        )
        index_2 = (
            parse_number_list(index_2_raw[0])
            if index_2_raw
            else (template.index_2 if template else ())
        )
        if not index_1:
            raise LibertySemanticError(
                f"table {group.name}({group.label}) has no index_1 and "
                "no template to inherit one from"
            )
        rows = group.get_complex("values")
        if rows is None:
            raise LibertySemanticError(
                f"table {group.name}({group.label}) missing values"
            )
        parsed_rows = [parse_number_list(row) for row in rows]
        if index_2:
            if len(parsed_rows) == 1 and len(parsed_rows[0]) == len(
                index_1
            ) * len(index_2):
                flat = np.asarray(parsed_rows[0])
                values = flat.reshape(len(index_1), len(index_2))
            else:
                values = np.asarray(parsed_rows, dtype=float)
        else:
            values = np.asarray(parsed_rows[0], dtype=float)
        return cls(
            template=group.label or (template.name if template else ""),
            index_1=tuple(index_1),
            index_2=tuple(index_2),
            values=values,
        )

    def to_group(
        self, group_name: str, *, include_indices: bool = True
    ) -> Group:
        """Serialise as a LUT group named ``group_name``."""
        group = Group(group_name, [self.template] if self.template else [])
        if include_indices:
            group.set_complex(
                "index_1",
                [", ".join(format_float(v) for v in self.index_1)],
            )
            if self.index_2:
                group.set_complex(
                    "index_2",
                    [", ".join(format_float(v) for v in self.index_2)],
                )
        if self.index_2:
            rows = [
                ", ".join(format_float(v) for v in row)
                for row in self.values
            ]
        else:
            rows = [", ".join(format_float(v) for v in self.values)]
        group.set_complex("values", rows)
        return group

    # ------------------------------------------------------------------
    @property
    def is_2d(self) -> bool:
        return bool(self.index_2)

    def value_at(self, i: int, j: int | None = None) -> float:
        """Exact grid-point value."""
        if self.is_2d:
            if j is None:
                raise LibertySemanticError("2-D table needs two indices")
            return float(self.values[i, j])
        return float(self.values[i])

    def interpolate(self, x1: float, x2: float | None = None) -> float:
        """Bilinear (or linear) interpolation with edge clamping.

        Matches STA-tool behaviour: queries outside the characterised
        grid are clamped to the boundary rather than extrapolated.
        """
        if self.is_2d:
            if x2 is None:
                raise LibertySemanticError(
                    "2-D table needs two query coordinates"
                )
            return _bilinear(
                np.asarray(self.index_1),
                np.asarray(self.index_2),
                self.values,
                x1,
                x2,
            )
        axis = np.asarray(self.index_1)
        x = float(np.clip(x1, axis[0], axis[-1]))
        return float(np.interp(x, axis, self.values))

    def map(self, function) -> "Table":
        """New table with ``function`` applied to the value grid."""
        return Table(
            self.template,
            self.index_1,
            self.index_2,
            function(self.values.copy()),
        )

    @classmethod
    def filled(
        cls,
        template: TableTemplate,
        fill: float = 0.0,
    ) -> "Table":
        """Constant-valued table over a template's axes."""
        return cls(
            template.name,
            template.index_1,
            template.index_2,
            np.full(template.shape, fill),
        )


def _bilinear(
    axis1: np.ndarray,
    axis2: np.ndarray,
    grid: np.ndarray,
    x1: float,
    x2: float,
) -> float:
    """Clamped bilinear interpolation on a rectangular grid."""
    x1 = float(np.clip(x1, axis1[0], axis1[-1]))
    x2 = float(np.clip(x2, axis2[0], axis2[-1]))
    i = int(np.clip(np.searchsorted(axis1, x1) - 1, 0, axis1.size - 2))
    j = int(np.clip(np.searchsorted(axis2, x2) - 1, 0, axis2.size - 2))
    t = (x1 - axis1[i]) / (axis1[i + 1] - axis1[i])
    u = (x2 - axis2[j]) / (axis2[j + 1] - axis2[j])
    return float(
        (1 - t) * (1 - u) * grid[i, j]
        + t * (1 - u) * grid[i + 1, j]
        + (1 - t) * u * grid[i, j + 1]
        + t * u * grid[i + 1, j + 1]
    )
