"""Liberty abstract syntax tree.

Liberty (the `.lib` format, Synopsys [4]) is a nested-group language:

    library (my_lib) {
        time_unit : "1ns";
        lu_table_template (tmpl_8x8) {
            variable_1 : input_net_transition;
            index_1 ("0.01, 0.02, ...");
        }
        cell (NAND2_X1) { ... }
    }

Three statement kinds exist inside a group: *simple attributes*
(``name : value;``), *complex attributes* (``name (v1, v2, ...);``) and
nested *groups* (``name (args) { ... }``).  The AST keeps statements in
source order so a parse → write round-trip is stable.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.errors import LibertySemanticError

__all__ = ["SimpleAttribute", "ComplexAttribute", "Group", "Statement"]


@dataclass
class SimpleAttribute:
    """``name : value;`` — value is kept verbatim (unquoted).

    ``line`` is the 1-based source line of the statement (0 for nodes
    built programmatically, e.g. by the writer-side builders).
    """

    name: str
    value: str
    line: int = field(default=0, compare=False)

    def format_value(self) -> str:
        """Value as written back to Liberty text (re-quoted if needed)."""
        text = self.value
        needs_quotes = any(
            ch in text for ch in " \t,;(){}"
        ) or text == ""
        return f'"{text}"' if needs_quotes else text


@dataclass
class ComplexAttribute:
    """``name (v1, v2, ...);`` — values kept verbatim per argument."""

    name: str
    values: list[str] = field(default_factory=list)
    line: int = field(default=0, compare=False)


@dataclass
class Group:
    """``name (args) { statements }``."""

    name: str
    args: list[str] = field(default_factory=list)
    statements: list["Statement"] = field(default_factory=list)
    line: int = field(default=0, compare=False)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        """First argument — the conventional group name (cell name...)."""
        return self.args[0] if self.args else ""

    def groups(self, name: str | None = None) -> Iterator["Group"]:
        """Iterate nested groups, optionally filtered by group type."""
        for statement in self.statements:
            if isinstance(statement, Group):
                if name is None or statement.name == name:
                    yield statement

    def group(self, name: str, label: str | None = None) -> "Group":
        """First nested group of type ``name`` (and label, if given).

        Raises:
            LibertySemanticError: When absent.
        """
        for candidate in self.groups(name):
            if label is None or candidate.label == label:
                return candidate
        where = f"{name}({label})" if label else name
        raise LibertySemanticError(
            f"group {self.name}({self.label}) has no {where} subgroup"
        )

    def find_group(
        self, name: str, label: str | None = None
    ) -> "Group | None":
        """Like :meth:`group` but returns ``None`` when absent."""
        for candidate in self.groups(name):
            if label is None or candidate.label == label:
                return candidate
        return None

    def attributes(self) -> Iterator[SimpleAttribute]:
        for statement in self.statements:
            if isinstance(statement, SimpleAttribute):
                yield statement

    def complex_attributes(
        self, name: str | None = None
    ) -> Iterator[ComplexAttribute]:
        for statement in self.statements:
            if isinstance(statement, ComplexAttribute):
                if name is None or statement.name == name:
                    yield statement

    def get(self, name: str, default: str | None = None) -> str | None:
        """Value of the first simple attribute ``name``, else default."""
        for attribute in self.attributes():
            if attribute.name == name:
                return attribute.value
        return default

    def get_complex(self, name: str) -> list[str] | None:
        """Values of the first complex attribute ``name``, else None."""
        for attribute in self.complex_attributes(name):
            return attribute.values
        return None

    # ------------------------------------------------------------------
    # Mutation helpers (used by the writer-side builders)
    # ------------------------------------------------------------------
    def set(self, name: str, value: str) -> None:
        """Set (or replace) a simple attribute."""
        for attribute in self.attributes():
            if attribute.name == name:
                attribute.value = value
                return
        self.statements.append(SimpleAttribute(name, value))

    def set_complex(self, name: str, values: list[str]) -> None:
        """Set (or replace) a complex attribute."""
        for attribute in self.complex_attributes(name):
            attribute.values = list(values)
            return
        self.statements.append(ComplexAttribute(name, list(values)))

    def add_group(self, group: "Group") -> "Group":
        self.statements.append(group)
        return group

    def remove(self, name: str) -> bool:
        """Remove the first statement (any kind) called ``name``."""
        for index, statement in enumerate(self.statements):
            if statement.name == name:
                del self.statements[index]
                return True
        return False


Statement = SimpleAttribute | ComplexAttribute | Group
