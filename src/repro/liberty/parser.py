"""Recursive-descent parser for Liberty text.

Grammar (statement terminators are permissive, as real-world `.lib`
files frequently omit semicolons after groups):

    file        := group
    group       := ATOM '(' args? ')' '{' statement* '}' ';'?
    statement   := group | simple_attr | complex_attr | define
    simple_attr := ATOM ':' value (';' | NEWLINE-ish)
    complex_attr:= ATOM '(' args? ')' ';'?
    value       := (ATOM | STRING)+        -- joined with spaces
    args        := (ATOM | STRING) (',' (ATOM | STRING))*
"""

from __future__ import annotations

from repro.errors import LibertySyntaxError
from repro.liberty.ast import ComplexAttribute, Group, SimpleAttribute
from repro.liberty.lexer import Token, TokenKind, tokenize

__all__ = ["parse_liberty", "parse_group"]


class _Parser:
    def __init__(self, source: str) -> None:
        self._tokens = list(tokenize(source))
        self._index = 0

    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _expect(self, kind: TokenKind) -> Token:
        token = self.current
        if token.kind is not kind:
            raise LibertySyntaxError(
                f"expected {kind.value!r}, found {token.text!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _skip_semicolons(self) -> None:
        while self.current.kind is TokenKind.SEMI:
            self._advance()

    # ------------------------------------------------------------------
    def parse_file(self) -> Group:
        """Parse a whole file: exactly one top-level group."""
        self._skip_semicolons()
        group = self.parse_statement()
        if not isinstance(group, Group):
            raise LibertySyntaxError(
                "Liberty file must start with a group "
                f"(found attribute {group.name!r})",
                1,
                1,
            )
        self._skip_semicolons()
        tail = self.current
        if tail.kind is not TokenKind.EOF:
            raise LibertySyntaxError(
                f"trailing content {tail.text!r} after top-level group",
                tail.line,
                tail.column,
            )
        return group

    def parse_statement(self) -> Group | SimpleAttribute | ComplexAttribute:
        name_token = self._expect(TokenKind.ATOM)
        name = name_token.text
        if self.current.kind is TokenKind.COLON:
            self._advance()
            return self._parse_simple(name, name_token)
        if self.current.kind is TokenKind.LPAREN:
            return self._parse_parenthesised(name, name_token)
        raise LibertySyntaxError(
            f"expected ':' or '(' after {name!r}",
            self.current.line,
            self.current.column,
        )

    def _parse_simple(
        self, name: str, name_token: Token
    ) -> SimpleAttribute:
        pieces: list[str] = []
        while self.current.kind in (TokenKind.ATOM, TokenKind.STRING):
            pieces.append(self._advance().text)
        if not pieces:
            raise LibertySyntaxError(
                f"attribute {name!r} has no value",
                name_token.line,
                name_token.column,
            )
        self._skip_semicolons()
        return SimpleAttribute(
            name, " ".join(pieces), line=name_token.line
        )

    def _parse_args(self) -> list[str]:
        self._expect(TokenKind.LPAREN)
        args: list[str] = []
        while self.current.kind is not TokenKind.RPAREN:
            if self.current.kind in (TokenKind.ATOM, TokenKind.STRING):
                args.append(self._advance().text)
            elif self.current.kind is TokenKind.COMMA:
                self._advance()
            else:
                raise LibertySyntaxError(
                    f"unexpected {self.current.text!r} in argument list",
                    self.current.line,
                    self.current.column,
                )
        self._expect(TokenKind.RPAREN)
        return args

    def _parse_parenthesised(
        self, name: str, name_token: Token
    ) -> Group | ComplexAttribute:
        args = self._parse_args()
        if self.current.kind is TokenKind.LBRACE:
            self._advance()
            group = Group(name, args, line=name_token.line)
            self._skip_semicolons()
            while self.current.kind is not TokenKind.RBRACE:
                if self.current.kind is TokenKind.EOF:
                    raise LibertySyntaxError(
                        f"unclosed group {name!r}",
                        name_token.line,
                        name_token.column,
                    )
                group.statements.append(self.parse_statement())
                self._skip_semicolons()
            self._expect(TokenKind.RBRACE)
            self._skip_semicolons()
            return group
        self._skip_semicolons()
        return ComplexAttribute(name, args, line=name_token.line)


def parse_liberty(source: str) -> Group:
    """Parse Liberty source text into its top-level group.

    Raises:
        LibertySyntaxError: With line/column on any malformed input.
    """
    return _Parser(source).parse_file()


def parse_group(source: str) -> Group | SimpleAttribute | ComplexAttribute:
    """Parse a single statement (useful for snippets in tests)."""
    parser = _Parser(source)
    statement = parser.parse_statement()
    return statement
