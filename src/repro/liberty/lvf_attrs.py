"""LVF attribute naming and moment-LUT groups (paper §2.2).

For each base timing quantity (``cell_rise``, ``cell_fall``,
``rise_transition``, ``fall_transition``) LVF stores four LUTs:

- ``<base>``                      — nominal values
- ``ocv_mean_shift_<base>``       — mean minus nominal
- ``ocv_std_dev_<base>``          — standard deviation
- ``ocv_skewness_<base>``         — skewness

and ``mean = nominal + mean_shift``.  This module owns the naming
conventions and the grid-point extraction of a fitted
:class:`~repro.models.lvf.LVFModel` from the LUT set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import LibertySemanticError
from repro.liberty.tables import Table
from repro.models.lvf import LVFModel

__all__ = [
    "BASE_QUANTITIES",
    "LVF_PREFIXES",
    "LVFTables",
    "lvf_attr_name",
]

#: The four base quantities characterised per timing arc.
BASE_QUANTITIES = (
    "cell_rise",
    "cell_fall",
    "rise_transition",
    "fall_transition",
)

#: LVF moment-LUT prefixes, in (mean_shift, std_dev, skewness) order.
LVF_PREFIXES = ("ocv_mean_shift", "ocv_std_dev", "ocv_skewness")


def lvf_attr_name(prefix: str, base: str) -> str:
    """Compose an LVF LUT group name, e.g. ``ocv_std_dev_cell_rise``."""
    return f"{prefix}_{base}"


@dataclass(frozen=True)
class LVFTables:
    """The conventional LVF LUT set for one base quantity.

    Attributes:
        base: Base quantity name (``cell_rise`` ...).
        nominal: Nominal-value LUT.
        mean_shift: ``ocv_mean_shift`` LUT (``None`` -> all zero).
        std_dev: ``ocv_std_dev`` LUT.
        skewness: ``ocv_skewness`` LUT (``None`` -> all zero).
    """

    base: str
    nominal: Table
    mean_shift: Table | None
    std_dev: Table | None
    skewness: Table | None

    def __post_init__(self) -> None:
        shape = self.nominal.values.shape
        for name in ("mean_shift", "std_dev", "skewness"):
            table = getattr(self, name)
            if table is not None and table.values.shape != shape:
                raise LibertySemanticError(
                    f"{lvf_attr_name('ocv_' + name, self.base)} shape "
                    f"{table.values.shape} != nominal shape {shape}"
                )

    @property
    def has_variation(self) -> bool:
        """True when statistical (LVF) data is present at all."""
        return self.std_dev is not None

    def _value(self, table: Table | None, i: int, j: int | None) -> float:
        if table is None:
            return 0.0
        return table.value_at(i, j)

    def lvf_at(self, i: int, j: int | None = None) -> LVFModel:
        """The LVF skew-normal at grid point ``(i, j)``.

        Raises:
            LibertySemanticError: When no ``ocv_std_dev`` LUT exists —
                a nominal-only library has no statistical model.
        """
        if self.std_dev is None:
            raise LibertySemanticError(
                f"{self.base}: no ocv_std_dev LUT; "
                "library carries no variation data"
            )
        nominal = self.nominal.value_at(i, j)
        mean = nominal + self._value(self.mean_shift, i, j)
        sigma = self.std_dev.value_at(i, j)
        gamma = self._value(self.skewness, i, j)
        return LVFModel(mean, sigma, gamma, nominal=nominal)

    def moment_grids(self) -> dict[str, np.ndarray]:
        """All moment grids as arrays (zeros where LUTs are absent)."""
        shape = self.nominal.values.shape
        def grid(table: Table | None) -> np.ndarray:
            return (
                table.values.copy()
                if table is not None
                else np.zeros(shape)
            )

        return {
            "nominal": self.nominal.values.copy(),
            "mean_shift": grid(self.mean_shift),
            "std_dev": grid(self.std_dev),
            "skewness": grid(self.skewness),
        }
