"""Liberty serialiser.

Writes an AST back to `.lib` text with conventional formatting:
two-space indentation, one statement per line, long complex-attribute
value lists (``values``, ``index_1`` ...) broken with backslash
continuations the way commercial characterisation tools emit them.
"""

from __future__ import annotations

from repro.liberty.ast import ComplexAttribute, Group, SimpleAttribute
from repro.runtime import telemetry

__all__ = ["write_liberty", "format_float"]

#: Complex attributes whose arguments are quoted number lists.
_QUOTED_LIST_ATTRS = {"values", "index_1", "index_2", "index_3"}
#: Wrap quoted value lists at this many characters.
_WRAP_COLUMN = 78


def format_float(value: float, precision: int = 6) -> str:
    """Format a float the Liberty way: fixed significant digits.

    Uses ``repr``-free shortest-ish formatting so LUT round-trips are
    stable: ``0.1 -> "0.1"``, ``1e-05 -> "1e-05"``.
    """
    text = f"{value:.{precision}g}"
    return text


def _format_complex(attribute: ComplexAttribute, indent: str) -> str:
    name = attribute.name
    if name in _QUOTED_LIST_ATTRS:
        pieces = [f'"{value}"' for value in attribute.values]
        single = f"{indent}{name} ({', '.join(pieces)});"
        if len(single) <= _WRAP_COLUMN or len(pieces) <= 1:
            return single
        # One quoted row per line, continuation-escaped.
        joiner = ", \\\n" + indent + " " * (len(name) + 2)
        return f"{indent}{name} ({joiner.join(pieces)});"
    rendered = []
    for value in attribute.values:
        needs_quotes = any(ch in value for ch in " \t,();{}") or value == ""
        rendered.append(f'"{value}"' if needs_quotes else value)
    return f"{indent}{name} ({', '.join(rendered)});"


def _write_group(group: Group, depth: int, lines: list[str]) -> None:
    indent = "  " * depth
    args = ", ".join(group.args)
    lines.append(f"{indent}{group.name} ({args}) {{")
    child_indent = "  " * (depth + 1)
    for statement in group.statements:
        if isinstance(statement, Group):
            _write_group(statement, depth + 1, lines)
        elif isinstance(statement, SimpleAttribute):
            lines.append(
                f"{child_indent}{statement.name} : "
                f"{statement.format_value()};"
            )
        elif isinstance(statement, ComplexAttribute):
            lines.append(_format_complex(statement, child_indent))
        else:  # pragma: no cover - exhaustive statement kinds
            raise TypeError(f"unknown statement {statement!r}")
    lines.append(f"{indent}}}")


def write_liberty(group: Group) -> str:
    """Serialise ``group`` (typically a ``library``) to Liberty text."""
    with telemetry.span(
        "liberty.serialize", stage="export", group=group.name
    ):
        lines: list[str] = []
        _write_group(group, 0, lines)
        lines.append("")
        text = "\n".join(lines)
    telemetry.counter_inc("liberty.serialized_bytes", len(text))
    return text
