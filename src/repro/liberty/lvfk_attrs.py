"""Generalised k-component Liberty extension (paper §3.3, last remark).

"Although LVF2 assumes only two Gaussian components, one can easily
extend the library to support more components by following similar
attribute naming conventions."  This module does exactly that: for
component ``k >= 2`` the LUT names are

    ocv_weight<k>_<base>
    ocv_mean_shift<k>_<base>
    ocv_std_dev<k>_<base>
    ocv_skewness<k>_<base>

with component 1 keeping the LVF2 convention (suffix ``1``, defaults
inherited from plain LVF).  The resolver produces a
:class:`~repro.models.lvfk.LVFkModel` per grid point; the emitter
writes a fitted k-component model grid back to a ``timing`` group.

The LVF2 path (:mod:`repro.liberty.lvf2_attrs`) remains the primary,
strictly-validated format; this extension interoperates with it — a
k=2 LVFk group is exactly an LVF2 group.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.errors import LibertySemanticError
from repro.liberty.ast import Group
from repro.liberty.lvf_attrs import BASE_QUANTITIES, LVFTables
from repro.liberty.tables import Table, TableTemplate
from repro.models.lvf import LVFModel
from repro.models.lvfk import LVFkModel

__all__ = ["LVFkTables", "lvfk_attr_name", "parse_lvfk_timing_group"]

_STAT_RE = re.compile(
    r"^ocv_(mean_shift|std_dev|skewness|weight)(\d*)_(.+)$"
)


def lvfk_attr_name(kind: str, component: int, base: str) -> str:
    """Compose a k-component LUT name, e.g. ``ocv_weight3_cell_rise``.

    Args:
        kind: ``mean_shift`` / ``std_dev`` / ``skewness`` / ``weight``.
        component: 1-based component index (``weight`` needs >= 2).
        base: Base quantity (``cell_rise`` ...).
    """
    if kind not in ("mean_shift", "std_dev", "skewness", "weight"):
        raise LibertySemanticError(f"unknown LUT kind {kind!r}")
    if component < 1 or (kind == "weight" and component < 2):
        raise LibertySemanticError(
            f"invalid component {component} for kind {kind!r}"
        )
    return f"ocv_{kind}{component}_{base}"


@dataclass(frozen=True)
class LVFkTables:
    """Arbitrary-order mixture LUT set for one base quantity.

    Attributes:
        lvf: The conventional LVF tables (component-1 defaults).
        components: ``{k: {"mean_shift"/"std_dev"/"skewness"/"weight":
            Table}}`` for k >= 1.  Component 1 has no weight (it takes
            the remainder); absent component-1 LUTs inherit from LVF.
    """

    lvf: LVFTables
    components: dict[int, dict[str, Table]]

    def __post_init__(self) -> None:
        shape = self.lvf.nominal.values.shape
        for index, tables in self.components.items():
            for kind, table in tables.items():
                if table.values.shape != shape:
                    raise LibertySemanticError(
                        f"ocv_{kind}{index}_{self.lvf.base} shape "
                        f"{table.values.shape} != grid {shape}"
                    )
            if index >= 2:
                missing = {
                    "weight",
                    "mean_shift",
                    "std_dev",
                    "skewness",
                } - set(tables)
                if missing:
                    raise LibertySemanticError(
                        f"component {index} of {self.lvf.base} is "
                        f"missing LUTs: {sorted(missing)}"
                    )

    @property
    def order(self) -> int:
        """Highest component index present (1 = plain LVF)."""
        return max(self.components, default=1)

    def _component1(self, i: int, j: int | None) -> LVFModel:
        nominal = self.lvf.nominal.value_at(i, j)
        own = self.components.get(1, {})

        def pick(kind: str, fallback: Table | None) -> Table | None:
            return own.get(kind, fallback)

        shift = pick("mean_shift", self.lvf.mean_shift)
        std = pick("std_dev", self.lvf.std_dev)
        skew = pick("skewness", self.lvf.skewness)
        if std is None:
            raise LibertySemanticError(
                f"{self.lvf.base}: no sigma LUT for component 1"
            )
        return LVFModel(
            nominal + (shift.value_at(i, j) if shift else 0.0),
            std.value_at(i, j),
            skew.value_at(i, j) if skew else 0.0,
            nominal=nominal,
        )

    def lvfk_at(self, i: int, j: int | None = None) -> LVFkModel:
        """Resolve the k-component mixture at grid point ``(i, j)``."""
        nominal = self.lvf.nominal.value_at(i, j)
        components = [self._component1(i, j)]
        weights = []
        for index in sorted(k for k in self.components if k >= 2):
            tables = self.components[index]
            weight = tables["weight"].value_at(i, j)
            if weight <= 0.0:
                continue
            weights.append(weight)
            components.append(
                LVFModel(
                    nominal + tables["mean_shift"].value_at(i, j),
                    tables["std_dev"].value_at(i, j),
                    tables["skewness"].value_at(i, j),
                    nominal=nominal,
                )
            )
        total_extra = sum(weights)
        if total_extra >= 1.0:
            raise LibertySemanticError(
                f"{self.lvf.base}@({i},{j}): component weights sum to "
                f"{total_extra:.4f} >= 1"
            )
        all_weights = (1.0 - total_extra, *weights)
        return LVFkModel(all_weights, tuple(components))


def parse_lvfk_timing_group(
    group: Group,
    base: str,
    templates: dict[str, TableTemplate] | None = None,
) -> LVFkTables:
    """Extract the k-component LUT set of ``base`` from a timing group.

    Raises:
        LibertySemanticError: If the nominal LUT is missing or any
            component's LUT set is incomplete.
    """
    if base not in BASE_QUANTITIES:
        raise LibertySemanticError(f"unknown base quantity {base!r}")
    templates = templates or {}
    nominal_group = group.find_group(base)
    if nominal_group is None:
        raise LibertySemanticError(
            f"timing group has no {base} nominal LUT"
        )
    nominal = Table.from_group(
        nominal_group, templates.get(nominal_group.label)
    )
    plain: dict[str, Table] = {}
    components: dict[int, dict[str, Table]] = {}
    for child in group.groups():
        match = _STAT_RE.match(child.name)
        if match is None or match.group(3) != base:
            continue
        kind, index_text, _ = match.groups()
        table = Table.from_group(child, templates.get(child.label))
        if index_text == "":
            plain[kind] = table
        else:
            index = int(index_text)
            components.setdefault(index, {})[kind] = table
    lvf = LVFTables(
        base=base,
        nominal=nominal,
        mean_shift=plain.get("mean_shift"),
        std_dev=plain.get("std_dev"),
        skewness=plain.get("skewness"),
    )
    return LVFkTables(lvf=lvf, components=components)


def lvfk_models_to_group(
    base: str,
    nominal: Table,
    models: np.ndarray,
    group: Group,
) -> None:
    """Append the k-component LUTs of a fitted model grid to ``group``.

    Args:
        base: Base quantity name.
        nominal: Nominal LUT (defines the grid).
        models: Object grid of :class:`LVFkModel`.
        group: Target ``timing`` group (mutated in place).
    """
    grid = np.asarray(models, dtype=object)
    if grid.shape != nominal.values.shape:
        raise LibertySemanticError(
            f"models shape {grid.shape} != nominal shape "
            f"{nominal.values.shape}"
        )
    order = max(
        grid[index].n_components for index in np.ndindex(grid.shape)
    )
    group.add_group(nominal.to_group(base))

    def table_of(extract) -> Table:
        values = np.empty(grid.shape)
        for index in np.ndindex(grid.shape):
            values[index] = extract(grid[index], nominal.values[index])
        return Table(
            nominal.template, nominal.index_1, nominal.index_2, values
        )

    def component(model: LVFkModel, k: int) -> LVFModel | None:
        ordered = sorted(
            zip(model.weights, model.components),
            key=lambda pair: pair[1].mu,
        )
        if k - 1 < len(ordered):
            return ordered[k - 1][1]
        return None

    def weight_of(model: LVFkModel, k: int) -> float:
        ordered = sorted(
            zip(model.weights, model.components),
            key=lambda pair: pair[1].mu,
        )
        if k - 1 < len(ordered):
            return ordered[k - 1][0]
        return 0.0

    for k in range(1, order + 1):
        def shift(model, nom, k=k):
            comp = component(model, k)
            return (comp.mu - nom) if comp else 0.0

        def std(model, nom, k=k):
            comp = component(model, k)
            return comp.sigma if comp else 1.0

        def skew(model, nom, k=k):
            comp = component(model, k)
            return comp.gamma if comp else 0.0

        group.add_group(
            table_of(shift).to_group(
                lvfk_attr_name("mean_shift", k, base)
            )
        )
        group.add_group(
            table_of(std).to_group(lvfk_attr_name("std_dev", k, base))
        )
        group.add_group(
            table_of(skew).to_group(
                lvfk_attr_name("skewness", k, base)
            )
        )
        if k >= 2:
            group.add_group(
                table_of(
                    lambda model, nom, k=k: weight_of(model, k)
                ).to_group(lvfk_attr_name("weight", k, base))
            )
