"""Mean-shift importance sampling (the ISLE shape).

One pilot phase finds the failure direction, one fixed mean-shifted
proposal spends the rest of the budget:

1. **Pilot** — nominal samples locate the failure region.  With
   observed failures the shift targets their (likelihood-weighted)
   mean; in the far tail, where a pilot sees no failures at all, the
   top fraction of the pilot by delay stands in — the same
   "stochastic logical effort" move ISLE uses to aim its proposal
   without ever observing a failure.
2. **Estimation** — samples from the shifted proposal, reweighted by
   the likelihood ratio.  The estimate is the mean of
   ``w_i * 1{t_i > T}``; the Kish effective sample size of the
   weights is reported so a mis-aimed proposal (weight collapse) is
   visible in the result, not silently wrong.

For raw sampler targets the engine first fits a surrogate model to
the pilot batch (see :func:`repro.yield_est.problem.ensure_shiftable`)
and importance-samples the surrogate — a stated validity limit
recorded in the diagnostics.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.yield_est.base import (
    YieldEstimator,
    _select_shift,
    _WeightedAccumulator,
    register_estimator,
)
from repro.yield_est.result import TracePoint, YieldEstimate

__all__ = ["MeanShiftISEstimator"]


@register_estimator
class MeanShiftISEstimator(YieldEstimator):
    """One pilot, one shifted proposal, likelihood-ratio weights.

    Args:
        batch_size: Estimation-phase simulator calls per batch.
        pilot_fraction: Fraction of the budget spent locating the
            failure direction (clamped to leave at least one
            estimation batch).
        top_fraction: Pilot fraction (by delay) used to aim the shift
            when the pilot observes no failures.
        surrogate: Model family fitted to raw-sampler targets before
            importance sampling (``LVF2`` default, LVF/Gaussian
            fallback ladder).
    """

    name = "is"

    def __init__(
        self,
        *,
        batch_size: int = 8192,
        pilot_fraction: float = 0.25,
        top_fraction: float = 0.05,
        surrogate: str = "LVF2",
    ) -> None:
        if batch_size < 1:
            raise ParameterError(
                f"batch size must be >= 1, got {batch_size}"
            )
        if not 0.0 < pilot_fraction < 1.0:
            raise ParameterError(
                f"pilot fraction must lie in (0, 1), got {pilot_fraction}"
            )
        if not 0.0 < top_fraction <= 1.0:
            raise ParameterError(
                f"top fraction must lie in (0, 1], got {top_fraction}"
            )
        self.batch_size = batch_size
        self.pilot_fraction = pilot_fraction
        self.top_fraction = top_fraction
        self.surrogate = surrogate

    def _run(
        self, problem, budget: int, rng: np.random.Generator
    ) -> YieldEstimate:
        from repro.yield_est.problem import ensure_shiftable

        trace: list[TracePoint] = []
        problem, pilot_batch, diagnostics = ensure_shiftable(
            problem, budget=budget, rng=rng, surrogate=self.surrogate
        )
        used = pilot_batch.n if pilot_batch is not None else 0
        if pilot_batch is None:
            n_pilot = max(
                min(int(budget * self.pilot_fraction), budget - 1), 1
            )
            pilot_batch = problem.sample(n_pilot, rng)
            used += n_pilot
        pilot_failures = float(
            np.mean(pilot_batch.values > problem.threshold)
        )
        trace.append(
            TracePoint(
                n_samples=used,
                estimate=pilot_failures,
                std_error=0.0,
                phase="pilot",
            )
        )
        shift = _select_shift(
            pilot_batch,
            problem.threshold,
            problem.nominal_center(),
            top_fraction=self.top_fraction,
        )
        shift_norm = float(np.linalg.norm(np.atleast_1d(shift)))
        accumulator = _WeightedAccumulator()
        while used < budget:
            size = min(self.batch_size, budget - used)
            batch = problem.sample(size, rng, shift=shift)
            weights = batch.weights()
            contributions = weights * (
                batch.values > problem.threshold
            )
            accumulator.add(contributions)
            used += size
            trace.append(
                TracePoint(
                    n_samples=used,
                    estimate=accumulator.estimate,
                    std_error=accumulator.std_error,
                    phase="estimate",
                    shift=shift_norm,
                )
            )
        diagnostics = {
            **diagnostics,
            "batch_size": self.batch_size,
            "shift_norm": shift_norm,
            "pilot_failure_rate": pilot_failures,
        }
        return self._build_estimate(
            problem,
            accumulator,
            budget=budget,
            n_samples=used,
            exhausted=accumulator.n == 0,
            trace=trace,
            diagnostics=diagnostics,
        )
