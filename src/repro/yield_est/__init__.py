"""Variance-reduced yield estimation for far-tail speed binning.

The paper's 3-sigma yield metric reads the golden Monte-Carlo sample
set directly, which caps it at the tail resolution ``1/n`` of that
set.  This package estimates ``P(t > T)`` at 4-sigma-and-beyond
targets behind one interface (the OpenYield estimator-zoo shape, with
ISLE's mean-shift proposal math):

- ``mc`` — :class:`~repro.yield_est.mc.MonteCarloEstimator`, the
  unbiased golden baseline;
- ``is`` — :class:`~repro.yield_est.shift.MeanShiftISEstimator`,
  pilot-aimed mean-shift importance sampling with ESS diagnostics;
- ``adaptive-is`` —
  :class:`~repro.yield_est.adaptive.AdaptiveISEstimator`,
  cross-entropy level adaptation that re-centers the proposal on the
  failure region.

Engines consume fitted analytic models, ISLE-style latent simulators,
and raw sampler callables (see :mod:`repro.yield_est.problem`), are
fully seeded (same seed, byte-identical
:meth:`~repro.yield_est.result.YieldEstimate.to_json`), and report
through the :mod:`repro.runtime.telemetry` registry (``yield.estimate``
spans, ``yield.samples`` metric).
"""

from repro.yield_est.adaptive import AdaptiveISEstimator
from repro.yield_est.base import (
    YieldEstimator,
    available_estimators,
    effective_sample_size,
    estimate_yield,
    get_estimator,
    register_estimator,
)
from repro.yield_est.mc import MonteCarloEstimator
from repro.yield_est.problem import (
    DensityProblem,
    LatentProblem,
    SampleBatch,
    SamplerProblem,
    YieldProblem,
    as_problem,
    ensure_shiftable,
)
from repro.yield_est.result import RESULT_SCHEMA, TracePoint, YieldEstimate
from repro.yield_est.shift import MeanShiftISEstimator

__all__ = [
    "AdaptiveISEstimator",
    "DensityProblem",
    "LatentProblem",
    "MeanShiftISEstimator",
    "MonteCarloEstimator",
    "RESULT_SCHEMA",
    "SampleBatch",
    "SamplerProblem",
    "TracePoint",
    "YieldEstimate",
    "YieldEstimator",
    "YieldProblem",
    "as_problem",
    "available_estimators",
    "effective_sample_size",
    "ensure_shiftable",
    "estimate_yield",
    "get_estimator",
    "register_estimator",
]
