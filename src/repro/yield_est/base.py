"""Estimator interface, registry, and the shared weighted numerics.

The engine surface mirrors the timing-model registry: every engine is
a :class:`YieldEstimator` subclass registered by name, so the CLI and
experiments select engines by string.  ``estimate()`` takes anything
:func:`repro.yield_est.problem.as_problem` understands — a fitted
model, a latent simulator, a raw sampler callable or a prepared
:class:`~repro.yield_est.problem.YieldProblem` — plus the delay
threshold, a total simulator-call budget and a seed, and returns a
:class:`~repro.yield_est.result.YieldEstimate`.

Everything statistical that more than one engine needs lives here:
the running weighted-mean accumulator (estimate, variance, ESS in one
pass), proposal-shift selection from a batch of failing points, and
effective-sample-size computation.
"""

from __future__ import annotations

import abc
import math
from typing import ClassVar, TypeVar

import numpy as np

from repro.errors import ParameterError
from repro.yield_est.problem import SampleBatch
from repro.yield_est.result import TracePoint, YieldEstimate

__all__ = [
    "YieldEstimator",
    "available_estimators",
    "get_estimator",
    "register_estimator",
    "estimate_yield",
    "effective_sample_size",
]

_ESTIMATOR_REGISTRY: dict[str, type["YieldEstimator"]] = {}

EstimatorT = TypeVar("EstimatorT", bound="YieldEstimator")


def register_estimator(cls: type[EstimatorT]) -> type[EstimatorT]:
    """Class decorator adding ``cls`` to the engine registry."""
    name = cls.name
    if not name:
        raise ParameterError(f"{cls.__name__} must define an engine name")
    if name in _ESTIMATOR_REGISTRY:
        raise ParameterError(f"engine name {name!r} already registered")
    _ESTIMATOR_REGISTRY[name] = cls
    return cls


def available_estimators() -> tuple[str, ...]:
    """Names of all registered engines, sorted."""
    return tuple(sorted(_ESTIMATOR_REGISTRY))


def get_estimator(name: str) -> type["YieldEstimator"]:
    """Look up an engine class by registry name."""
    try:
        return _ESTIMATOR_REGISTRY[name]
    except KeyError:
        known = ", ".join(available_estimators())
        raise ParameterError(
            f"unknown yield engine {name!r}; available: {known}"
        ) from None


def estimate_yield(
    target: object,
    threshold: float,
    *,
    engine: str = "mc",
    budget: int = 10_000,
    rng: np.random.Generator | int | None = None,
    **engine_kwargs: object,
) -> YieldEstimate:
    """Convenience: build the named engine and run one estimate."""
    estimator = get_estimator(engine)(**engine_kwargs)
    return estimator.estimate(target, threshold, budget=budget, rng=rng)


def effective_sample_size(weights: np.ndarray) -> float:
    """Kish effective sample size ``(sum w)^2 / sum w^2``.

    0 for an empty or all-zero weight vector.  For unweighted samples
    this equals the sample count; heavy weight concentration (a
    proposal shifted past the failure region) drives it toward 1.
    """
    array = np.asarray(weights, dtype=float).ravel()
    total_sq = float(np.sum(array * array))
    if total_sq <= 0.0:
        return 0.0
    total = float(np.sum(array))
    return total * total / total_sq


class _WeightedAccumulator:
    """Streaming mean/variance/ESS of per-sample contributions.

    Feeds on batches of contributions ``c_i = w_i * 1{t_i > T}``
    (``w_i = 1`` for plain MC); keeps the sums needed for the
    failure-probability estimate, its standard error and the Kish ESS
    of the failure mass without retaining sample arrays.  Zero
    contributions (non-failing samples) do not enter the ESS, so the
    diagnostic reads as "effectively independent failure
    observations": the plain-MC hit count, shrinking as importance
    weights concentrate.
    """

    def __init__(self) -> None:
        self.n = 0
        self._sum = 0.0
        self._sum_sq = 0.0

    def add(self, contributions: np.ndarray) -> None:
        array = np.asarray(contributions, dtype=float).ravel()
        self.n += array.size
        self._sum += float(np.sum(array))
        self._sum_sq += float(np.sum(array * array))

    @property
    def estimate(self) -> float:
        if self.n == 0:
            return 0.0
        return self._sum / self.n

    @property
    def std_error(self) -> float:
        if self.n == 0:
            return 0.0
        mean = self.estimate
        variance = max(self._sum_sq / self.n - mean * mean, 0.0)
        return math.sqrt(variance / self.n)

    @property
    def ess(self) -> float:
        if self._sum_sq <= 0.0:
            return 0.0
        return self._sum * self._sum / self._sum_sq


def _select_shift(
    batch: SampleBatch,
    threshold: float,
    center: np.ndarray,
    *,
    top_fraction: float,
    min_ess: float = 8.0,
) -> np.ndarray:
    """Proposal shift from a batch: toward the (near-)failure region.

    Prefers the weighted mean of failing coordinates (weights are the
    nominal/proposal likelihood ratios, so the average approximates
    the conditional mean under the *nominal* law given failure).  With
    no failures, falls back to the top ``top_fraction`` of the batch
    by delay — the exploratory move that makes the first far-tail
    iteration possible.  Degenerate weight concentrations (ESS below
    ``min_ess``) fall back to the unweighted elite mean, which is
    biased toward the proposal but numerically stable.
    """
    values = batch.values
    mask = values > threshold
    if not np.any(mask):
        n_top = max(int(math.ceil(top_fraction * values.size)), 1)
        order = np.argsort(values, kind="stable")
        chosen = order[-n_top:]
        mask = np.zeros(values.size, dtype=bool)
        mask[chosen] = True
    coords = np.asarray(batch.coords, dtype=float)[mask]
    weights = batch.weights()[mask]
    if effective_sample_size(weights) >= min_ess:
        mean = np.average(coords, axis=0, weights=weights)
    else:
        mean = np.mean(coords, axis=0)
    return np.asarray(mean - center)


class YieldEstimator(abc.ABC):
    """One far-tail yield estimation engine.

    Subclasses implement :meth:`_run` over a prepared problem; the
    public :meth:`estimate` handles target wrapping, budget/seed
    validation and telemetry, so every engine reports the same spans
    and the same ``yield.samples`` metric.
    """

    #: Registry key, e.g. ``"adaptive-is"``.
    name: ClassVar[str] = ""

    def estimate(
        self,
        target: object,
        threshold: float,
        *,
        budget: int,
        rng: np.random.Generator | int | None = None,
    ) -> YieldEstimate:
        """Estimate ``P(t > threshold)`` within ``budget`` simulator calls.

        Args:
            target: Fitted model, latent simulator, raw sampler
                callable or prepared problem (see
                :func:`repro.yield_est.problem.as_problem`).
            threshold: Delay target; failure is ``t > threshold``.
            budget: Total simulator calls the engine may spend,
                pilot/adaptation phases included.
            rng: Seed or generator; identical seeds give
                byte-identical estimates.
        """
        from repro.runtime import telemetry
        from repro.yield_est.problem import as_problem, _coerce_rng

        if budget < 2:
            raise ParameterError(
                f"yield estimation budget must be >= 2, got {budget}"
            )
        problem = as_problem(target, threshold)
        generator = _coerce_rng(rng)
        with telemetry.span(
            "yield.estimate",
            engine=self.name,
            threshold=float(problem.threshold),
            budget=int(budget),
        ):
            estimate = self._run(problem, int(budget), generator)
            telemetry.observe("yield.samples", estimate.n_samples)
            telemetry.counter_inc("yield.estimates")
        return estimate

    @abc.abstractmethod
    def _run(
        self,
        problem,
        budget: int,
        rng: np.random.Generator,
    ) -> YieldEstimate:
        """Engine body: spend up to ``budget`` calls on ``problem``."""

    # ------------------------------------------------------------------
    # Shared assembly
    # ------------------------------------------------------------------
    def _build_estimate(
        self,
        problem,
        accumulator: _WeightedAccumulator,
        *,
        budget: int,
        n_samples: int,
        exhausted: bool,
        trace: list[TracePoint],
        diagnostics: dict,
    ) -> YieldEstimate:
        return YieldEstimate(
            engine=self.name,
            threshold=float(problem.threshold),
            failure_probability=min(max(accumulator.estimate, 0.0), 1.0),
            std_error=accumulator.std_error,
            n_samples=n_samples,
            budget=budget,
            exhausted=exhausted,
            ess=accumulator.ess,
            trace=tuple(trace),
            diagnostics=diagnostics,
        )
