"""Plain Monte-Carlo yield estimation — the golden baseline.

Batched nominal sampling with the binomial variance estimate.  No
variance reduction: at a ``k``-sigma target the relative standard
error is ``sqrt((1 - p) / (n p))``, so 4-sigma yields need tens of
millions of samples for percent-level accuracy — exactly the cost the
importance-sampling engines exist to avoid.  MC remains the engine of
record: it consumes *any* problem (including raw samplers, with no
surrogate caveat) and its estimate is unbiased by construction.
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.yield_est.base import (
    YieldEstimator,
    _WeightedAccumulator,
    register_estimator,
)
from repro.yield_est.result import TracePoint, YieldEstimate

__all__ = ["MonteCarloEstimator"]


@register_estimator
class MonteCarloEstimator(YieldEstimator):
    """Batched plain MC over the nominal distribution.

    Args:
        batch_size: Simulator calls per batch (one trace point each).
        target_rel_err: Optional early-stop target on the relative
            standard error ``se / p``; when set and reached, the
            engine stops below budget.  When set and *not* reached,
            the estimate is flagged ``exhausted``.
    """

    name = "mc"

    def __init__(
        self,
        *,
        batch_size: int = 8192,
        target_rel_err: float | None = None,
    ) -> None:
        if batch_size < 1:
            raise ParameterError(
                f"batch size must be >= 1, got {batch_size}"
            )
        if target_rel_err is not None and target_rel_err <= 0.0:
            raise ParameterError(
                f"target relative error must be positive, got "
                f"{target_rel_err}"
            )
        self.batch_size = batch_size
        self.target_rel_err = target_rel_err

    def _run(
        self, problem, budget: int, rng: np.random.Generator
    ) -> YieldEstimate:
        accumulator = _WeightedAccumulator()
        trace: list[TracePoint] = []
        used = 0
        converged = False
        while used < budget:
            size = min(self.batch_size, budget - used)
            batch = problem.sample(size, rng)
            failures = (batch.values > problem.threshold).astype(float)
            accumulator.add(failures)
            used += size
            trace.append(
                TracePoint(
                    n_samples=used,
                    estimate=accumulator.estimate,
                    std_error=accumulator.std_error,
                    phase="estimate",
                )
            )
            if self.target_rel_err is not None:
                estimate = accumulator.estimate
                if (
                    estimate > 0.0
                    and accumulator.std_error / estimate
                    <= self.target_rel_err
                ):
                    converged = True
                    break
        exhausted = self.target_rel_err is not None and not converged
        return self._build_estimate(
            problem,
            accumulator,
            budget=budget,
            n_samples=used,
            exhausted=exhausted,
            trace=trace,
            diagnostics={"batch_size": self.batch_size},
        )
