"""Adaptive importance sampling: cross-entropy level adaptation.

The OpenYield MNIS/AIS shape: instead of aiming one proposal from one
pilot, the proposal walks toward the failure region through a ladder
of intermediate levels (the cross-entropy method for rare events):

1. Sample a batch from the current proposal; set the working level
   ``gamma`` to the batch's upper ``rho``-quantile, capped at the
   true threshold.
2. Re-center the proposal on the likelihood-weighted mean of the
   samples above ``gamma`` (ESS-guarded; see
   :func:`repro.yield_est.base._select_shift`).
3. Repeat until ``gamma`` reaches the threshold — each rung moves
   roughly ``Phi^{-1}(1 - rho)`` sigmas, so a 4–5 sigma target takes
   a handful of cheap batches — then spend the reserved remainder of
   the budget estimating from the converged proposal.

If the ladder has not reached the threshold when the adaptation
budget runs out, the engine still estimates from its best proposal
and flags the result ``exhausted``: the point estimate is usable and
the confidence interval (rule-of-three when no failure was weighted
in) reflects the shortfall honestly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.yield_est.base import (
    YieldEstimator,
    _select_shift,
    _WeightedAccumulator,
    register_estimator,
)
from repro.yield_est.result import TracePoint, YieldEstimate

__all__ = ["AdaptiveISEstimator"]


@register_estimator
class AdaptiveISEstimator(YieldEstimator):
    """Cross-entropy re-centered importance sampling.

    Args:
        level_size: Simulator calls per adaptation rung.  ``None``
            (default) scales with the budget — ``budget // 8`` clamped
            to ``[256, 4096]`` — so small budgets still fit enough
            rungs to walk a 4–5 sigma ladder.
        batch_size: Estimation-phase calls per batch.
        rho: Elite fraction defining each intermediate level (the
            working level is the ``1 - rho`` quantile of the rung).
        estimate_fraction: Budget fraction reserved for the final
            estimation phase regardless of how many rungs adaptation
            takes.
        surrogate: Model family fitted to raw-sampler targets before
            importance sampling.
    """

    name = "adaptive-is"

    def __init__(
        self,
        *,
        level_size: int | None = None,
        batch_size: int = 8192,
        rho: float = 0.1,
        estimate_fraction: float = 0.5,
        surrogate: str = "LVF2",
    ) -> None:
        if level_size is not None and level_size < 2:
            raise ParameterError(
                f"level size must be >= 2, got {level_size}"
            )
        if batch_size < 1:
            raise ParameterError(
                f"batch size must be >= 1, got {batch_size}"
            )
        if not 0.0 < rho < 1.0:
            raise ParameterError(
                f"elite fraction must lie in (0, 1), got {rho}"
            )
        if not 0.0 < estimate_fraction < 1.0:
            raise ParameterError(
                f"estimate fraction must lie in (0, 1), got "
                f"{estimate_fraction}"
            )
        self.level_size = level_size
        self.batch_size = batch_size
        self.rho = rho
        self.estimate_fraction = estimate_fraction
        self.surrogate = surrogate

    def _run(
        self, problem, budget: int, rng: np.random.Generator
    ) -> YieldEstimate:
        from repro.yield_est.problem import ensure_shiftable

        trace: list[TracePoint] = []
        problem, pilot_batch, diagnostics = ensure_shiftable(
            problem, budget=budget, rng=rng, surrogate=self.surrogate
        )
        used = pilot_batch.n if pilot_batch is not None else 0
        center = problem.nominal_center()
        shift = np.zeros_like(np.atleast_1d(np.asarray(center, float)))
        reserve = max(int(budget * self.estimate_fraction), 1)
        level_size = (
            self.level_size
            if self.level_size is not None
            else max(min(budget // 8, 4096), 256)
        )
        converged = False
        n_levels = 0
        # A surrogate pilot doubles as the first adaptation rung: it
        # was sampled from the nominal law, which is exactly what the
        # ladder's first step needs.
        pending = pilot_batch
        while used < budget - reserve or pending is not None:
            if pending is not None:
                batch = pending
                pending = None
            else:
                size = min(level_size, budget - reserve - used)
                if size < 2:
                    break
                batch = problem.sample(
                    size, rng, shift=None if n_levels == 0 else shift
                )
                used += size
            level = float(
                np.quantile(batch.values, 1.0 - self.rho)
            )
            n_levels += 1
            if level >= problem.threshold:
                converged = True
                shift = _select_shift(
                    batch,
                    problem.threshold,
                    center,
                    top_fraction=self.rho,
                )
                trace.append(
                    TracePoint(
                        n_samples=used,
                        estimate=0.0,
                        std_error=0.0,
                        phase="adapt",
                        shift=float(
                            np.linalg.norm(np.atleast_1d(shift))
                        ),
                        level=float(problem.threshold),
                    )
                )
                break
            shift = _select_shift(
                batch, level, center, top_fraction=self.rho
            )
            trace.append(
                TracePoint(
                    n_samples=used,
                    estimate=0.0,
                    std_error=0.0,
                    phase="adapt",
                    shift=float(np.linalg.norm(np.atleast_1d(shift))),
                    level=level,
                )
            )
        shift_norm = float(np.linalg.norm(np.atleast_1d(shift)))
        accumulator = _WeightedAccumulator()
        while used < budget:
            size = min(self.batch_size, budget - used)
            batch = problem.sample(size, rng, shift=shift)
            weights = batch.weights()
            contributions = weights * (
                batch.values > problem.threshold
            )
            accumulator.add(contributions)
            used += size
            trace.append(
                TracePoint(
                    n_samples=used,
                    estimate=accumulator.estimate,
                    std_error=accumulator.std_error,
                    phase="estimate",
                    shift=shift_norm,
                )
            )
        diagnostics = {
            **diagnostics,
            "level_size": level_size,
            "batch_size": self.batch_size,
            "n_levels": n_levels,
            "shift_norm": shift_norm,
            "converged": converged,
        }
        return self._build_estimate(
            problem,
            accumulator,
            budget=budget,
            n_samples=used,
            exhausted=not converged or accumulator.n == 0,
            trace=trace,
            diagnostics=diagnostics,
        )
