"""The :class:`YieldEstimate` result type shared by every engine.

A yield estimate is the full answer to "what fraction of chips meets
the delay target ``T``": the point estimate of the failure probability
``p = P(t > T)``, its sampling variance, a normal-approximation
confidence interval, the simulator-call budget accounting, and a
convergence trace recording how the estimate evolved batch by batch.

Determinism contract: an estimate contains **no wall-clock or entropy
material** — only quantities derived from the seeded sample stream —
so the same seed reproduces a byte-identical :meth:`YieldEstimate.to_json`
document.  Timing lives in telemetry spans, not here.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from repro.errors import ParameterError

__all__ = ["TracePoint", "YieldEstimate", "RESULT_SCHEMA"]

#: Schema tag stamped into every serialised estimate.
RESULT_SCHEMA = "repro.yield_estimate/1"


@dataclass(frozen=True)
class TracePoint:
    """One convergence-trace entry (one batch of simulator calls).

    Attributes:
        n_samples: Cumulative simulator calls after this batch.
        estimate: Running failure-probability estimate.
        std_error: Running standard error of the estimate.
        phase: ``"pilot"`` (proposal search), ``"adapt"`` (level
            adaptation) or ``"estimate"`` (the batches that feed the
            final number).
        shift: Proposal-shift norm in effect for this batch (0 for
            nominal sampling).
        level: Intermediate failure level of an adaptive engine, or
            ``None`` outside level adaptation.
    """

    n_samples: int
    estimate: float
    std_error: float
    phase: str
    shift: float = 0.0
    level: float | None = None

    def to_dict(self) -> dict:
        return {
            "n_samples": int(self.n_samples),
            "estimate": float(self.estimate),
            "std_error": float(self.std_error),
            "phase": self.phase,
            "shift": float(self.shift),
            "level": None if self.level is None else float(self.level),
        }


@dataclass(frozen=True)
class YieldEstimate:
    """Point estimate, uncertainty and accounting for one yield query.

    Attributes:
        engine: Registry name of the engine that produced it.
        threshold: The delay target ``T``; failure is ``t > T``.
        failure_probability: Point estimate of ``P(t > T)``.
        std_error: Standard error of the failure-probability estimate.
        n_samples: Simulator calls actually spent (pilot and
            adaptation batches included).
        budget: Simulator-call budget the engine was given.
        exhausted: True when the budget ran out before the engine's
            own convergence target was met — the estimate is still
            usable but carries a wider (or rule-of-three) interval.
        ess: Kish effective sample size of the failure contributions
            ``w_i * 1{t_i > T}`` — the effectively independent failure
            observations behind the estimate.  For unweighted MC this
            is the failure hit count; weight concentration in a
            mis-aimed proposal drives it toward 1.
        trace: Convergence trace, one :class:`TracePoint` per batch.
        diagnostics: Engine-specific scalars/strings (proposal-shift
            norm, surrogate model name, level count ...), JSON-safe.
    """

    engine: str
    threshold: float
    failure_probability: float
    std_error: float
    n_samples: int
    budget: int
    exhausted: bool
    ess: float
    trace: tuple[TracePoint, ...] = ()
    diagnostics: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_probability <= 1.0:
            raise ParameterError(
                "failure probability must lie in [0, 1], got "
                f"{self.failure_probability}"
            )
        if self.std_error < 0.0:
            raise ParameterError(
                f"standard error must be non-negative, got {self.std_error}"
            )
        if self.n_samples > self.budget:
            raise ParameterError(
                f"spent {self.n_samples} samples but budget was "
                f"{self.budget}"
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def yield_fraction(self) -> float:
        """``P(t <= T)`` — the quantity speed binning prices."""
        return 1.0 - self.failure_probability

    @property
    def variance(self) -> float:
        """Sampling variance of the failure-probability estimate."""
        return self.std_error * self.std_error

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI on the failure probability.

        Clipped to ``[0, 1]``.  When no failure was observed (point
        estimate 0 with zero sample variance) the upper limit falls
        back to the rule-of-three bound ``3 / n_samples`` — the
        classic 95% upper limit for zero observed events — so an
        empty tail never reports false certainty.
        """
        if z <= 0.0:
            raise ParameterError(f"z must be positive, got {z}")
        low = self.failure_probability - z * self.std_error
        high = self.failure_probability + z * self.std_error
        if self.failure_probability == 0.0 and self.std_error == 0.0:
            high = 3.0 / self.n_samples if self.n_samples > 0 else 1.0
        return (max(low, 0.0), min(high, 1.0))

    def relative_error(self, truth: float) -> float:
        """``|p_hat - truth| / truth`` versus a reference probability."""
        if truth <= 0.0:
            raise ParameterError(
                f"reference probability must be positive, got {truth}"
            )
        return abs(self.failure_probability - truth) / truth

    def relative_ci_width(self) -> float:
        """CI width over the point estimate (``inf`` when it is 0)."""
        low, high = self.confidence_interval()
        if self.failure_probability == 0.0:
            return math.inf
        return (high - low) / self.failure_probability

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        low, high = self.confidence_interval()
        return {
            "schema": RESULT_SCHEMA,
            "engine": self.engine,
            "threshold": float(self.threshold),
            "failure_probability": float(self.failure_probability),
            "yield_fraction": float(self.yield_fraction),
            "std_error": float(self.std_error),
            "ci_low": float(low),
            "ci_high": float(high),
            "n_samples": int(self.n_samples),
            "budget": int(self.budget),
            "exhausted": bool(self.exhausted),
            "ess": float(self.ess),
            "trace": [point.to_dict() for point in self.trace],
            "diagnostics": dict(sorted(self.diagnostics.items())),
        }

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, no whitespace variance.

        Byte-identical for byte-identical estimates — the determinism
        tests compare these strings directly.
        """
        return json.dumps(self.to_dict(), sort_keys=True)

    def summary(self) -> str:
        """One human line, the CLI's text rendering."""
        low, high = self.confidence_interval()
        flag = " (budget exhausted)" if self.exhausted else ""
        return (
            f"{self.engine}: P(fail)={self.failure_probability:.4g} "
            f"[{low:.4g}, {high:.4g}] yield={self.yield_fraction:.6g} "
            f"ess={self.ess:.0f} "
            f"samples={self.n_samples}/{self.budget}{flag}"
        )
