"""Yield problems: one sampling surface over models and simulators.

Every engine sees the same object — a :class:`YieldProblem` — no
matter where the delays come from:

- **Fitted analytic models** (LVF2 / Norm2 / Gaussian ... anything
  with ``rvs``/``logpdf``) become a :class:`DensityProblem`.  The
  proposal family is the model's own density translated by a shift
  ``Delta`` (sample ``x ~ f``, report ``x + Delta``), so
  likelihood-ratio weights are two ``logpdf`` calls and no quantile
  inversion is ever needed.
- **Latent simulators** — the ISLE shape, a function ``g(u)`` mapping
  standard-normal process parameters ``u in R^d`` to a delay — become
  a :class:`LatentProblem`.  Proposals are mean-shifted standard
  normals ``N(s, I)`` with closed-form weights.
- **Raw sampler callables** ``sampler(n, rng) -> delays`` (e.g. the
  per-sample path delays of :mod:`repro.ssta`) become a
  :class:`SamplerProblem`.  Plain MC consumes them directly; the
  importance-sampling engines cannot reweight a black box, so
  :func:`ensure_shiftable` first fits a **surrogate** model (through
  the ordinary model registry, LVF2 by default with an LVF/Gaussian
  fallback) to a pilot batch and importance-samples the surrogate.
  The estimate then inherits the surrogate's tail-shape error — a
  stated validity limit (DESIGN.md §13), recorded in the estimate's
  diagnostics so no one mistakes it for a black-box tail measurement.

Failure is always the upper tail, ``t > threshold`` — the chip misses
the delay target.  Yield is the complement.
"""

from __future__ import annotations

import abc
from collections.abc import Callable
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import FittingError, ParameterError

__all__ = [
    "SampleBatch",
    "YieldProblem",
    "DensityProblem",
    "LatentProblem",
    "SamplerProblem",
    "as_problem",
    "ensure_shiftable",
]


@dataclass(frozen=True)
class SampleBatch:
    """One batch of simulator calls.

    Attributes:
        values: Delays, shape ``(n,)``.
        coords: Proposal-space coordinates of each sample — the delay
            itself for a density problem (``(n,)``), the latent vector
            for a latent problem (``(n, d)``).  Engines average the
            failing coordinates to re-center proposals.
        log_weights: Log likelihood ratio ``log f_nominal / f_proposal``
            per sample; all zeros for nominal (unshifted) sampling.
    """

    values: np.ndarray
    coords: np.ndarray
    log_weights: np.ndarray

    @property
    def n(self) -> int:
        return int(self.values.size)

    def weights(self) -> np.ndarray:
        """Likelihood-ratio weights ``exp(log_weights)``."""
        return np.exp(self.log_weights)


def _coerce_rng(
    rng: np.random.Generator | int | None,
) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


class YieldProblem(abc.ABC):
    """A failure event ``t > threshold`` over a sampling surface."""

    threshold: float

    @property
    @abc.abstractmethod
    def supports_shift(self) -> bool:
        """Whether mean-shifted proposals (importance sampling) work."""

    @abc.abstractmethod
    def sample(
        self,
        n: int,
        rng: np.random.Generator,
        shift: np.ndarray | None = None,
    ) -> SampleBatch:
        """Draw ``n`` delays, optionally from a mean-shifted proposal."""

    @abc.abstractmethod
    def nominal_center(self) -> np.ndarray:
        """Proposal-space origin the shift is measured from."""

    def analytic_failure_probability(self) -> float | None:
        """Closed-form ``P(t > threshold)`` when one exists."""
        return None

    def with_threshold(self, threshold: float) -> "YieldProblem":
        """Same sampling surface, different delay target."""
        return replace(self, threshold=_validate_threshold(threshold))


def _validate_threshold(threshold: float) -> float:
    value = float(threshold)
    if not np.isfinite(value):
        raise ParameterError(
            f"yield threshold must be finite, got {threshold}"
        )
    return value


def _validate_n(n: int) -> int:
    if n < 1:
        raise ParameterError(f"sample count must be >= 1, got {n}")
    return int(n)


@dataclass(frozen=True)
class DensityProblem(YieldProblem):
    """A fitted model sampled through its own translated density.

    The proposal family is ``q_Delta(y) = f(y - Delta)``: sample
    ``x ~ f`` via the model's ``rvs`` and report ``y = x + Delta``,
    with weight ``w(y) = f(y) / f(y - Delta)`` computed from two
    ``logpdf`` evaluations.  ``Delta = 0`` is exact nominal sampling.
    """

    model: object
    threshold: float

    def __post_init__(self) -> None:
        for attr in ("rvs", "logpdf", "moments"):
            if not hasattr(self.model, attr):
                raise ParameterError(
                    f"density problem needs a model with .{attr}(); "
                    f"got {type(self.model).__name__}"
                )
        object.__setattr__(
            self, "threshold", _validate_threshold(self.threshold)
        )

    @property
    def supports_shift(self) -> bool:
        return True

    def nominal_center(self) -> np.ndarray:
        return np.asarray(float(self.model.moments().mean))

    def sample(
        self,
        n: int,
        rng: np.random.Generator,
        shift: np.ndarray | None = None,
    ) -> SampleBatch:
        n = _validate_n(n)
        base = np.asarray(self.model.rvs(n, rng=rng), dtype=float)
        if shift is None:
            return SampleBatch(base, base, np.zeros(n))
        delta = float(np.asarray(shift))
        shifted = base + delta
        log_weights = np.asarray(
            self.model.logpdf(shifted), dtype=float
        ) - np.asarray(self.model.logpdf(base), dtype=float)
        return SampleBatch(shifted, shifted, log_weights)

    def analytic_failure_probability(self) -> float | None:
        if hasattr(self.model, "sf"):
            return float(np.asarray(self.model.sf(self.threshold)))
        if hasattr(self.model, "cdf"):
            return 1.0 - float(np.asarray(self.model.cdf(self.threshold)))
        return None


@dataclass(frozen=True)
class LatentProblem(YieldProblem):
    """A simulator over standard-normal latents (the ISLE shape).

    ``fn`` maps an ``(n, dim)`` array of standard-normal process
    parameters to ``(n,)`` delays.  Proposals are ``N(s, I)`` with the
    closed-form log weight ``|s|^2 / 2 - u . s``.
    """

    fn: Callable[[np.ndarray], np.ndarray]
    dim: int
    threshold: float

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ParameterError(
                f"latent dimension must be >= 1, got {self.dim}"
            )
        object.__setattr__(
            self, "threshold", _validate_threshold(self.threshold)
        )

    @property
    def supports_shift(self) -> bool:
        return True

    def nominal_center(self) -> np.ndarray:
        return np.zeros(self.dim)

    def sample(
        self,
        n: int,
        rng: np.random.Generator,
        shift: np.ndarray | None = None,
    ) -> SampleBatch:
        n = _validate_n(n)
        latents = rng.standard_normal((n, self.dim))
        log_weights = np.zeros(n)
        if shift is not None:
            vector = np.asarray(shift, dtype=float).reshape(self.dim)
            latents = latents + vector
            log_weights = 0.5 * float(vector @ vector) - latents @ vector
        values = np.asarray(self.fn(latents), dtype=float).ravel()
        if values.size != n:
            raise ParameterError(
                f"latent simulator returned {values.size} delays "
                f"for {n} samples"
            )
        return SampleBatch(values, latents, log_weights)


@dataclass(frozen=True)
class SamplerProblem(YieldProblem):
    """A raw ``sampler(n, rng) -> delays`` callable; nominal-only.

    The black box exposes no density, so mean-shifted proposals are
    impossible; importance-sampling engines route through
    :func:`ensure_shiftable` and a fitted surrogate instead.
    """

    sampler: Callable[..., np.ndarray]
    threshold: float

    def __post_init__(self) -> None:
        if not callable(self.sampler):
            raise ParameterError(
                f"sampler must be callable, got {type(self.sampler).__name__}"
            )
        object.__setattr__(
            self, "threshold", _validate_threshold(self.threshold)
        )

    @property
    def supports_shift(self) -> bool:
        return False

    def nominal_center(self) -> np.ndarray:
        return np.asarray(0.0)

    def sample(
        self,
        n: int,
        rng: np.random.Generator,
        shift: np.ndarray | None = None,
    ) -> SampleBatch:
        n = _validate_n(n)
        if shift is not None:
            raise ParameterError(
                "raw sampler problems cannot be importance-sampled "
                "directly; fit a surrogate first (ensure_shiftable)"
            )
        values = np.asarray(self.sampler(n, rng), dtype=float).ravel()
        if values.size != n:
            raise ParameterError(
                f"sampler returned {values.size} delays for {n} samples"
            )
        return SampleBatch(values, values, np.zeros(n))


def as_problem(target: object, threshold: float) -> YieldProblem:
    """Wrap a model, simulator or callable into a :class:`YieldProblem`.

    Dispatch order:

    1. An existing :class:`YieldProblem` is re-targeted to
       ``threshold`` and returned.
    2. Anything with ``rvs`` **and** ``logpdf`` (every registered
       timing model, any :class:`~repro.stats.mixtures.Mixture`)
       becomes a :class:`DensityProblem`.
    3. Anything else with ``rvs`` (e.g. an
       :class:`~repro.stats.empirical.EmpiricalDistribution`, which
       has no density) is treated as a raw sampler over its ``rvs``.
    4. A bare callable ``sampler(n, rng)`` becomes a
       :class:`SamplerProblem`.
    """
    if isinstance(target, YieldProblem):
        return target.with_threshold(threshold)
    if hasattr(target, "rvs") and hasattr(target, "logpdf"):
        return DensityProblem(model=target, threshold=threshold)
    if hasattr(target, "rvs"):
        return SamplerProblem(
            sampler=lambda n, rng: target.rvs(n, rng=rng),
            threshold=threshold,
        )
    if callable(target):
        return SamplerProblem(sampler=target, threshold=threshold)
    raise ParameterError(
        "cannot build a yield problem from "
        f"{type(target).__name__}: need a fitted model (rvs/logpdf), "
        "a sampler callable (n, rng) -> delays, or a YieldProblem"
    )


#: Surrogate fit ladder: the requested family first, then the
#: single-component skew-normal, then plain Gaussian moments.
_SURROGATE_LADDER = ("LVF", "Gaussian")


def _fit_surrogate(values: np.ndarray, family: str):
    from repro.models import fit_model

    names = [family]
    names.extend(name for name in _SURROGATE_LADDER if name != family)
    last: FittingError | None = None
    for name in names:
        try:
            return fit_model(name, values), name
        except FittingError as error:
            last = error
    raise FittingError(
        f"no surrogate family could fit the pilot batch: {last}"
    )


def ensure_shiftable(
    problem: YieldProblem,
    *,
    budget: int,
    rng: np.random.Generator,
    surrogate: str = "LVF2",
    pilot: int = 2000,
) -> tuple[YieldProblem, SampleBatch | None, dict]:
    """Make ``problem`` importance-samplable, fitting a surrogate if needed.

    Returns ``(shiftable_problem, pilot_batch, diagnostics)``.  For a
    problem that already supports shifts this is a no-op (no samples
    spent, no pilot batch).  For a raw sampler it draws a pilot batch
    (counted against ``budget`` by the caller via ``pilot_batch.n``),
    fits a surrogate through the model registry and returns a
    :class:`DensityProblem` over it.  The pilot batch is returned so
    engines can reuse it for proposal selection instead of paying for
    a second one.
    """
    if problem.supports_shift:
        return problem, None, {}
    n_pilot = min(int(pilot), max(budget // 2, 2))
    if n_pilot < 2:
        raise ParameterError(
            f"budget {budget} leaves no room for a surrogate pilot"
        )
    batch = problem.sample(n_pilot, rng)
    model, family = _fit_surrogate(batch.values, surrogate)
    shiftable = DensityProblem(model=model, threshold=problem.threshold)
    diagnostics = {
        "surrogate": family,
        "surrogate_pilot": n_pilot,
    }
    return shiftable, batch, diagnostics
