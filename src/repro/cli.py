"""Command-line interface: ``python -m repro`` / the ``repro`` script.

Subcommands:

- ``models``        — list registered timing models
- ``fit``           — fit a model to samples from a file and report
- ``scenario``      — sample a Fig. 3 scenario and compare all models
- ``characterize``  — Monte-Carlo characterise cells into a `.lib`
- ``liberty``       — parse and summarise a Liberty file
- ``bench``         — regenerate the paper's tables and figures
  (``--json`` records a perf report; ``bench compare`` judges one
  against a committed baseline)
- ``yield``         — far-tail yield estimation at a k-sigma target
  (MC / mean-shift IS / adaptive-IS engines)
- ``status``        — live progress of a pool checkpoint directory
- ``trace``         — summarise, merge or analyze telemetry traces
- ``lint``          — static determinism lint over Python sources
- ``lint-lib``      — domain lint over Liberty/LVF2 artifacts
- ``fo4``           — print the technology FO4 delay
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import nullcontext

import numpy as np

from repro.errors import (
    EXIT_CODES,
    ParameterError,
    ReproError,
    exit_code_for,
)

__all__ = ["main", "build_parser", "exit_code_for", "EXIT_CODES"]


def _load_samples(path: str) -> np.ndarray:
    """Load samples from ``.npy`` or whitespace-separated text / stdin.

    Raises:
        ParameterError: When the file is missing or not parseable as
            numeric samples — the CLI reports one line, not a numpy
            traceback.
    """
    try:
        if path == "-":
            return np.loadtxt(sys.stdin)
        if path.endswith(".npy"):
            return np.load(path)
        return np.loadtxt(path)
    except (OSError, ValueError) as error:
        raise ParameterError(
            f"cannot load samples from {path!r}: {error}"
        ) from error


def _checkpoint_store(args: argparse.Namespace):
    """Build the checkpoint store requested by --checkpoint-dir/--resume."""
    from repro.runtime.checkpoint import CheckpointStore

    if not args.checkpoint_dir:
        if args.resume:
            raise ParameterError(
                "--resume requires --checkpoint-dir pointing at the "
                "store of the interrupted run"
            )
        return None
    return CheckpointStore(args.checkpoint_dir, reuse=args.resume)


def _cmd_models(_: argparse.Namespace) -> int:
    from repro.models import available_models, get_model

    for name in available_models():
        cls = get_model(name)
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        print(f"{name:10s} {doc}")
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    from repro.binning import evaluate_models
    from repro.models import fit_model
    from repro.stats import EmpiricalDistribution

    samples = _load_samples(args.samples)
    model = fit_model(args.model, samples)
    summary = model.moments()
    print(
        f"{args.model}: mean={summary.mean:.6g} std={summary.std:.6g} "
        f"skew={summary.skewness:+.4g} kurt={summary.kurtosis:+.4g} "
        f"params={model.n_parameters}"
    )
    if args.score:
        golden = EmpiricalDistribution(samples)
        report = evaluate_models(
            {args.model: model, "LVF": fit_model("LVF", samples)},
            golden,
        )
        row = report[args.model]
        print(
            f"binning_reduction={row['binning_reduction']:.2f}x "
            f"yield_reduction={row['yield_reduction']:.2f}x "
            f"rmse_reduction={row['rmse_reduction']:.2f}x"
        )
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.circuits import get_scenario, scenario_names
    from repro.experiments import score_paper_models

    names = [args.name] if args.name else list(scenario_names())
    for name in names:
        scenario = get_scenario(name)
        samples = scenario.sample(args.samples, rng=args.seed)
        report = score_paper_models(samples)
        print(f"{name}:")
        for model, row in report.items():
            print(
                f"  {model:6s} binning={row['binning_reduction']:8.2f}x "
                f"yield={row['yield_reduction']:8.2f}x "
                f"rmse={row['rmse_reduction']:8.2f}x"
            )
    return 0


def _run_checkpoint_gc(
    args, store, engine, cells, config, *, policy, isolate_errors
) -> None:
    """Drop checkpoint entries orphaned by the current configuration."""
    from repro.circuits.characterize import characterization_tokens

    if store is None:
        raise ParameterError(
            "--checkpoint-gc/--checkpoint-max-age/--checkpoint-max-bytes "
            "require --checkpoint-dir pointing at the store to collect"
        )
    # The full valid set — arc Monte-Carlo, per-pin fit and per-grid-
    # point fit tokens — so payloads a pool run left behind survive gc.
    tokens = characterization_tokens(
        engine,
        cells,
        config,
        policy=policy,
        isolate_errors=isolate_errors,
    )
    max_age = (
        args.checkpoint_max_age * 3600.0
        if args.checkpoint_max_age is not None
        else None
    )
    removed = store.gc(
        tokens,
        max_age_seconds=max_age,
        max_total_bytes=args.checkpoint_max_bytes,
    )
    print(
        f"checkpoint gc: removed {removed} stale entries "
        f"from {store.directory}",
        file=sys.stderr,
    )


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.circuits import (
        CharacterizationConfig,
        GateTimingEngine,
        TT_GLOBAL_LOCAL_MC,
        build_cell,
        characterize_library,
    )
    from repro.circuits.characterize import (
        PAPER_LOADS,
        PAPER_SLEWS,
        run_fingerprint,
    )
    from repro.runtime import FitPolicy, FitReport, ProgressReporter
    from repro.runtime import fsfaults, telemetry
    from repro.runtime.export import write_text_file
    from repro.runtime.progress import configure_progress_logging

    configure_progress_logging()
    fsfaults.set_retry_policy(
        fsfaults.RetryPolicy(
            retries=args.fs_retries, backoff=args.fs_backoff
        )
    )
    engine = GateTimingEngine(corner=TT_GLOBAL_LOCAL_MC)
    grid = args.grid
    config = CharacterizationConfig(
        slews=PAPER_SLEWS[:grid],
        loads=PAPER_LOADS[:grid],
        n_samples=args.samples,
        seed=args.seed,
    )
    cells = [build_cell(name, args.drive) for name in args.cells]
    policy = None if args.no_fallback else FitPolicy()
    isolate_errors = not args.no_fallback
    store = _checkpoint_store(args)
    if (
        args.checkpoint_gc
        or args.checkpoint_max_age is not None
        or args.checkpoint_max_bytes is not None
    ):
        _run_checkpoint_gc(
            args,
            store,
            engine,
            cells,
            config,
            policy=policy,
            isolate_errors=isolate_errors,
        )

    session = None
    if args.trace or args.metrics or args.manifest:
        session = telemetry.TelemetrySession(
            trace_path=args.trace, sample=args.trace_sample
        )
    context = (
        telemetry.activate(session)
        if session is not None
        else nullcontext()
    )
    pool_config = None
    if args.workers > 1:
        from repro.runtime.pool import PoolConfig

        trace_dir = None
        if args.trace:
            import os

            trace_dir = os.path.dirname(os.path.abspath(args.trace))
        pool_config = PoolConfig(
            n_workers=args.workers,
            claim_timeout=args.claim_timeout,
            claim_skew=args.claim_skew,
            fs_retry=fsfaults.retry_policy(),
            seed=args.seed,
            run_id=session.run_id if session is not None else None,
            trace_dir=trace_dir,
            trace_sample=args.trace_sample,
            merge_traces=False,
        )
    report = FitReport()
    try:
        with context, telemetry.span(
            "characterize.run",
            cells=",".join(args.cells),
            grid=grid,
            n_samples=args.samples,
        ):
            library = characterize_library(
                engine,
                cells,
                config,
                checkpoint=store,
                policy=policy,
                report=report,
                isolate_errors=isolate_errors,
                progress=ProgressReporter(enabled=args.progress),
                workers=args.workers,
                pool=pool_config,
                granularity=args.granularity,
                vectorized=not args.serial_fit,
            )
            text = library.to_text()
            if args.out:
                write_text_file(args.out, text)
                print(
                    f"wrote {args.out}: {len(library.cells)} cells, "
                    f"{grid}x{grid} grid, "
                    f"{args.samples} samples/condition"
                )
            else:
                print(text)
        if session is not None:
            manifest = session.manifest(
                command="characterize",
                config_hash=run_fingerprint(engine, cells, config),
                seed=args.seed,
                workers=args.workers,
                granularity=args.granularity,
                n_samples=args.samples,
                grid=[grid, grid],
                cells=list(args.cells),
                degradations={
                    "rung_counts": report.rung_counts(),
                    "degraded": len(report.degraded_records()),
                    "quarantined": len(report.quarantined),
                },
                library={
                    **telemetry.checksum_text(text),
                    "n_cells": len(library.cells),
                    "path": args.out,
                },
                checkpoint=(
                    None
                    if store is None
                    else {
                        "hits": store.hits,
                        "misses": store.misses,
                        "writes": store.writes,
                    }
                ),
            )
            session.write_manifest(manifest)
            if args.manifest:
                write_text_file(
                    args.manifest,
                    json.dumps(manifest, indent=2, default=str) + "\n",
                )
                print(f"wrote manifest {args.manifest}", file=sys.stderr)
    finally:
        if session is not None:
            session.close()
    if session is not None and args.trace and args.workers > 1:
        _merge_worker_traces(args.trace, session.run_id)
    if args.report_json:
        write_text_file(
            args.report_json,
            json.dumps(report.to_dict(), indent=2) + "\n",
        )
        print(f"wrote fit report {args.report_json}", file=sys.stderr)
    if args.metrics and session is not None:
        print(telemetry.format_metrics(session.metrics.snapshot()))
    if report.n_fits and (
        report.degraded_records() or report.quarantined
    ):
        print(report.summary())
    return 0


def _merge_worker_traces(trace_path: str, run_id: str) -> None:
    """Fold a pool run's per-worker traces into the main trace file.

    Worker trace names are deterministic
    (``trace-<run_id>[-rN]-wNN.jsonl`` next to the main trace), so the
    files are found by pattern; each is labelled by its worker suffix
    and removed once merged.
    """
    import glob
    import os

    from repro.runtime.telemetry import merge_trace_files

    trace_dir = os.path.dirname(os.path.abspath(trace_path))
    worker_traces = sorted(
        glob.glob(
            os.path.join(
                trace_dir, f"trace-{glob.escape(run_id)}*-w??.jsonl"
            )
        )
    )
    if not worker_traces:
        return
    labels = ["main"]
    for path in worker_traces:
        stem = os.path.splitext(os.path.basename(path))[0]
        labels.append(stem.split(f"trace-{run_id}-", 1)[-1])
    merge_trace_files(
        [trace_path, *worker_traces], trace_path, labels=labels
    )
    for path in worker_traces:
        os.unlink(path)
    print(
        f"merged {len(worker_traces)} worker trace(s) into {trace_path}",
        file=sys.stderr,
    )


def _resolve_trace_dir(directory: str) -> str | None:
    """Resolve a directory argument to its single trace file.

    Returns None — after printing an explicit "no spans" summary —
    when the directory documents a run (a manifest or pool metadata
    file) but holds no trace files: a run that simply was not traced
    is an answer, not a usage error.

    Raises:
        ParameterError: When the directory holds several trace files
            (ambiguous — merge or name one) or no trace of a run at
            all.
    """
    import glob
    import os

    traces = sorted(glob.glob(os.path.join(directory, "*.jsonl")))
    if len(traces) == 1:
        return traces[0]
    if len(traces) > 1:
        names = ", ".join(os.path.basename(path) for path in traces[:4])
        more = "..." if len(traces) > 4 else ""
        raise ParameterError(
            f"{directory!r} holds {len(traces)} trace files "
            f"({names}{more}); merge them first "
            "(`repro trace merge <files> -o merged.jsonl`) or name one"
        )
    manifests = []
    for path in sorted(glob.glob(os.path.join(directory, "*.json"))):
        try:
            with open(path) as handle:
                body = json.load(handle)
        except (OSError, ValueError):
            continue
        if isinstance(body, dict) and str(
            body.get("schema", "")
        ).startswith("repro."):
            manifests.append((os.path.basename(path), body))
    if not manifests:
        raise ParameterError(
            f"{directory!r} contains no .jsonl trace files and no run "
            "manifest — nothing to summarise"
        )
    print(f"no spans: {directory} documents a run but holds no trace files")
    for name, body in manifests:
        detail = ", ".join(
            f"{key}={body[key]}"
            for key in ("schema", "command", "run_id", "n_items")
            if key in body
        )
        print(f"  {name}: {detail}")
    print("hint: re-run with --trace FILE to record spans")
    return None


def _load_trace_checked(path: str):
    """Load a trace file, turning empty/recordless files into clear
    one-line errors instead of tracebacks or blank summaries."""
    import os

    from repro.runtime.telemetry import load_trace

    try:
        empty = os.path.getsize(path) == 0
    except OSError as error:
        raise ParameterError(
            f"cannot read trace file {path!r}: {error}"
        ) from error
    if empty:
        raise ParameterError(
            f"trace file {path!r} is empty — the traced run "
            "wrote no records (killed before the first span?)"
        )
    data = load_trace(path)
    if not data.spans and not data.metrics and data.manifest is None:
        raise ParameterError(
            f"trace file {path!r} contains no trace records"
        )
    return data


def _cmd_trace_summarize(args: argparse.Namespace) -> int:
    import os

    from repro.runtime.telemetry import summarize_trace

    target = args.file
    if os.path.isdir(target):
        resolved = _resolve_trace_dir(target)
        if resolved is None:
            return 0
        target = resolved
    print(summarize_trace(_load_trace_checked(target)))
    return 0


def _cmd_trace_analyze(args: argparse.Namespace) -> int:
    import os

    from repro.runtime.telemetry import analyze_trace, render_analysis

    target = args.file
    if os.path.isdir(target):
        resolved = _resolve_trace_dir(target)
        if resolved is None:
            return 0
        target = resolved
    analysis = analyze_trace(_load_trace_checked(target), top=args.top)
    if args.json:
        print(
            json.dumps(
                analysis.to_dict(top=args.top), indent=2, sort_keys=True
            )
        )
    else:
        print(render_analysis(analysis, top=args.top))
    return 0


def _cmd_trace_merge(args: argparse.Namespace) -> int:
    from repro.runtime.telemetry import merge_trace_files

    if args.labels is not None and len(args.labels) != len(args.inputs):
        raise ParameterError(
            f"--labels needs one label per input trace "
            f"({len(args.inputs)} inputs, {len(args.labels)} labels)"
        )
    manifest = merge_trace_files(
        args.inputs, args.out, labels=args.labels
    )
    print(
        f"merged {len(args.inputs)} trace(s), "
        f"{manifest['span_count']} spans -> {args.out}"
    )
    if manifest["truncated_sources"]:
        print(
            f"note: {manifest['truncated_sources']} source(s) ended "
            "mid-record (killed writer); the truncated tail lines "
            "were skipped",
            file=sys.stderr,
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    handlers = {
        "summarize": _cmd_trace_summarize,
        "merge": _cmd_trace_merge,
        "analyze": _cmd_trace_analyze,
    }
    return handlers[args.trace_command](args)


def _cmd_status(args: argparse.Namespace) -> int:
    import time

    from repro.runtime.pool import read_pool_status, render_status

    while True:
        status = read_pool_status(
            args.directory, claim_timeout=args.claim_timeout
        )
        if args.json:
            print(json.dumps(status.to_dict(), sort_keys=True))
        else:
            print(render_status(status))
        if not args.watch or status.complete:
            return 0
        sys.stdout.flush()
        time.sleep(args.interval)
        if not args.json:
            print()


def _lint_report(args: argparse.Namespace, findings, sources) -> int:
    """Shared waiver/report/exit tail of ``lint`` and ``lint-lib``."""
    from repro.analysis import (
        apply_baseline,
        apply_suppressions,
        fails,
        load_baseline,
        render_jsonl,
        render_sarif,
        render_stats,
        render_text,
        scan_stats,
        write_baseline,
    )

    if args.stats and args.format == "sarif":
        raise ParameterError(
            "--stats is not available with --format sarif; the SARIF "
            "document carries results only"
        )
    findings = apply_suppressions(findings, sources)
    if args.write_baseline:
        if not args.baseline:
            raise ParameterError(
                "--write-baseline requires --baseline FILE to name "
                "the baseline to create"
            )
        count = write_baseline(args.baseline, findings)
        print(
            f"wrote baseline {args.baseline}: {count} grandfathered "
            "finding(s)",
            file=sys.stderr,
        )
        return 0
    if args.baseline:
        findings = apply_baseline(findings, load_baseline(args.baseline))
    if args.format == "jsonl":
        render_jsonl(findings, sys.stdout)
        if args.stats:
            print(json.dumps(scan_stats(findings, sources), sort_keys=True))
    elif args.format == "sarif":
        render_sarif(findings, sys.stdout)
    else:
        render_text(findings, sys.stdout)
        if args.stats:
            render_stats(findings, sources, sys.stdout)
    return 1 if fails(findings) else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import REGISTRY, lint_paths

    if args.rules:
        print(REGISTRY.table())
        return 0
    if not args.paths:
        raise ParameterError(
            "lint needs at least one file or directory "
            "(e.g. `repro lint src/repro`)"
        )
    findings, sources = lint_paths(args.paths)
    if args.flow:
        from repro.analysis import Finding, lint_flow_sources

        findings = sorted(
            findings + lint_flow_sources(sources), key=Finding.sort_key
        )
    return _lint_report(args, findings, sources)


def _cmd_lint_lib(args: argparse.Namespace) -> int:
    from repro.analysis import lint_library_paths

    findings, sources = lint_library_paths(args.paths)
    return _lint_report(args, findings, sources)


def _cmd_liberty(args: argparse.Namespace) -> int:
    from repro.liberty import read_library

    with open(args.library) as handle:
        library = read_library(handle.read())
    print(f"library {library.name}: {len(library.cells)} cells")
    print(f"LVF2 extension present: {library.is_lvf2}")
    for cell in library.cells.values():
        arcs = cell.arcs()
        statistical = sum(arc.is_statistical for _, arc in arcs)
        lvf2 = sum(arc.is_lvf2 for _, arc in arcs)
        print(
            f"  {cell.name:14s} arcs={len(arcs)} "
            f"statistical={statistical} lvf2={lvf2}"
        )
    if args.roundtrip:
        from repro.runtime.export import write_text_file

        out = args.roundtrip
        write_text_file(out, library.to_text())
        print(f"round-tripped to {out}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.liberty import read_library
    from repro.liberty.validate import Severity, validate_library

    with open(args.library) as handle:
        library = read_library(handle.read())
    diagnostics = validate_library(library)
    for diagnostic in diagnostics:
        print(diagnostic)
    errors = sum(
        1 for d in diagnostics if d.severity is Severity.ERROR
    )
    print(
        f"{len(diagnostics)} diagnostics ({errors} errors) in "
        f"library {library.name}"
    )
    return 1 if errors else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import os

    if getattr(args, "bench_command", None) == "compare":
        return _cmd_bench_compare(args)
    if args.paper and args.smoke:
        raise ParameterError(
            "--paper and --smoke are opposite scales; pick one"
        )
    if args.paper:
        os.environ["REPRO_PAPER"] = "1"
    from repro.experiments import run_all
    from repro.runtime import telemetry
    from repro.runtime.progress import configure_progress_logging

    if not args.quiet:
        configure_progress_logging()
    pool_config = None
    if args.workers > 1:
        from repro.runtime.pool import PoolConfig

        pool_config = PoolConfig(
            n_workers=args.workers,
            claim_timeout=args.claim_timeout,
            claim_skew=args.claim_skew,
        )
    table2_config = None
    scale_kwargs: dict = {}
    samples = args.samples
    if args.smoke:
        from repro.experiments import Table2Config

        # Sub-minute CI scale: every experiment shrunk, and the scale
        # recorded in the report config so a smoke report can never be
        # compared against a full-scale baseline.
        table2_config = Table2Config.smoke()
        samples = min(samples, 2000)
        scale_kwargs = {
            "fig4_samples": 500,
            "fig5_samples": 500,
            "clt_samples": 2000,
            "yield_budgets": (1024, 4096),
            "yield_repeats": 2,
            "fit_points": 24,
            "fit_samples": 200,
        }
    session = None
    records: list[dict] = []
    calibration = 0.0
    if args.json:
        from repro.perf import calibrate

        # Calibrate before the run, in the same process, so the
        # report's machine-speed reference sees the same interpreter
        # and BLAS state the timed suite does.
        calibration = calibrate()
        session = telemetry.TelemetrySession(sinks=(records.append,))
    context = (
        telemetry.activate(session)
        if session is not None
        else nullcontext()
    )
    try:
        with context:
            suite = run_all(
                scenario_samples=samples,
                table2_config=table2_config,
                progress=not args.quiet,
                checkpoint=_checkpoint_store(args),
                workers=args.workers,
                pool=pool_config,
                granularity=args.granularity,
                **scale_kwargs,
            )
    finally:
        if session is not None:
            session.close()
    print(suite.to_text())
    if args.json:
        from repro.perf import build_report, experiment_timings
        from repro.runtime.export import write_text_file

        report = build_report(
            experiment_timings(records),
            calibration,
            config={
                "samples": samples,
                "workers": args.workers,
                "granularity": args.granularity,
                "paper": bool(args.paper),
                "smoke": bool(args.smoke),
            },
        )
        write_text_file(
            args.json,
            json.dumps(report, indent=2, sort_keys=True) + "\n",
        )
        print(f"wrote perf report {args.json}", file=sys.stderr)
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.perf import (
        check_speedups,
        compare_reports,
        load_report,
        render_comparison,
        render_speedups,
    )

    current = load_report(args.current)
    rows = compare_reports(
        load_report(args.baseline),
        current,
        max_regression_pct=args.max_regression,
    )
    # Intra-report invariants (e.g. the batched fit must beat the
    # serial loop) are judged on the *current* report alone — they
    # need no baseline and no calibration.
    speedups = check_speedups(current)
    if args.json:
        print(
            json.dumps(
                {
                    "comparison": [row.to_dict() for row in rows],
                    "speedups": [row.to_dict() for row in speedups],
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(
            render_comparison(
                rows, max_regression_pct=args.max_regression
            )
        )
        print(render_speedups(speedups))
    failed = any(row.failed for row in rows) or any(
        row.failed for row in speedups
    )
    return 1 if failed else 0


def _cmd_yield(args: argparse.Namespace) -> int:
    from repro.stats.moments import sample_moments
    from repro.yield_est import estimate_yield

    samples = _load_samples(args.samples)
    summary = sample_moments(samples)
    if args.threshold is not None:
        threshold = args.threshold
    else:
        threshold = summary.sigma_point(args.target_sigma)
    if args.model == "none":
        from repro.stats import EmpiricalDistribution

        # Raw-sampler path: the engines bootstrap-resample the file
        # and (for IS) fit their own surrogate — exercises exactly the
        # pipeline an SSTA path-delay sampler would use.
        target: object = EmpiricalDistribution(samples)
    else:
        from repro.models import fit_model

        target = fit_model(args.model, samples)
    estimate = estimate_yield(
        target,
        threshold,
        engine=args.engine,
        budget=args.budget,
        rng=args.seed,
    )
    if args.json:
        print(estimate.to_json())
        return 0
    reference = (
        f"--threshold {threshold:.6g}"
        if args.threshold is not None
        else f"{args.target_sigma:g} sigma -> T={threshold:.6g}"
    )
    print(
        f"target: {reference} "
        f"(sample mean={summary.mean:.6g} std={summary.std:.6g})"
    )
    print(estimate.summary())
    return 0


def _cmd_fo4(_: argparse.Namespace) -> int:
    from repro.circuits import GateTimingEngine, TT_GLOBAL_LOCAL_MC
    from repro.ssta import fo4_condition, fo4_delay

    engine = GateTimingEngine(corner=TT_GLOBAL_LOCAL_MC)
    delay = fo4_delay(engine)
    slew, load = fo4_condition(engine)
    print(f"FO4 delay: {delay * 1e3:.3f} ps")
    print(f"FO4 condition: slew={slew * 1e3:.3f} ps load={load:.5f} pF")
    return 0


def _add_pool_flags(
    parser: argparse.ArgumentParser, *, sweep: str
) -> None:
    """Shared worker-pool flags (``characterize`` and ``bench``).

    Args:
        parser: The subcommand parser to extend.
        sweep: What ``--workers`` splits, for the help text
            ("characterisation", "the Table 2 library sweep").
    """
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=f"split {sweep} across N worker processes (claim-file "
        "coordination; output is byte-identical to a serial run)",
    )
    parser.add_argument(
        "--claim-timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="with --workers: seconds without a heartbeat before a "
        "dead worker's claim is reclaimed",
    )
    parser.add_argument(
        "--granularity",
        choices=("pin", "grid"),
        default="pin",
        help="with --workers: work-unit size — 'pin' (one claim per "
        "cell/pin payload) or 'grid' (one claim per slew-load grid "
        "point; load-balances per-pin-dominated workloads); output "
        "is byte-identical either way",
    )
    parser.add_argument(
        "--claim-skew",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="with --workers: extra cross-host clock skew tolerated "
        "on top of --claim-timeout before a claim is judged stale "
        "(NFS mtimes come from the server's clock)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "LVF2 statistical timing models, Liberty LVF2 extension, "
            "Monte-Carlo characterisation and SSTA (DAC'24 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list registered timing models")

    fit = sub.add_parser("fit", help="fit a model to a sample file")
    fit.add_argument("samples", help=".npy / text file or '-' for stdin")
    fit.add_argument("--model", default="LVF2")
    fit.add_argument(
        "--score",
        action="store_true",
        help="also report error reductions vs LVF",
    )

    scenario = sub.add_parser(
        "scenario", help="evaluate models on the Fig. 3 scenarios"
    )
    scenario.add_argument("--name", default=None)
    scenario.add_argument("--samples", type=int, default=50_000)
    scenario.add_argument("--seed", type=int, default=0)

    characterize = sub.add_parser(
        "characterize", help="characterise cells into a Liberty library"
    )
    characterize.add_argument(
        "--cells", nargs="+", default=["INV", "NAND2"]
    )
    characterize.add_argument("--drive", type=float, default=1.0)
    characterize.add_argument("--samples", type=int, default=2000)
    characterize.add_argument(
        "--grid", type=int, default=3, help="grid points per axis (<=8)"
    )
    characterize.add_argument("--seed", type=int, default=2024)
    characterize.add_argument("--out", default=None)
    characterize.add_argument(
        "--checkpoint-dir",
        default=None,
        help="per-arc checkpoint store for kill-and-resume runs",
    )
    characterize.add_argument(
        "--resume",
        action="store_true",
        help="reuse completed arcs from --checkpoint-dir",
    )
    characterize.add_argument(
        "--no-fallback",
        action="store_true",
        help="disable the fit fallback ladder and per-arc isolation "
        "(a degenerate fit aborts the run)",
    )
    characterize.add_argument(
        "--progress",
        action="store_true",
        help="log one line per characterised arc",
    )
    characterize.add_argument(
        "--serial-fit",
        action="store_true",
        help="fit grid points one at a time instead of through the "
        "batched EM path (bit-identical output either way; serial is "
        "slower and exists for cross-checking)",
    )
    characterize.add_argument(
        "--checkpoint-gc",
        action="store_true",
        help="before running, drop checkpoint entries whose token no "
        "longer matches the current configuration",
    )
    characterize.add_argument(
        "--checkpoint-max-age",
        type=float,
        default=None,
        metavar="HOURS",
        help="with --checkpoint-gc semantics: also drop checkpoint "
        "entries older than this many hours",
    )
    characterize.add_argument(
        "--checkpoint-max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="with --checkpoint-gc semantics: after dropping stale "
        "entries, evict oldest checkpoints until the store fits "
        "under this size cap",
    )
    _add_pool_flags(characterize, sweep="characterisation")
    characterize.add_argument(
        "--fs-retries",
        type=int,
        default=2,
        metavar="N",
        help="extra attempts after a transient filesystem error "
        "(EIO/ESTALE/ENOSPC) on checkpoint, claim, journal and "
        "export I/O before giving up",
    )
    characterize.add_argument(
        "--fs-backoff",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="base delay before the first filesystem retry; doubles "
        "per retry",
    )
    characterize.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a JSONL telemetry trace (spans, metrics, manifest)",
    )
    characterize.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        metavar="RATE",
        help="span sampling rate in (0, 1] for the trace sinks; "
        "structural and error spans are always kept",
    )
    characterize.add_argument(
        "--metrics",
        action="store_true",
        help="print the end-of-run metrics summary",
    )
    characterize.add_argument(
        "--report-json",
        default=None,
        metavar="FILE",
        help="write the fit report (rungs, degradations, quarantines) "
        "as JSON",
    )
    characterize.add_argument(
        "--manifest",
        default=None,
        metavar="FILE",
        help="write the run manifest (config hash, stage timings, "
        "library checksum) as JSON",
    )

    liberty = sub.add_parser("liberty", help="inspect a Liberty file")
    liberty.add_argument("library")
    liberty.add_argument(
        "--roundtrip", default=None, help="write the re-serialised text"
    )

    validate = sub.add_parser(
        "validate", help="lint a Liberty file (LVF/LVF2 contracts)"
    )
    validate.add_argument("library")

    bench = sub.add_parser(
        "bench", help="regenerate the paper's tables and figures"
    )
    bench.add_argument("--paper", action="store_true")
    bench.add_argument(
        "--smoke",
        action="store_true",
        help="sub-minute CI scale: shrink every experiment; perf "
        "reports record the scale so smoke and full-scale runs never "
        "compare against each other",
    )
    bench.add_argument("--samples", type=int, default=50_000)
    bench.add_argument("--quiet", action="store_true")
    bench.add_argument(
        "--checkpoint-dir",
        default=None,
        help="per-arc checkpoint store for the Table 2 library sweep",
    )
    bench.add_argument(
        "--resume",
        action="store_true",
        help="reuse completed arcs from --checkpoint-dir",
    )
    _add_pool_flags(bench, sweep="the Table 2 library sweep")
    bench.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="write a repro.bench/1 perf report (per-experiment wall "
        "times plus a machine calibration) for `bench compare`",
    )
    bench_sub = bench.add_subparsers(dest="bench_command")
    bench_compare = bench_sub.add_parser(
        "compare",
        help="judge a perf report against a baseline "
        "(calibration-normalised; exits 1 on regression)",
    )
    bench_compare.add_argument(
        "baseline", help="committed baseline report (benchmarks/baseline.json)"
    )
    bench_compare.add_argument(
        "current", help="freshly recorded report (`repro bench --json`)"
    )
    bench_compare.add_argument(
        "--max-regression",
        type=float,
        default=50.0,
        metavar="PCT",
        help="normalised slowdown (percent) above which an "
        "experiment fails the gate",
    )
    bench_compare.add_argument(
        "--json",
        action="store_true",
        help="print the comparison rows as JSON instead of the table",
    )

    yield_cmd = sub.add_parser(
        "yield",
        help="estimate far-tail yield at a k-sigma target "
        "(variance-reduced engines resolve 4-5 sigma where the "
        "empirical CDF saturates)",
    )
    yield_cmd.add_argument(
        "samples", help=".npy / text file or '-' for stdin"
    )
    yield_cmd.add_argument(
        "--model",
        default="LVF2",
        help="model family fitted to the samples before estimation; "
        "'none' treats the file as a raw sampler (bootstrap + "
        "surrogate for the IS engines)",
    )
    yield_cmd.add_argument(
        "--engine",
        choices=("mc", "is", "adaptive-is"),
        default="adaptive-is",
        help="estimation engine (mc = unbiased golden baseline)",
    )
    yield_cmd.add_argument(
        "--budget",
        type=int,
        default=8192,
        metavar="N",
        help="total simulator-call budget, pilot/adaptation included",
    )
    yield_cmd.add_argument(
        "--target-sigma",
        type=float,
        default=4.0,
        metavar="K",
        help="design target at sample mean + K sigma",
    )
    yield_cmd.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="T",
        help="explicit delay target (overrides --target-sigma)",
    )
    yield_cmd.add_argument(
        "--seed",
        type=int,
        default=0,
        help="estimation seed; same seed, byte-identical --json output",
    )
    yield_cmd.add_argument(
        "--json",
        action="store_true",
        help="print the repro.yield_estimate/1 document instead of "
        "the summary line",
    )

    status = sub.add_parser(
        "status",
        help="live progress of a pool checkpoint directory "
        "(units done/total, per-worker heartbeats, throughput, ETA)",
    )
    status.add_argument(
        "directory",
        help="the --checkpoint-dir of the running (or finished) pool",
    )
    status.add_argument(
        "--json",
        action="store_true",
        help="print one machine-readable status object per report",
    )
    status.add_argument(
        "--watch",
        action="store_true",
        help="keep reporting every --interval seconds until the run "
        "completes",
    )
    status.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh period for --watch",
    )
    status.add_argument(
        "--claim-timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="claim liveness threshold used for the in-flight count "
        "(match the run's --claim-timeout)",
    )

    trace = sub.add_parser(
        "trace",
        help="summarise, merge or profile JSONL telemetry traces",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_summarize = trace_sub.add_parser(
        "summarize",
        help="pretty-print the span tree, stage totals and metrics",
    )
    trace_summarize.add_argument(
        "file",
        help="trace file, or a directory holding one trace "
        "(a run directory with a manifest but no traces reports "
        "'no spans' instead of erroring)",
    )
    trace_analyze = trace_sub.add_parser(
        "analyze",
        help="profile a (merged) trace: per-phase wall-time "
        "attribution, worker utilization, stragglers, span waterfall",
    )
    trace_analyze.add_argument(
        "file", help="trace file (or a directory holding one)"
    )
    trace_analyze.add_argument(
        "--json",
        action="store_true",
        help="print the repro.trace_analysis/1 report as JSON",
    )
    trace_analyze.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="straggler / critical-path / waterfall row count",
    )
    trace_merge = trace_sub.add_parser(
        "merge",
        help="merge per-worker JSONL traces into one worker-tagged "
        "trace file",
    )
    trace_merge.add_argument(
        "inputs", nargs="+", help="source trace files, in merge order"
    )
    trace_merge.add_argument(
        "-o",
        "--out",
        required=True,
        help="destination trace file (may be one of the inputs)",
    )
    trace_merge.add_argument(
        "--labels",
        nargs="+",
        default=None,
        help="per-source worker labels (default: source file stems)",
    )

    def add_lint_output_flags(lint_parser: argparse.ArgumentParser) -> None:
        lint_parser.add_argument(
            "--format",
            choices=("text", "jsonl", "sarif"),
            default="text",
            help="report format (jsonl follows the telemetry sink "
            "conventions; sarif targets GitHub code scanning)",
        )
        lint_parser.add_argument(
            "--stats",
            action="store_true",
            help="append per-rule finding counts and scanned "
            "file/loc totals to the report",
        )
        lint_parser.add_argument(
            "--baseline",
            default=None,
            metavar="FILE",
            help="baseline file of grandfathered findings to apply",
        )
        lint_parser.add_argument(
            "--write-baseline",
            action="store_true",
            help="write the current findings to --baseline and exit 0",
        )

    lint = sub.add_parser(
        "lint",
        help="static determinism lint over Python sources (AST-based)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (e.g. src/repro)",
    )
    lint.add_argument(
        "--rules",
        action="store_true",
        help="print the rule table (all engines) and exit",
    )
    lint.add_argument(
        "--flow",
        action="store_true",
        help="also run the interprocedural flow pass (FLOW0xx "
        "determinism provenance + POOL0xx filesystem-race rules)",
    )
    add_lint_output_flags(lint)

    lint_lib = sub.add_parser(
        "lint-lib",
        help="domain lint for Liberty/LVF2 artifacts (AST-based)",
    )
    lint_lib.add_argument(
        "paths",
        nargs="+",
        help=".lib files or directories to lint",
    )
    add_lint_output_flags(lint_lib)

    sub.add_parser("fo4", help="print the technology FO4 delay")
    return parser


_COMMANDS = {
    "models": _cmd_models,
    "fit": _cmd_fit,
    "scenario": _cmd_scenario,
    "characterize": _cmd_characterize,
    "liberty": _cmd_liberty,
    "validate": _cmd_validate,
    "bench": _cmd_bench,
    "yield": _cmd_yield,
    "status": _cmd_status,
    "trace": _cmd_trace,
    "lint": _cmd_lint,
    "lint-lib": _cmd_lint_lib,
    "fo4": _cmd_fo4,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return exit_code_for(error)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — not an error.  Point
        # stdout at devnull so the interpreter's final flush of the
        # dead pipe cannot raise again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
