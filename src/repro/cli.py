"""Command-line interface: ``python -m repro`` / the ``repro`` script.

Subcommands:

- ``models``        — list registered timing models
- ``fit``           — fit a model to samples from a file and report
- ``scenario``      — sample a Fig. 3 scenario and compare all models
- ``characterize``  — Monte-Carlo characterise cells into a `.lib`
- ``liberty``       — parse and summarise a Liberty file
- ``bench``         — regenerate the paper's tables and figures
- ``fo4``           — print the technology FO4 delay
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.errors import (
    CharacterizationError,
    CheckpointError,
    ExperimentError,
    FittingError,
    LibertyError,
    ParameterError,
    ReproError,
    SSTAError,
)

__all__ = ["main", "build_parser", "exit_code_for", "EXIT_CODES"]

#: Exit code per error family; the most specific ancestor wins.  Code 1
#: is reserved for unclassified :class:`ReproError` values.
EXIT_CODES: dict[type[ReproError], int] = {
    ParameterError: 2,
    FittingError: 3,
    LibertyError: 4,
    CharacterizationError: 5,
    SSTAError: 6,
    ExperimentError: 7,
    CheckpointError: 8,
}


def exit_code_for(error: ReproError) -> int:
    """Map an error to its family's exit code (1 for the base class)."""
    for klass in type(error).__mro__:
        if klass in EXIT_CODES:
            return EXIT_CODES[klass]
    return 1


def _load_samples(path: str) -> np.ndarray:
    """Load samples from ``.npy`` or whitespace-separated text / stdin.

    Raises:
        ParameterError: When the file is missing or not parseable as
            numeric samples — the CLI reports one line, not a numpy
            traceback.
    """
    try:
        if path == "-":
            return np.loadtxt(sys.stdin)
        if path.endswith(".npy"):
            return np.load(path)
        return np.loadtxt(path)
    except (OSError, ValueError) as error:
        raise ParameterError(
            f"cannot load samples from {path!r}: {error}"
        ) from error


def _checkpoint_store(args: argparse.Namespace):
    """Build the checkpoint store requested by --checkpoint-dir/--resume."""
    from repro.runtime.checkpoint import CheckpointStore

    if not args.checkpoint_dir:
        if args.resume:
            raise ParameterError(
                "--resume requires --checkpoint-dir pointing at the "
                "store of the interrupted run"
            )
        return None
    return CheckpointStore(args.checkpoint_dir, reuse=args.resume)


def _cmd_models(_: argparse.Namespace) -> int:
    from repro.models import available_models, get_model

    for name in available_models():
        cls = get_model(name)
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        print(f"{name:10s} {doc}")
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    from repro.binning import evaluate_models
    from repro.models import fit_model
    from repro.stats import EmpiricalDistribution

    samples = _load_samples(args.samples)
    model = fit_model(args.model, samples)
    summary = model.moments()
    print(
        f"{args.model}: mean={summary.mean:.6g} std={summary.std:.6g} "
        f"skew={summary.skewness:+.4g} kurt={summary.kurtosis:+.4g} "
        f"params={model.n_parameters}"
    )
    if args.score:
        golden = EmpiricalDistribution(samples)
        report = evaluate_models(
            {args.model: model, "LVF": fit_model("LVF", samples)},
            golden,
        )
        row = report[args.model]
        print(
            f"binning_reduction={row['binning_reduction']:.2f}x "
            f"yield_reduction={row['yield_reduction']:.2f}x "
            f"rmse_reduction={row['rmse_reduction']:.2f}x"
        )
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.circuits import get_scenario, scenario_names
    from repro.experiments import score_paper_models

    names = [args.name] if args.name else list(scenario_names())
    for name in names:
        scenario = get_scenario(name)
        samples = scenario.sample(args.samples, rng=args.seed)
        report = score_paper_models(samples)
        print(f"{name}:")
        for model, row in report.items():
            print(
                f"  {model:6s} binning={row['binning_reduction']:8.2f}x "
                f"yield={row['yield_reduction']:8.2f}x "
                f"rmse={row['rmse_reduction']:8.2f}x"
            )
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.circuits import (
        CharacterizationConfig,
        GateTimingEngine,
        TT_GLOBAL_LOCAL_MC,
        build_cell,
        characterize_library,
    )
    from repro.circuits.characterize import PAPER_LOADS, PAPER_SLEWS
    from repro.runtime import FitPolicy, FitReport, ProgressReporter
    from repro.runtime.progress import configure_progress_logging

    configure_progress_logging()
    engine = GateTimingEngine(corner=TT_GLOBAL_LOCAL_MC)
    grid = args.grid
    config = CharacterizationConfig(
        slews=PAPER_SLEWS[:grid],
        loads=PAPER_LOADS[:grid],
        n_samples=args.samples,
        seed=args.seed,
    )
    cells = [build_cell(name, args.drive) for name in args.cells]
    report = FitReport()
    library = characterize_library(
        engine,
        cells,
        config,
        checkpoint=_checkpoint_store(args),
        policy=None if args.no_fallback else FitPolicy(),
        report=report,
        isolate_errors=not args.no_fallback,
        progress=ProgressReporter(enabled=args.progress),
    )
    text = library.to_text()
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(
            f"wrote {args.out}: {len(library.cells)} cells, "
            f"{grid}x{grid} grid, {args.samples} samples/condition"
        )
    else:
        print(text)
    if report.n_fits and (
        report.degraded_records() or report.quarantined
    ):
        print(report.summary())
    return 0


def _cmd_liberty(args: argparse.Namespace) -> int:
    from repro.liberty import read_library

    with open(args.library) as handle:
        library = read_library(handle.read())
    print(f"library {library.name}: {len(library.cells)} cells")
    print(f"LVF2 extension present: {library.is_lvf2}")
    for cell in library.cells.values():
        arcs = cell.arcs()
        statistical = sum(arc.is_statistical for _, arc in arcs)
        lvf2 = sum(arc.is_lvf2 for _, arc in arcs)
        print(
            f"  {cell.name:14s} arcs={len(arcs)} "
            f"statistical={statistical} lvf2={lvf2}"
        )
    if args.roundtrip:
        out = args.roundtrip
        with open(out, "w") as handle:
            handle.write(library.to_text())
        print(f"round-tripped to {out}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.liberty import read_library
    from repro.liberty.validate import Severity, validate_library

    with open(args.library) as handle:
        library = read_library(handle.read())
    diagnostics = validate_library(library)
    for diagnostic in diagnostics:
        print(diagnostic)
    errors = sum(
        1 for d in diagnostics if d.severity is Severity.ERROR
    )
    print(
        f"{len(diagnostics)} diagnostics ({errors} errors) in "
        f"library {library.name}"
    )
    return 1 if errors else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import os

    if args.paper:
        os.environ["REPRO_PAPER"] = "1"
    from repro.experiments import run_all
    from repro.runtime.progress import configure_progress_logging

    if not args.quiet:
        configure_progress_logging()
    suite = run_all(
        scenario_samples=args.samples,
        progress=not args.quiet,
        checkpoint=_checkpoint_store(args),
    )
    print(suite.to_text())
    return 0


def _cmd_fo4(_: argparse.Namespace) -> int:
    from repro.circuits import GateTimingEngine, TT_GLOBAL_LOCAL_MC
    from repro.ssta import fo4_condition, fo4_delay

    engine = GateTimingEngine(corner=TT_GLOBAL_LOCAL_MC)
    delay = fo4_delay(engine)
    slew, load = fo4_condition(engine)
    print(f"FO4 delay: {delay * 1e3:.3f} ps")
    print(f"FO4 condition: slew={slew * 1e3:.3f} ps load={load:.5f} pF")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "LVF2 statistical timing models, Liberty LVF2 extension, "
            "Monte-Carlo characterisation and SSTA (DAC'24 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list registered timing models")

    fit = sub.add_parser("fit", help="fit a model to a sample file")
    fit.add_argument("samples", help=".npy / text file or '-' for stdin")
    fit.add_argument("--model", default="LVF2")
    fit.add_argument(
        "--score",
        action="store_true",
        help="also report error reductions vs LVF",
    )

    scenario = sub.add_parser(
        "scenario", help="evaluate models on the Fig. 3 scenarios"
    )
    scenario.add_argument("--name", default=None)
    scenario.add_argument("--samples", type=int, default=50_000)
    scenario.add_argument("--seed", type=int, default=0)

    characterize = sub.add_parser(
        "characterize", help="characterise cells into a Liberty library"
    )
    characterize.add_argument(
        "--cells", nargs="+", default=["INV", "NAND2"]
    )
    characterize.add_argument("--drive", type=float, default=1.0)
    characterize.add_argument("--samples", type=int, default=2000)
    characterize.add_argument(
        "--grid", type=int, default=3, help="grid points per axis (<=8)"
    )
    characterize.add_argument("--seed", type=int, default=2024)
    characterize.add_argument("--out", default=None)
    characterize.add_argument(
        "--checkpoint-dir",
        default=None,
        help="per-arc checkpoint store for kill-and-resume runs",
    )
    characterize.add_argument(
        "--resume",
        action="store_true",
        help="reuse completed arcs from --checkpoint-dir",
    )
    characterize.add_argument(
        "--no-fallback",
        action="store_true",
        help="disable the fit fallback ladder and per-arc isolation "
        "(a degenerate fit aborts the run)",
    )
    characterize.add_argument(
        "--progress",
        action="store_true",
        help="log one line per characterised arc",
    )

    liberty = sub.add_parser("liberty", help="inspect a Liberty file")
    liberty.add_argument("library")
    liberty.add_argument(
        "--roundtrip", default=None, help="write the re-serialised text"
    )

    validate = sub.add_parser(
        "validate", help="lint a Liberty file (LVF/LVF2 contracts)"
    )
    validate.add_argument("library")

    bench = sub.add_parser(
        "bench", help="regenerate the paper's tables and figures"
    )
    bench.add_argument("--paper", action="store_true")
    bench.add_argument("--samples", type=int, default=50_000)
    bench.add_argument("--quiet", action="store_true")
    bench.add_argument(
        "--checkpoint-dir",
        default=None,
        help="per-arc checkpoint store for the Table 2 library sweep",
    )
    bench.add_argument(
        "--resume",
        action="store_true",
        help="reuse completed arcs from --checkpoint-dir",
    )

    sub.add_parser("fo4", help="print the technology FO4 delay")
    return parser


_COMMANDS = {
    "models": _cmd_models,
    "fit": _cmd_fit,
    "scenario": _cmd_scenario,
    "characterize": _cmd_characterize,
    "liberty": _cmd_liberty,
    "validate": _cmd_validate,
    "bench": _cmd_bench,
    "fo4": _cmd_fo4,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return exit_code_for(error)


if __name__ == "__main__":
    sys.exit(main())
