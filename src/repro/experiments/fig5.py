"""Figure 5: binning error reduction along two critical paths.

Regenerates both §4.4 benchmarks — the 16-bit carry adder and the
6-stage H-tree — as error-reduction-vs-FO4-depth series for all four
models, and reports the paper's two comparison points per path: the
reduction near 8 FO4 and at the path end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.gate import GateTimingEngine
from repro.circuits.process import TT_GLOBAL_LOCAL_MC
from repro.experiments.common import PAPER_MODELS, paper_scale
from repro.ssta.fo4 import fo4_delay
from repro.ssta.paths import (
    build_carry_adder_path,
    build_htree_path,
    simulate_path_stages,
)
from repro.ssta.propagate import PathPropagationResult, propagate_path

__all__ = ["Fig5Result", "run_fig5", "PAPER_FIG5_POINTS"]

#: The paper's quoted Fig. 5 comparison points for LVF2.
PAPER_FIG5_POINTS = {
    "adder": {"at_8fo4": 2.0, "at_end": 1.15},
    "htree": {"at_8fo4": 8.0, "at_end": 2.68},
}


@dataclass(frozen=True)
class Fig5Result:
    """Both Fig. 5 panels.

    Attributes:
        fo4: The FO4 normalisation delay (ns).
        adder: Propagation result for the 16-bit carry adder.
        htree: Propagation result for the 6-stage H-tree.
    """

    fo4: float
    adder: PathPropagationResult
    htree: PathPropagationResult

    def to_text(self) -> str:
        lines = [
            "Figure 5 — binning error reduction along critical paths",
            f"FO4 = {self.fo4 * 1e3:.2f} ps",
        ]
        for name, result in (("adder", self.adder), ("htree", self.htree)):
            lines.append(
                f"{name}: depth {result.fo4_depths[-1]:.1f} FO4, "
                f"{len(result.stage_names)} stages"
            )
            header = "  depth(FO4) " + " ".join(
                f"{model:>6s}" for model in PAPER_MODELS
            )
            lines.append(header)
            for index, depth in enumerate(result.fo4_depths):
                lines.append(
                    f"  {depth:10.1f} "
                    + " ".join(
                        f"{result.reductions[model][index]:6.2f}"
                        for model in PAPER_MODELS
                    )
                )
            lines.append(
                f"  LVF2 at ~8 FO4: "
                f"{result.reduction_at_depth('LVF2', 8.0):.2f}x "
                f"(paper {PAPER_FIG5_POINTS[name]['at_8fo4']:.2f}x); "
                f"at end: {result.final_reduction('LVF2'):.2f}x "
                f"(paper {PAPER_FIG5_POINTS[name]['at_end']:.2f}x)"
            )
        return "\n".join(lines)


def run_fig5(
    *,
    n_samples: int | None = None,
    seed: int = 3,
    engine: GateTimingEngine | None = None,
    adder_bits: int = 16,
    htree_levels: int = 6,
) -> Fig5Result:
    """Regenerate Figure 5.

    Args:
        n_samples: Monte-Carlo population per stage (paper scale: 50k).
        seed: RNG seed for the stage simulations.
        engine: Timing engine override.
        adder_bits: Carry-adder width.
        htree_levels: H-tree depth.
    """
    samples = n_samples or (50_000 if paper_scale() else 10_000)
    sim = engine or GateTimingEngine(corner=TT_GLOBAL_LOCAL_MC)
    fo4 = fo4_delay(sim)
    results = {}
    for name, path in (
        ("adder", build_carry_adder_path(adder_bits)),
        ("htree", build_htree_path(htree_levels)),
    ):
        simulations = simulate_path_stages(
            sim, path, samples, seed=seed
        )
        results[name] = propagate_path(simulations, fo4=fo4)
    return Fig5Result(
        fo4=fo4, adder=results["adder"], htree=results["htree"]
    )
