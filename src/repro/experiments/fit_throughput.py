"""Vectorized-fit throughput: batched EM vs the serial per-point loop.

Library characterisation fits four models per (slew, load) condition,
so per-fit cost dominates the flow.  This experiment times the LVF2
multi-start EM fit over a characterisation-shaped grid two ways — the
original one-point-at-a-time Python loop and the stacked
``(n_points, n_samples)`` batch of :meth:`LVF2Model.fit_batch` — and
verifies the two produce bit-identical parameters, which is the
batched path's load-bearing invariant.

The two timings run under ``experiment=fit_serial`` / ``fit_batch``
telemetry spans, so ``repro bench --json`` reports record them and the
CI perf gate can assert the batch stays faster (see
:func:`repro.perf.compare.check_speedups`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.models.lvf2 import LVF2Model
from repro.runtime import telemetry
from repro.stats.mixtures import Mixture
from repro.stats.skew_normal import SkewNormal

__all__ = ["FitThroughputResult", "run_fit_throughput"]


@dataclass(frozen=True)
class FitThroughputResult:
    """Timings of the serial and batched LVF2 grid fits.

    Attributes:
        n_points: Grid points fitted (one bimodal population each).
        n_samples: Monte-Carlo samples per point.
        serial_seconds: Wall time of the per-point ``fit`` loop.
        batch_seconds: Wall time of one ``fit_batch`` call.
        identical: Whether every point's fitted parameters matched
            bit-for-bit between the two paths.
    """

    n_points: int
    n_samples: int
    serial_seconds: float
    batch_seconds: float
    identical: bool

    @property
    def speedup(self) -> float:
        """Serial wall time over batched wall time."""
        if self.batch_seconds <= 0.0:
            return float("inf")
        return self.serial_seconds / self.batch_seconds

    def to_text(self) -> str:
        return "\n".join(
            [
                "Fit throughput — batched EM vs serial per-point loop",
                f"  grid: {self.n_points} points x "
                f"{self.n_samples} samples",
                f"  serial loop : {self.serial_seconds:8.3f} s",
                f"  fit_batch   : {self.batch_seconds:8.3f} s",
                f"  speedup     : {self.speedup:8.2f}x",
                "  parameters  : "
                + (
                    "bit-identical"
                    if self.identical
                    else "MISMATCH (vectorization broke exactness!)"
                ),
            ]
        )


def _grid_samples(
    n_points: int, n_samples: int, seed: int
) -> np.ndarray:
    """A characterisation-shaped stack of bimodal populations.

    Each point draws from a two-component skew-normal mixture whose
    location/weight drift across the grid, the way delay distributions
    drift across a (slew, load) sweep.
    """
    rng = np.random.default_rng(seed)
    rows = []
    for index in range(n_points):
        shift = 0.3 * index / max(1, n_points - 1)
        mixture = Mixture(
            (0.6 - 0.1 * shift, 0.4 + 0.1 * shift),
            (
                SkewNormal.from_moments(1.0 + shift, 0.05, 0.6),
                SkewNormal.from_moments(1.25 + shift, 0.04, -0.3),
            ),
        )
        rows.append(mixture.rvs(n_samples, rng=rng))
    return np.stack(rows)


def run_fit_throughput(
    *,
    n_points: int = 256,
    n_samples: int = 100,
    seed: int = 0,
) -> FitThroughputResult:
    """Time the serial vs batched LVF2 fit over one synthetic grid.

    The serial loop runs first (under ``experiment=fit_serial``), the
    batch second (``experiment=fit_batch``), both over the same stack;
    the result records whether their fitted parameters agree exactly.
    """
    stack = _grid_samples(n_points, n_samples, seed)
    with telemetry.span("experiment", experiment="fit_serial"):
        start = time.perf_counter()
        serial = [LVF2Model.fit(stack[index]) for index in range(n_points)]
        serial_seconds = time.perf_counter() - start
    with telemetry.span("experiment", experiment="fit_batch"):
        start = time.perf_counter()
        batched = LVF2Model.fit_batch(stack)
        batch_seconds = time.perf_counter() - start
    identical = all(
        a.parameters() == b.parameters()
        for a, b in zip(serial, batched)
    )
    return FitThroughputResult(
        n_points=n_points,
        n_samples=n_samples,
        serial_seconds=serial_seconds,
        batch_seconds=batch_seconds,
        identical=identical,
    )
