"""§3.4 analysis: Berry-Esseen convergence of summed stage delays.

Demonstrates Corollaries 2 and 3: the Kolmogorov distance of the
standardised n-stage path delay to the Gaussian decays as
``O(1/sqrt(n))`` and is controlled by the stage distribution's third
absolute moment — the quantitative backing for "when to switch from
LVF2 to the compatible LVF".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.scenarios import get_scenario
from repro.ssta.clt import CLTConvergenceRow, convergence_table

__all__ = ["CLTResult", "run_clt_convergence"]


@dataclass(frozen=True)
class CLTResult:
    """Convergence rows for one non-Gaussian stage distribution.

    Attributes:
        scenario: Name of the stage-delay scenario used.
        rows: Per-depth sup-distance and Berry-Esseen bound.
    """

    scenario: str
    rows: tuple[CLTConvergenceRow, ...]

    def to_text(self) -> str:
        lines = [
            "CLT convergence (paper §3.4) — stage distribution: "
            f"{self.scenario}",
            "  n     sup|F_n - Phi|   C*rho/sqrt(n)   sqrt(n)*dist",
        ]
        for row in self.rows:
            lines.append(
                f"  {row.n_stages:4d}  {row.sup_distance:14.5f}  "
                f"{row.bound:13.5f}  {row.sup_distance * np.sqrt(row.n_stages):12.5f}"
            )
        return "\n".join(lines)

    def rate_exponent(self) -> float:
        """Fitted decay exponent of sup-distance vs n (expect ~ -0.5).

        Least-squares slope of ``log(distance)`` against ``log(n)``.
        """
        ns = np.array([row.n_stages for row in self.rows], dtype=float)
        distances = np.array(
            [row.sup_distance for row in self.rows], dtype=float
        )
        slope, _ = np.polyfit(np.log(ns), np.log(distances), 1)
        return float(slope)

    def bound_satisfied(self) -> bool:
        """Whether every empirical distance sits below its bound."""
        return all(row.sup_distance <= row.bound for row in self.rows)


def run_clt_convergence(
    scenario: str = "2 Peaks",
    *,
    depths: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
    n_samples: int = 50_000,
    seed: int = 0,
) -> CLTResult:
    """Run the convergence experiment with a scenario stage delay."""
    stage = get_scenario(scenario)

    def sampler(count: int, rng: np.random.Generator) -> np.ndarray:
        return stage.sample(count, rng=rng)

    rows = convergence_table(
        sampler, depths, n_samples=n_samples, rng=seed
    )
    return CLTResult(scenario=scenario, rows=tuple(rows))
