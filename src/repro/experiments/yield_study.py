"""Accuracy-vs-budget study for the yield estimator zoo.

The estimator-zoo counterpart of the paper's §4 accuracy tables: fit
the paper's model to a scenario arc, take the model's analytic tail
probability at ``mu + k sigma`` as ground truth, and score every
engine's relative RMSE against it across a ladder of simulator-call
budgets (seeded repeats per cell).

The headline column is **sample efficiency**: how many plain-MC
samples the achieved accuracy would have cost, over the budget the
engine actually spent.  Plain MC needs ``n = (1 - p) / (p eps^2)``
samples for relative error ``eps`` at failure probability ``p`` —
about 1.3e7 for 5% at 4 sigma — which is the cost the
importance-sampling engines amortise away.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

import numpy as np

from repro.binning.metrics import geometric_mean
from repro.circuits.scenarios import get_scenario
from repro.errors import ParameterError
from repro.experiments.common import format_table
from repro.models import fit_model

__all__ = [
    "YieldStudyCell",
    "YieldStudyResult",
    "mc_samples_required",
    "run_yield_study",
]

#: Default budget ladder (simulator calls per estimate).
DEFAULT_BUDGETS: tuple[int, ...] = (2048, 8192, 32768)

#: Engines scored by the study, golden baseline first.
DEFAULT_ENGINES: tuple[str, ...] = ("mc", "is", "adaptive-is")


def mc_samples_required(p: float, rel_err: float) -> float:
    """Plain-MC samples for relative standard error ``rel_err`` at ``p``.

    From the binomial variance: ``n = (1 - p) / (p * rel_err^2)``.
    """
    if not 0.0 < p < 1.0:
        raise ParameterError(
            f"failure probability must lie in (0, 1), got {p}"
        )
    if rel_err <= 0.0:
        raise ParameterError(
            f"relative error must be positive, got {rel_err}"
        )
    return (1.0 - p) / (p * rel_err * rel_err)


@dataclass(frozen=True)
class YieldStudyCell:
    """One engine at one budget, aggregated over seeded repeats.

    Attributes:
        engine: Registry name of the engine.
        budget: Simulator-call budget per estimate.
        rel_rmse: Root-mean-square relative error vs the analytic
            truth over the repeats.
        mean_ess: Mean effective failure observations per estimate.
        n_repeats: Seeded repeats aggregated.
        efficiency: Plain-MC samples the achieved ``rel_rmse`` would
            cost, over ``budget`` — the "x fewer samples" headline
            (``>> 10`` for a working IS engine).  NaN when the cell
            effectively observed no failure at all (mean ESS below 1):
            an estimate pinned at 0 has relative error exactly 1 by
            construction, which the binomial cost formula would
            mistake for legitimate accuracy.
    """

    engine: str
    budget: int
    rel_rmse: float
    mean_ess: float
    n_repeats: int
    efficiency: float

    def to_dict(self) -> dict:
        return {
            "engine": self.engine,
            "budget": int(self.budget),
            "rel_rmse": float(self.rel_rmse),
            "mean_ess": float(self.mean_ess),
            "n_repeats": int(self.n_repeats),
            "efficiency": (
                float(self.efficiency)
                if math.isfinite(self.efficiency)
                else None
            ),
        }


@dataclass(frozen=True)
class YieldStudyResult:
    """Full accuracy-vs-budget grid for one arc and target.

    Attributes:
        scenario: Scenario arc the model was fitted to.
        model: Fitted model family providing the analytic truth.
        k: Sigma level of the design target.
        threshold: The resolved ``mu + k sigma`` delay target.
        truth: Analytic ``P(t > threshold)`` of the fitted model.
        cells: One :class:`YieldStudyCell` per engine x budget.
    """

    scenario: str
    model: str
    k: float
    threshold: float
    truth: float
    cells: tuple[YieldStudyCell, ...]

    def cell(self, engine: str, budget: int) -> YieldStudyCell:
        for candidate in self.cells:
            if candidate.engine == engine and candidate.budget == budget:
                return candidate
        raise ParameterError(
            f"no study cell for engine={engine!r} budget={budget}"
        )

    def engine_efficiency(self, engine: str) -> float:
        """Geometric-mean sample efficiency of one engine."""
        values = [
            cell.efficiency
            for cell in self.cells
            if cell.engine == engine
        ]
        if not values:
            raise ParameterError(f"engine {engine!r} not in the study")
        return geometric_mean(values)

    def to_text(self) -> str:
        title = (
            "Yield estimator accuracy vs budget — "
            f"{self.scenario} / {self.model}, "
            f"target {self.k:g} sigma "
            f"(T={self.threshold:.6g}, "
            f"P_fail={self.truth:.4g})"
        )
        rows = [
            [
                cell.engine,
                cell.budget,
                f"{cell.rel_rmse:.3%}",
                f"{cell.mean_ess:.0f}",
                (
                    f"{cell.efficiency:.1f}x"
                    if math.isfinite(cell.efficiency)
                    else "-"
                ),
            ]
            for cell in self.cells
        ]
        return format_table(
            ["engine", "budget", "rel RMSE", "mean ESS", "vs MC"],
            rows,
            title=title,
        )

    def to_dict(self) -> dict:
        return {
            "schema": "repro.yield_study/1",
            "scenario": self.scenario,
            "model": self.model,
            "k": float(self.k),
            "threshold": float(self.threshold),
            "truth": float(self.truth),
            "cells": [cell.to_dict() for cell in self.cells],
        }


def run_yield_study(
    scenario: str = "Multi-Peaks",
    *,
    model: str = "LVF2",
    k: float = 4.0,
    budgets: tuple[int, ...] = DEFAULT_BUDGETS,
    engines: tuple[str, ...] = DEFAULT_ENGINES,
    repeats: int = 5,
    fit_samples: int = 50_000,
    seed: int = 0,
) -> YieldStudyResult:
    """Score every engine x budget cell against the analytic truth.

    Each repeat is independently seeded from ``(seed, engine index,
    budget index, repeat index)``, so the whole grid is deterministic
    and cells do not share sample streams.
    """
    from repro.yield_est import estimate_yield

    if repeats < 1:
        raise ParameterError(f"repeats must be >= 1, got {repeats}")
    arc = get_scenario(scenario)
    samples = arc.sample(fit_samples, rng=seed)
    fitted = fit_model(model, samples)
    threshold = float(fitted.moments().sigma_point(k))
    truth = float(fitted.sf(threshold))
    if not truth > 0.0:
        raise ParameterError(
            f"analytic failure probability vanished at k={k}; "
            "lower the target"
        )
    cells: list[YieldStudyCell] = []
    for engine_index, engine in enumerate(engines):
        for budget_index, budget in enumerate(budgets):
            errors = []
            ess_values = []
            for repeat in range(repeats):
                estimate = estimate_yield(
                    fitted,
                    threshold,
                    engine=engine,
                    budget=budget,
                    rng=np.random.default_rng(
                        [seed, engine_index, budget_index, repeat]
                    ),
                )
                errors.append(estimate.relative_error(truth))
                ess_values.append(estimate.ess)
            rel_rmse = float(
                np.sqrt(np.mean(np.square(errors)))
            )
            mean_ess = float(np.mean(ess_values))
            if mean_ess < 1.0:
                efficiency = math.nan
            else:
                # A cell nailing the truth to numerical precision
                # would divide by zero; floor matches
                # error_reduction's.
                efficiency = mc_samples_required(
                    truth, max(rel_rmse, 1e-12)
                ) / budget
            cells.append(
                YieldStudyCell(
                    engine=engine,
                    budget=int(budget),
                    rel_rmse=rel_rmse,
                    mean_ess=mean_ess,
                    n_repeats=repeats,
                    efficiency=float(efficiency),
                )
            )
    return YieldStudyResult(
        scenario=scenario,
        model=model,
        k=k,
        threshold=threshold,
        truth=truth,
        cells=tuple(cells),
    )


def main(argv: list[str] | None = None) -> int:
    """CI entry point: ``python -m repro.experiments.yield_study``."""
    import argparse

    parser = argparse.ArgumentParser(
        description="yield estimator accuracy-vs-budget study"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI scale: fewer repeats, smaller budgets and fit set",
    )
    parser.add_argument("--k", type=float, default=4.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the repro.yield_study/1 document",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        result = run_yield_study(
            k=args.k,
            budgets=(1024, 4096),
            repeats=2,
            fit_samples=8000,
            seed=args.seed,
        )
    else:
        result = run_yield_study(k=args.k, seed=args.seed)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(result.to_text())
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
