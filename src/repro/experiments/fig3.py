"""Figure 3: model fits for the five representative scenarios.

Regenerates, per scenario: the golden histogram, the fitted PDF of
each of the four models on a common grid, and the LVF2 two-component
decomposition (the figure's bottom row).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.scenarios import SCENARIOS, Scenario
from repro.experiments.common import fit_paper_models
from repro.models import LVF2Model, TimingModel
from repro.stats.empirical import EmpiricalDistribution

__all__ = ["Fig3Panel", "Fig3Result", "run_fig3"]


@dataclass(frozen=True)
class Fig3Panel:
    """One scenario panel of Figure 3.

    Attributes:
        scenario: The ground-truth scenario.
        grid: Evaluation grid (x axis).
        golden_density: Histogram density of the golden samples.
        model_pdfs: Fitted PDF per model on ``grid``.
        decomposition: LVF2 weighted component densities
            ``((1-lambda) f1, lambda f2)``.
    """

    scenario: Scenario
    grid: np.ndarray
    golden_density: np.ndarray
    model_pdfs: dict[str, np.ndarray]
    decomposition: tuple[np.ndarray, np.ndarray]

    def peak_error(self, model: str) -> float:
        """Max |model pdf - golden density| over the grid."""
        return float(
            np.max(np.abs(self.model_pdfs[model] - self.golden_density))
        )


@dataclass(frozen=True)
class Fig3Result:
    """All five panels plus the fitted models."""

    panels: dict[str, Fig3Panel]
    models: dict[str, dict[str, TimingModel]]

    def to_text(self) -> str:
        lines = ["Figure 3 — scenario PDF fits (max pdf error vs golden)"]
        for name, panel in self.panels.items():
            errors = ", ".join(
                f"{model}={panel.peak_error(model):.3f}"
                for model in panel.model_pdfs
            )
            lines.append(f"  {name:12s}: {errors}")
        return "\n".join(lines)


def run_fig3(
    n_samples: int = 50_000,
    *,
    seed: int = 0,
    n_grid: int = 400,
) -> Fig3Result:
    """Regenerate Figure 3.

    Args:
        n_samples: Golden samples per scenario (paper: 50k).
        seed: RNG seed for scenario sampling.
        n_grid: PDF evaluation points.
    """
    panels: dict[str, Fig3Panel] = {}
    fitted: dict[str, dict[str, TimingModel]] = {}
    for index, (name, scenario) in enumerate(SCENARIOS.items()):
        samples = scenario.sample(n_samples, rng=seed + index)
        golden = EmpiricalDistribution(samples)
        grid = golden.grid(n_points=n_grid, spread=4.0)
        centers, density = golden.histogram(n_bins=120)
        density_on_grid = np.interp(grid, centers, density)
        models = fit_paper_models(samples)
        lvf2 = models["LVF2"]
        assert isinstance(lvf2, LVF2Model)
        panels[name] = Fig3Panel(
            scenario=scenario,
            grid=grid,
            golden_density=density_on_grid,
            model_pdfs={
                model_name: np.asarray(model.pdf(grid))
                for model_name, model in models.items()
            },
            decomposition=lvf2.decomposition(grid),
        )
        fitted[name] = models
    return Fig3Result(panels=panels, models=fitted)
