"""Shared experiment plumbing.

Every experiment module regenerates one paper table or figure and
returns a typed result with a ``to_text()`` renderer that prints the
same rows/series the paper reports.  This module holds the pieces they
share: fitting the four compared models, scoring them with the §4
metrics, and formatting aligned text tables.
"""

from __future__ import annotations

import os
from collections.abc import Mapping, Sequence

import numpy as np

from repro.binning.metrics import evaluate_models
from repro.errors import FittingError
from repro.models import PAPER_MODELS, TimingModel, get_model
from repro.stats.empirical import EmpiricalDistribution

__all__ = [
    "PAPER_MODELS",
    "fit_paper_models",
    "score_paper_models",
    "format_table",
    "paper_scale",
]


def paper_scale() -> bool:
    """Whether to run experiments at full paper scale.

    Controlled by the ``REPRO_PAPER`` environment variable; default is
    a CI-sized configuration with identical structure.
    """
    return os.environ.get("REPRO_PAPER", "0") not in ("0", "", "false")


def fit_paper_models(
    samples: np.ndarray,
    model_names: Sequence[str] = PAPER_MODELS,
) -> dict[str, TimingModel]:
    """Fit the paper's four models to one golden sample set.

    A model that fails to fit (e.g. LESN on data with non-positive
    values) falls back to the LVF fit so every table cell stays
    populated — mirroring how a characterisation flow would degrade.
    """
    models: dict[str, TimingModel] = {}
    fallback = get_model("LVF").fit(samples)
    for name in model_names:
        try:
            models[name] = get_model(name).fit(samples)
        except FittingError:
            models[name] = fallback
    return models


def score_paper_models(
    samples: np.ndarray,
    model_names: Sequence[str] = PAPER_MODELS,
    *,
    baseline: str = "LVF",
) -> dict[str, dict[str, float]]:
    """Fit + §4-score the paper's models against golden ``samples``."""
    golden = EmpiricalDistribution(samples)
    models = fit_paper_models(samples, model_names)
    return evaluate_models(models, golden, baseline=baseline)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table (the report format)."""
    rendered_rows = [
        [
            f"{value:.2f}" if isinstance(value, float) else str(value)
            for value in row
        ]
        for row in rows
    ]
    widths = [
        max(
            len(str(header)),
            *(len(row[index]) for row in rendered_rows),
        )
        if rendered_rows
        else len(str(header))
        for index, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(
            str(header).ljust(width)
            for header, width in zip(headers, widths)
        )
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(
            "  ".join(
                value.ljust(width) for value, width in zip(row, widths)
            )
        )
    return "\n".join(lines)


def geometric_mean_over(
    mapping: Mapping[str, float], keys: Sequence[str]
) -> float:
    """Geometric mean of ``mapping[key]`` over ``keys``."""
    values = np.array([mapping[key] for key in keys], dtype=float)
    return float(np.exp(np.mean(np.log(np.maximum(values, 1e-12)))))
