"""Figure 4: slew-load accuracy pattern heatmaps.

Regenerates the NAND2 delay and transition heatmaps of LVF2's CDF-RMSE
reduction over the 8x8 slew-load grid, plus the diagonal-pattern
statistic the paper discusses in §4.3: multi-Gaussian behaviour
(quantified by LVF2's advantage) recurs along slew≈load diagonals where
two variation mechanisms are evenly matched.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.binning.metrics import cdf_rmse, error_reduction
from repro.circuits.cells import build_cell
from repro.circuits.characterize import (
    PAPER_LOADS,
    PAPER_SLEWS,
    CharacterizationConfig,
    characterize_arc,
)
from repro.circuits.gate import GateTimingEngine
from repro.circuits.process import TT_GLOBAL_LOCAL_MC
from repro.experiments.common import paper_scale
from repro.models import LVF2Model, LVFModel
from repro.stats.empirical import EmpiricalDistribution

__all__ = ["Fig4Result", "run_fig4", "diagonal_contrast"]


@dataclass(frozen=True)
class Fig4Result:
    """Both heatmaps of Figure 4.

    Attributes:
        slews: Grid slew axis (ns).
        loads: Grid load axis (pF).
        delay_heatmap: LVF2 CDF-RMSE reduction grid for cell delay.
        transition_heatmap: Same for output transition time.
    """

    slews: tuple[float, ...]
    loads: tuple[float, ...]
    delay_heatmap: np.ndarray
    transition_heatmap: np.ndarray

    def to_text(self) -> str:
        lines = [
            "Figure 4 — LVF2 CDF-RMSE reduction over the slew-load grid"
        ]
        for title, grid in (
            ("(a) NAND2 delay", self.delay_heatmap),
            ("(b) NAND2 transition", self.transition_heatmap),
        ):
            lines.append(title)
            header = "slew\\load " + " ".join(
                f"{load:8.5f}" for load in self.loads
            )
            lines.append(header)
            for slew, row in zip(self.slews, grid):
                lines.append(
                    f"{slew:9.5f} "
                    + " ".join(f"{value:8.1f}" for value in row)
                )
        lines.append(
            f"diagonal contrast: delay="
            f"{diagonal_contrast(self.delay_heatmap):.2f} "
            f"transition="
            f"{diagonal_contrast(self.transition_heatmap):.2f}"
        )
        return "\n".join(lines)


def diagonal_contrast(heatmap: np.ndarray) -> float:
    """Band-structure statistic of an accuracy-pattern heatmap.

    The §4.3 observation: the multi-Gaussian indicator recurs at
    ``(i±1, j±1)`` — it is organised along *diagonals of constant
    slew/load ratio* (``i - j = const``), the line along which the two
    confronting variation mechanisms stay evenly matched.  This
    statistic scores that organisation as the ratio between the spread
    of diagonal-band means and the within-band spread; a banded map
    scores well above a random shuffle of the same values.
    """
    grid = np.log(np.maximum(np.asarray(heatmap, dtype=float), 1e-6))
    n_rows, n_cols = grid.shape
    bands: dict[int, list[float]] = {}
    for i in range(n_rows):
        for j in range(n_cols):
            bands.setdefault(i - j, []).append(grid[i, j])
    band_means = np.array([np.mean(v) for v in bands.values()])
    within = np.concatenate(
        [np.asarray(v) - np.mean(v) for v in bands.values()]
    )
    within_std = within.std()
    if within_std == 0.0:
        return float("inf")
    return float(band_means.std() / within_std)


def run_fig4(
    *,
    cell_type: str = "NAND2",
    input_pin: str = "A",
    n_samples: int | None = None,
    seed: int = 2024,
    engine: GateTimingEngine | None = None,
) -> Fig4Result:
    """Regenerate Figure 4 for one cell (NAND2 in the paper).

    The delay map uses the output-fall arc (the stacked NMOS network,
    where the charge-sharing competition lives) and the transition map
    the same arc's output slew.
    """
    samples = n_samples or (50_000 if paper_scale() else 4000)
    sim = engine or GateTimingEngine(corner=TT_GLOBAL_LOCAL_MC)
    cell = build_cell(cell_type)
    config = CharacterizationConfig(
        slews=PAPER_SLEWS,
        loads=PAPER_LOADS,
        n_samples=samples,
        seed=seed,
    )
    characterization = characterize_arc(
        sim, cell, input_pin, "fall", config
    )
    shape = config.grid_shape
    delay_map = np.zeros(shape)
    transition_map = np.zeros(shape)
    for i in range(shape[0]):
        for j in range(shape[1]):
            for quantity, heatmap in (
                ("delay", delay_map),
                ("transition", transition_map),
            ):
                data = characterization.samples(quantity, i, j)
                golden = EmpiricalDistribution(data)
                lvf = LVFModel.fit(data)
                lvf2 = LVF2Model.fit(data)
                heatmap[i, j] = error_reduction(
                    cdf_rmse(lvf, golden), cdf_rmse(lvf2, golden)
                )
    return Fig4Result(
        slews=config.slews,
        loads=config.loads,
        delay_heatmap=delay_map,
        transition_heatmap=transition_map,
    )
