"""Supply-voltage sweep: model accuracy from nominal to near-threshold.

The paper's related work ([5] LN, [6] LSN, [7] LESN) was developed for
the near/sub-threshold region, where the exponential Vth dependence
makes delay distributions long-tailed.  The transregional MOSFET model
of :mod:`repro.circuits.mosfet` reproduces that physics, so this
extension experiment sweeps the supply from the paper's 0.8 V down
toward threshold and scores all models at each corner — showing where
the log-domain models earn their keep and that LVF2 stays robust
across the whole range.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.binning.metrics import evaluate_models
from repro.circuits.cells import build_cell
from repro.circuits.gate import GateTimingEngine
from repro.circuits.process import TT_GLOBAL_LOCAL_MC
from repro.errors import ExperimentError
from repro.experiments.common import fit_paper_models, format_table
from repro.stats.empirical import EmpiricalDistribution

__all__ = ["VoltageSweepResult", "run_voltage_sweep"]

#: Models scored in the sweep: the paper's four plus the log-domain
#: lineage (LN [5], LSN [6]) the related work motivates.
SWEEP_MODELS = ("LVF2", "Norm2", "LESN", "LSN", "LN", "LVF")


@dataclass(frozen=True)
class VoltageSweepResult:
    """Per-supply model scores.

    Attributes:
        supplies: Swept supply voltages (V).
        skewness: Golden delay skewness per supply (tail indicator).
        reductions: ``{vdd: {model: binning error reduction}}``.
    """

    supplies: tuple[float, ...]
    skewness: tuple[float, ...]
    reductions: dict[float, dict[str, float]]

    def to_text(self) -> str:
        headers = ["Vdd (V)", "golden skew", *SWEEP_MODELS]
        rows = []
        for vdd, skew in zip(self.supplies, self.skewness):
            rows.append(
                [f"{vdd:.2f}", f"{skew:+.2f}"]
                + [self.reductions[vdd][m] for m in SWEEP_MODELS]
            )
        return format_table(
            headers,
            rows,
            title=(
                "Voltage sweep — binning error reduction (x) vs LVF, "
                "INV fall delay"
            ),
        )

    def best_model(self, vdd: float) -> str:
        row = self.reductions[vdd]
        return max(row, key=row.get)


def run_voltage_sweep(
    supplies: tuple[float, ...] = (0.8, 0.7, 0.6, 0.5),
    *,
    cell_type: str = "INV",
    n_samples: int = 20_000,
    seed: int = 17,
) -> VoltageSweepResult:
    """Sweep the supply and score every model at each corner.

    Args:
        supplies: Supply voltages in volts, descending toward the
            device threshold (~0.36 V).
        cell_type: Cell whose fall-delay arc is characterised (INV:
            single device, so the tail shape is pure transregional
            physics, no mixture mechanisms).
        n_samples: Monte-Carlo population per corner.
        seed: RNG seed.

    Raises:
        ExperimentError: If a supply is at or below the threshold.
    """
    if min(supplies) <= 0.40:
        raise ExperimentError(
            "supplies must stay above the device threshold (~0.4 V); "
            f"got {min(supplies)}"
        )
    cell = build_cell(cell_type)
    topology = cell.arc(cell.inputs[0], "fall")
    reductions: dict[float, dict[str, float]] = {}
    skews = []
    for index, vdd in enumerate(supplies):
        engine = GateTimingEngine(
            corner=TT_GLOBAL_LOCAL_MC.with_supply(vdd)
        )
        result = engine.simulate_arc(
            topology,
            slew=0.01 * (0.8 / vdd) ** 2,
            load=0.01,
            n_samples=n_samples,
            rng=seed + index,
        )
        golden = EmpiricalDistribution(result.delay)
        skews.append(golden.moments().skewness)
        models = fit_paper_models(result.delay, SWEEP_MODELS)
        report = evaluate_models(models, golden)
        reductions[vdd] = {
            model: report[model]["binning_reduction"]
            for model in SWEEP_MODELS
        }
    return VoltageSweepResult(
        supplies=tuple(supplies),
        skewness=tuple(skews),
        reductions=reductions,
    )
