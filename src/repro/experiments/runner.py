"""Run-everything orchestration for the paper's evaluation section.

``run_all`` executes each experiment at the configured scale and
assembles a single text report mirroring the paper's §4 — this is what
``python -m repro bench`` prints and what EXPERIMENTS.md records.

Progress goes through the ``repro.progress`` logger (see
:mod:`repro.runtime.progress`), and the heaviest experiment — the
Table 2 library sweep — can resume a killed run from a per-arc
checkpoint store.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.clt_convergence import CLTResult, run_clt_convergence
from repro.experiments.fig3 import Fig3Result, run_fig3
from repro.experiments.fig4 import Fig4Result, run_fig4
from repro.experiments.fig5 import Fig5Result, run_fig5
from repro.experiments.fit_throughput import (
    FitThroughputResult,
    run_fit_throughput,
)
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.table2 import Table2Config, Table2Result, run_table2
from repro.experiments.yield_study import YieldStudyResult, run_yield_study
from repro.runtime import telemetry
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.progress import ProgressReporter

__all__ = ["ExperimentSuite", "run_all"]


@dataclass(frozen=True)
class ExperimentSuite:
    """Results of all paper experiments."""

    fig3: Fig3Result
    table1: Table1Result
    table2: Table2Result
    fig4: Fig4Result
    fig5: Fig5Result
    clt: CLTResult
    yield_est: YieldStudyResult
    fit_throughput: FitThroughputResult

    def to_text(self) -> str:
        sections = [
            self.fig3.to_text(),
            self.table1.to_text(),
            self.table2.to_text(),
            self.fig4.to_text(),
            self.fig5.to_text(),
            self.clt.to_text(),
            self.yield_est.to_text(),
            self.fit_throughput.to_text(),
        ]
        divider = "\n" + "=" * 72 + "\n"
        return divider.join(sections)


def run_all(
    *,
    scenario_samples: int = 50_000,
    table2_config: Table2Config | None = None,
    progress: bool = False,
    checkpoint: CheckpointStore | None = None,
    workers: int = 1,
    pool=None,
    granularity: str = "pin",
    fig4_samples: int | None = None,
    fig5_samples: int | None = None,
    clt_samples: int | None = None,
    yield_budgets: tuple[int, ...] | None = None,
    yield_repeats: int | None = None,
    fit_points: int | None = None,
    fit_samples: int | None = None,
) -> ExperimentSuite:
    """Execute every experiment of the paper's evaluation section.

    Args:
        scenario_samples: Sample count for the Fig. 3 scenarios.
        table2_config: Scale configuration for the library sweep.
        progress: Log per-experiment progress lines.
        checkpoint: Optional checkpoint store forwarded to the Table 2
            library sweep so a killed bench run resumes mid-sweep.
        workers: Worker-process count for the Table 2 library sweep —
            the only experiment heavy enough to pool; its result is
            byte-identical to a serial sweep.
        pool: Optional :class:`~repro.runtime.pool.PoolConfig`
            override forwarded to the Table 2 sweep.
        granularity: Pool work-unit size for the Table 2 sweep,
            ``"pin"`` or ``"grid"``.
        fig4_samples: Monte-Carlo population override for the Fig. 4
            accuracy map (None: the experiment's own scale).
        fig5_samples: Population override for the Fig. 5 paths.
        clt_samples: Population override for the CLT convergence
            table.
        yield_budgets: Budget-ladder override for the yield estimator
            study (None: the study's own scale).
        yield_repeats: Seeded-repeat override for the yield study.
        fit_points: Grid-point override for the fit-throughput
            comparison (None: the experiment's own scale).
        fit_samples: Per-point sample override for the
            fit-throughput comparison.
    """
    # The tag is ``experiment=...`` (not ``name=...``) because
    # ``telemetry.span(name, **tags)`` reserves ``name`` for the span
    # itself.
    reporter = ProgressReporter.from_flag(progress)
    reporter.info("fig3: scenario fits ...")
    with telemetry.span("experiment", experiment="fig3"):
        fig3 = run_fig3(scenario_samples)
    reporter.info("table1: scenario binning ...")
    with telemetry.span("experiment", experiment="table1"):
        table1 = run_table1(scenario_samples)
    reporter.info("table2: library assessment ...")
    with telemetry.span("experiment", experiment="table2"):
        table2 = run_table2(
            table2_config,
            progress=progress,
            checkpoint=checkpoint,
            workers=workers,
            pool=pool,
            granularity=granularity,
        )
    reporter.info("fig4: accuracy pattern ...")
    with telemetry.span("experiment", experiment="fig4"):
        fig4 = run_fig4(n_samples=fig4_samples)
    reporter.info("fig5: path propagation ...")
    with telemetry.span("experiment", experiment="fig5"):
        fig5 = run_fig5(n_samples=fig5_samples)
    reporter.info("clt: convergence ...")
    with telemetry.span("experiment", experiment="clt"):
        clt = (
            run_clt_convergence()
            if clt_samples is None
            else run_clt_convergence(n_samples=clt_samples)
        )
    reporter.info("yield_est: estimator accuracy vs budget ...")
    yield_kwargs: dict = {"fit_samples": scenario_samples}
    if yield_budgets is not None:
        yield_kwargs["budgets"] = tuple(yield_budgets)
    if yield_repeats is not None:
        yield_kwargs["repeats"] = yield_repeats
    with telemetry.span("experiment", experiment="yield_est"):
        yield_est = run_yield_study(**yield_kwargs)
    reporter.info("fit_throughput: batched vs serial EM ...")
    # No outer span: the experiment opens its own ``fit_serial`` /
    # ``fit_batch`` spans so the perf gate can compare the two sides.
    fit_kwargs: dict = {}
    if fit_points is not None:
        fit_kwargs["n_points"] = fit_points
    if fit_samples is not None:
        fit_kwargs["n_samples"] = fit_samples
    fit_throughput = run_fit_throughput(**fit_kwargs)
    return ExperimentSuite(
        fig3=fig3,
        table1=table1,
        table2=table2,
        fig4=fig4,
        fig5=fig5,
        clt=clt,
        yield_est=yield_est,
        fit_throughput=fit_throughput,
    )
