"""Table 2: standard-cell library assessment among models.

For every cell type: Monte-Carlo characterise each arc over the
slew-load grid, fit all four models to every delay and transition
distribution, and average the binning / 3σ-yield error reductions per
cell type — the exact structure of the paper's Table 2, including the
"Overall" row that yields the abstract's headline numbers
(LVF2: 7.74x / 9.56x binning, 4.79x / 7.18x yield in the paper).

Scale is configurable: the default configuration shrinks the grid,
sample count and drive list so the full 25-type table regenerates in
CI time; set ``REPRO_PAPER=1`` (or pass a custom config) for the
paper-scale 8x8 x 50k run.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass, field

import numpy as np

from repro.binning.bins import sigma_binning
from repro.binning.metrics import (
    binning_error,
    error_reduction,
    yield_error,
)
from repro.circuits.cells import CELL_TYPES, build_cell
from repro.circuits.characterize import (
    GRANULARITIES,
    PAPER_LOADS,
    PAPER_SLEWS,
    CharacterizationConfig,
    arc_checkpoint_token,
    characterize_arc,
    simulate_condition,
)
from repro.errors import ParameterError
from repro.circuits.gate import GateTimingEngine
from repro.circuits.process import TT_GLOBAL_LOCAL_MC
from repro.experiments.common import (
    PAPER_MODELS,
    fit_paper_models,
    format_table,
    paper_scale,
)
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.pool.scheduler import WorkItem
from repro.runtime.progress import ProgressReporter
from repro.stats.empirical import EmpiricalDistribution

__all__ = [
    "Table2Config",
    "Table2Row",
    "Table2Result",
    "run_table2",
    "table2_point_token",
    "table2_score_token",
    "table2_work_items",
    "PAPER_TABLE2_OVERALL",
]

#: The paper's "Overall" row (error reductions, x).
PAPER_TABLE2_OVERALL = {
    "delay_binning": {"LVF2": 7.74, "Norm2": 3.83, "LESN": 4.54},
    "transition_binning": {"LVF2": 9.56, "Norm2": 3.96, "LESN": 5.55},
    "delay_yield": {"LVF2": 4.79, "Norm2": 4.19, "LESN": 4.05},
    "transition_yield": {"LVF2": 7.18, "Norm2": 5.44, "LESN": 6.34},
}

_METRICS = (
    "delay_binning",
    "transition_binning",
    "delay_yield",
    "transition_yield",
)


@dataclass(frozen=True)
class Table2Config:
    """Scale knobs for the library assessment.

    Attributes:
        cell_types: Cell types to characterise (default: all 25).
        drives: Drive strengths per type.
        n_samples: Monte-Carlo population per condition.
        slews: Input-slew breakpoints.
        loads: Output-load breakpoints.
        max_arcs_per_cell: Cap on (input x transition) arcs per cell;
            0 means all.
        seed: Base RNG seed.
    """

    cell_types: tuple[str, ...] = tuple(CELL_TYPES)
    drives: tuple[float, ...] = (1.0,)
    n_samples: int = 4000
    slews: tuple[float, ...] = (PAPER_SLEWS[1], PAPER_SLEWS[4])
    loads: tuple[float, ...] = (PAPER_LOADS[2], PAPER_LOADS[5])
    max_arcs_per_cell: int = 2
    seed: int = 2024

    @classmethod
    def paper(cls) -> "Table2Config":
        """Full paper-scale configuration (8x8 grid, 50k samples)."""
        return cls(
            drives=(1.0, 2.0),
            n_samples=50_000,
            slews=PAPER_SLEWS,
            loads=PAPER_LOADS,
            max_arcs_per_cell=0,
        )

    @classmethod
    def smoke(cls) -> "Table2Config":
        """Sub-minute scale for perf gating (``repro bench --smoke``)."""
        return cls(
            cell_types=tuple(list(CELL_TYPES)[:4]),
            n_samples=500,
            max_arcs_per_cell=1,
        )

    @classmethod
    def auto(cls) -> "Table2Config":
        """Paper scale when ``REPRO_PAPER=1``, CI scale otherwise."""
        return cls.paper() if paper_scale() else cls()


@dataclass
class Table2Row:
    """Accumulated error reductions for one cell type."""

    cell_type: str
    n_arcs: int = 0
    #: metric -> model -> list of per-distribution reductions.
    reductions: dict[str, dict[str, list[float]]] = field(
        default_factory=lambda: {
            metric: {model: [] for model in PAPER_MODELS}
            for metric in _METRICS
        }
    )

    def mean_reduction(self, metric: str, model: str) -> float:
        values = self.reductions[metric][model]
        if not values:
            return float("nan")
        return float(np.mean(values))


@dataclass(frozen=True)
class Table2Result:
    """The full Table 2: per-type rows plus the overall average."""

    rows: dict[str, Table2Row]
    config: Table2Config

    def overall(self, metric: str, model: str) -> float:
        """Average reduction over all per-type means (paper's last row)."""
        values = [
            row.mean_reduction(metric, model)
            for row in self.rows.values()
            if row.n_arcs > 0
        ]
        return float(np.nanmean(values))

    def headline(self) -> dict[str, dict[str, float]]:
        """The four Overall numbers per model (abstract's headline)."""
        return {
            metric: {
                model: self.overall(metric, model)
                for model in PAPER_MODELS
            }
            for metric in _METRICS
        }

    def to_text(self) -> str:
        headers = ["Cell", "Arcs"]
        for metric in _METRICS:
            short = metric.replace("transition", "tran").replace(
                "delay", "dly"
            )
            headers.extend(f"{short}:{m}" for m in ("LVF2", "Norm2", "LESN"))
        rows = []
        for name, row in self.rows.items():
            cells: list[object] = [name, row.n_arcs]
            for metric in _METRICS:
                for model in ("LVF2", "Norm2", "LESN"):
                    cells.append(row.mean_reduction(metric, model))
            rows.append(cells)
        overall: list[object] = ["Overall", sum(r.n_arcs for r in self.rows.values())]
        for metric in _METRICS:
            for model in ("LVF2", "Norm2", "LESN"):
                overall.append(self.overall(metric, model))
        rows.append(overall)
        return format_table(
            headers,
            rows,
            title=(
                "Table 2 — library assessment, error reduction (x) "
                "vs LVF (binning and 3-sigma yield)"
            ),
        )


def _arc_list(cell, cap: int) -> list[tuple[str, str]]:
    arcs = [
        (pin, transition)
        for pin in cell.inputs
        for transition in ("rise", "fall")
    ]
    if cap > 0:
        arcs = arcs[:cap]
    return arcs


def table2_score_token(
    engine: GateTimingEngine,
    cell,
    pin: str,
    transition: str,
    char_config: CharacterizationConfig,
) -> str:
    """Content token of one arc's scored reductions payload.

    Derived from the arc's Monte-Carlo token (so any knob that changes
    a sample changes the key) plus a metrics version tag guarding the
    scoring recipe itself.
    """
    mc_token = arc_checkpoint_token(
        engine, cell, pin, transition, char_config
    )
    return f"table2-score|{mc_token}|metrics-v1"


def _score_arc_task(
    store: CheckpointStore | None,
    engine: GateTimingEngine,
    cell,
    pin: str,
    transition: str,
    char_config: CharacterizationConfig,
) -> dict:
    """Characterise and score one arc; serial and pool share this path.

    Top-level so it pickles under spawn.  Returns
    ``{"reductions": metric -> model -> [values]}`` accumulated in the
    deterministic condition order of the serial loop.
    """
    characterization = characterize_arc(
        engine, cell, pin, transition, char_config, checkpoint=store
    )
    scratch = Table2Row(cell_type=cell.name)
    for quantity, metric_prefix in (
        ("delay", "delay"),
        ("transition", "transition"),
    ):
        for i in range(len(char_config.slews)):
            for j in range(len(char_config.loads)):
                samples = characterization.samples(quantity, i, j)
                _score_condition(scratch, metric_prefix, samples)
    return {"reductions": scratch.reductions}


def table2_point_token(
    engine: GateTimingEngine,
    cell,
    pin: str,
    transition: str,
    char_config: CharacterizationConfig,
    i: int,
    j: int,
) -> str:
    """Content token of one grid condition's scored reductions."""
    mc_token = arc_checkpoint_token(
        engine, cell, pin, transition, char_config
    )
    return f"table2-score-point|{mc_token}|{i}|{j}|metrics-v1"


def _score_point_task(
    store: CheckpointStore | None,
    engine: GateTimingEngine,
    cell,
    pin: str,
    transition: str,
    char_config: CharacterizationConfig,
    i: int,
    j: int,
) -> dict:
    """Pool task: score one grid condition of one arc.

    Simulates (or slices from an existing full-arc Monte-Carlo
    checkpoint — content addressing makes the slice byte-identical)
    the condition's samples and scores both quantities.  Per-condition
    seeds are independent, so the scored values match the
    corresponding entries of :func:`_score_arc_task` exactly.
    """
    topology = cell.arc(pin, transition)
    mc_token = arc_checkpoint_token(
        engine, cell, pin, transition, char_config
    )
    cached = (
        store.load(mc_token)
        if store is not None and store.contains(mc_token)
        else None
    )
    if cached is not None:
        delay = cached.delay_samples[i, j]
        transition_samples = cached.transition_samples[i, j]
    else:
        delay, transition_samples, _, _ = simulate_condition(
            engine,
            topology,
            cell.name,
            pin,
            transition,
            char_config,
            i,
            j,
        )
    scratch = Table2Row(cell_type=cell.name)
    for quantity, samples in (
        ("delay", delay),
        ("transition", transition_samples),
    ):
        _score_condition(scratch, quantity, samples)
    return {"reductions": scratch.reductions}


def _gather_point_scores(
    store: CheckpointStore,
    engine: GateTimingEngine,
    cell,
    pin: str,
    transition: str,
    char_config: CharacterizationConfig,
) -> dict:
    """Fold one arc's grid-point scores back into arc-level lists.

    The level-1 assembly of the grid granularity: reduction lists are
    extended metric-prefix-major (all delay conditions in row-major
    order, then all transition conditions) — the exact accumulation
    order of the serial loop in :func:`_score_arc_task` — so the
    resulting payload is value-identical to the arc-level one.
    """
    rows = len(char_config.slews)
    cols = len(char_config.loads)
    points: dict = {}
    for i in range(rows):
        for j in range(cols):
            payload = store.load(
                table2_point_token(
                    engine, cell, pin, transition, char_config, i, j
                )
            )
            if payload is None:  # pragma: no cover - defensive
                payload = _score_point_task(
                    store,
                    engine,
                    cell,
                    pin,
                    transition,
                    char_config,
                    i,
                    j,
                )
            points[(i, j)] = payload
    scratch = Table2Row(cell_type=cell.name)
    for metric_prefix in ("delay", "transition"):
        for i in range(rows):
            for j in range(cols):
                reductions = points[(i, j)]["reductions"]
                for suffix in ("binning", "yield"):
                    metric = f"{metric_prefix}_{suffix}"
                    for model, values in scratch.reductions[
                        metric
                    ].items():
                        values.extend(reductions[metric][model])
    return {"reductions": scratch.reductions}


def table2_work_items(
    engine: GateTimingEngine,
    cfg: Table2Config,
    char_config: CharacterizationConfig,
    *,
    granularity: str = "pin",
) -> tuple[WorkItem, ...]:
    """Pool work items for Table 2.

    ``"pin"`` (default): one item per scored arc.  ``"grid"``: one
    item per (arc, slew index, load index) condition, grouped by arc
    for the two-level assembly.
    """
    if granularity not in GRANULARITIES:
        raise ParameterError(
            f"granularity must be one of {GRANULARITIES}, "
            f"got {granularity!r}"
        )
    items = []
    for cell_type in cfg.cell_types:
        for drive in cfg.drives:
            cell = build_cell(cell_type, drive)
            for pin, transition in _arc_list(
                cell, cfg.max_arcs_per_cell
            ):
                if granularity == "grid":
                    for i in range(len(cfg.slews)):
                        for j in range(len(cfg.loads)):
                            items.append(
                                WorkItem(
                                    token=table2_point_token(
                                        engine,
                                        cell,
                                        pin,
                                        transition,
                                        char_config,
                                        i,
                                        j,
                                    ),
                                    label=(
                                        f"{cell.name}/{pin}"
                                        f"/{transition}[{i},{j}]"
                                    ),
                                    task=_score_point_task,
                                    args=(
                                        engine,
                                        cell,
                                        pin,
                                        transition,
                                        char_config,
                                        i,
                                        j,
                                    ),
                                    group=(
                                        f"{cell.name}/{pin}"
                                        f"/{transition}"
                                    ),
                                )
                            )
                    continue
                mc_token = arc_checkpoint_token(
                    engine, cell, pin, transition, char_config
                )
                items.append(
                    WorkItem(
                        token=table2_score_token(
                            engine, cell, pin, transition, char_config
                        ),
                        label=f"{cell.name}/{pin}/{transition}",
                        task=_score_arc_task,
                        args=(
                            engine,
                            cell,
                            pin,
                            transition,
                            char_config,
                        ),
                        companions=(mc_token,),
                    )
                )
    return tuple(items)


def run_table2(
    config: Table2Config | None = None,
    *,
    engine: GateTimingEngine | None = None,
    progress: bool = False,
    checkpoint: CheckpointStore | None = None,
    workers: int = 1,
    pool=None,
    granularity: str = "pin",
) -> Table2Result:
    """Regenerate Table 2.

    Args:
        config: Scale configuration (:meth:`Table2Config.auto` default).
        engine: Timing engine; defaults to the TTGlobal_LocalMC corner.
        progress: Log one line per cell type as it completes (via the
            ``repro.progress`` logger).
        checkpoint: Optional per-arc checkpoint store; a killed run
            resumes from the last completed arc's Monte-Carlo samples.
        workers: When > 1, characterise and score arcs across that
            many worker processes over a shared checkpoint directory
            (a temporary one when ``checkpoint`` is None); the result
            is identical to a serial run because scored payloads are
            content-addressed and assembled in serial arc order.
        pool: Optional :class:`~repro.runtime.pool.PoolConfig`
            override (implies parallel even when ``workers`` is 1).
        granularity: Parallel work-unit size, ``"pin"`` (one item per
            scored arc, default) or ``"grid"`` (one item per grid
            condition, folded back per arc in serial order).
    """
    if granularity not in GRANULARITIES:
        raise ParameterError(
            f"granularity must be one of {GRANULARITIES}, "
            f"got {granularity!r}"
        )
    reporter = ProgressReporter.from_flag(progress)
    cfg = config or Table2Config.auto()
    sim = engine or GateTimingEngine(corner=TT_GLOBAL_LOCAL_MC)
    char_config = CharacterizationConfig(
        slews=cfg.slews,
        loads=cfg.loads,
        n_samples=cfg.n_samples,
        seed=cfg.seed,
    )
    score_store: CheckpointStore | None = None
    pooled = False
    temp_dir = None
    if workers > 1 or pool is not None:
        from repro.runtime.pool.pool import PoolConfig, run_pool

        store = checkpoint
        if store is None:
            temp_dir = tempfile.mkdtemp(prefix="repro-pool-")
            store = CheckpointStore(temp_dir, reuse=True)
        items = table2_work_items(
            sim, cfg, char_config, granularity=granularity
        )
        run_pool(
            items,
            store,
            pool or PoolConfig(n_workers=workers, seed=cfg.seed),
        )
        score_store = (
            store
            if store.reuse
            else CheckpointStore(store.directory, reuse=True)
        )
        pooled = True
    elif checkpoint is not None and checkpoint.reuse:
        # Serial runs resume scored payloads a previous pool run left
        # in the same store (they never *write* them — serial write
        # behaviour is unchanged).
        score_store = checkpoint
    try:
        rows: dict[str, Table2Row] = {}
        for cell_type in cfg.cell_types:
            row = Table2Row(cell_type=cell_type)
            for drive in cfg.drives:
                cell = build_cell(cell_type, drive)
                for pin, transition in _arc_list(
                    cell, cfg.max_arcs_per_cell
                ):
                    if pooled and granularity == "grid":
                        # Level-1 assembly: fold the arc's grid-point
                        # scores back together in serial order.
                        payload = _gather_point_scores(
                            score_store,
                            sim,
                            cell,
                            pin,
                            transition,
                            char_config,
                        )
                    else:
                        payload = (
                            score_store.load(
                                table2_score_token(
                                    sim,
                                    cell,
                                    pin,
                                    transition,
                                    char_config,
                                )
                            )
                            if score_store is not None
                            else None
                        )
                    if payload is None:
                        payload = _score_arc_task(
                            checkpoint,
                            sim,
                            cell,
                            pin,
                            transition,
                            char_config,
                        )
                    row.n_arcs += 1
                    for metric, models in row.reductions.items():
                        for model in models:
                            models[model].extend(
                                payload["reductions"][metric][model]
                            )
            rows[cell_type] = row
            reporter.info(
                "%-6s arcs=%3d dly_bin LVF2=%.2f",
                cell_type,
                row.n_arcs,
                row.mean_reduction("delay_binning", "LVF2"),
            )
    finally:
        if temp_dir is not None:
            shutil.rmtree(temp_dir, ignore_errors=True)
    return Table2Result(rows=rows, config=cfg)


def _score_condition(
    row: Table2Row, metric_prefix: str, samples: np.ndarray
) -> None:
    """Fit all models on one distribution and record reductions."""
    golden = EmpiricalDistribution(samples)
    summary = golden.moments()
    scheme = sigma_binning(summary)
    models = fit_paper_models(samples)
    binning_errors = {
        name: binning_error(model, golden, scheme)
        for name, model in models.items()
    }
    # The 3-sigma yield is only a meaningful score when the golden
    # sample actually resolves the tail: with a short-tailed (e.g.
    # strongly bimodal) distribution, mu + 3 sigma can lie beyond
    # every sample, making every model's error 0/0.  Such saturated
    # conditions are skipped for the yield metric (binning still
    # scores — the bins resolve the bulk).
    tail_count = int(np.sum(samples > summary.sigma_point(3.0)))
    score_yield = tail_count >= 5
    if score_yield:
        yield_errors = {
            name: yield_error(model, golden)
            for name, model in models.items()
        }
    # A model whose error falls below the golden sampling resolution
    # (1/n in probability) yields an effectively infinite ratio; cap
    # each recorded reduction at the largest *resolvable* ratio,
    # baseline_error / (1/n), so per-type averages stay meaningful.
    n = float(samples.size)
    binning_cap = max(1.0, binning_errors["LVF"] * n)
    for name in PAPER_MODELS:
        row.reductions[f"{metric_prefix}_binning"][name].append(
            min(
                error_reduction(
                    binning_errors["LVF"], binning_errors[name]
                ),
                binning_cap,
            )
        )
        if score_yield:
            yield_cap = max(1.0, yield_errors["LVF"] * n)
            row.reductions[f"{metric_prefix}_yield"][name].append(
                min(
                    error_reduction(
                        yield_errors["LVF"], yield_errors[name]
                    ),
                    yield_cap,
                )
            )
