"""Regeneration of every table and figure in the paper's evaluation."""

from repro.experiments.clt_convergence import CLTResult, run_clt_convergence
from repro.experiments.common import (
    PAPER_MODELS,
    fit_paper_models,
    format_table,
    paper_scale,
    score_paper_models,
)
from repro.experiments.fig3 import Fig3Panel, Fig3Result, run_fig3
from repro.experiments.fig4 import Fig4Result, diagonal_contrast, run_fig4
from repro.experiments.fig5 import PAPER_FIG5_POINTS, Fig5Result, run_fig5
from repro.experiments.runner import ExperimentSuite, run_all
from repro.experiments.table1 import PAPER_TABLE1, Table1Result, run_table1
from repro.experiments.table2 import (
    PAPER_TABLE2_OVERALL,
    Table2Config,
    Table2Result,
    run_table2,
)
from repro.experiments.yield_study import (
    YieldStudyCell,
    YieldStudyResult,
    mc_samples_required,
    run_yield_study,
)

__all__ = [
    "CLTResult",
    "ExperimentSuite",
    "Fig3Panel",
    "Fig3Result",
    "Fig4Result",
    "Fig5Result",
    "PAPER_FIG5_POINTS",
    "PAPER_MODELS",
    "PAPER_TABLE1",
    "PAPER_TABLE2_OVERALL",
    "Table1Result",
    "Table2Config",
    "Table2Result",
    "YieldStudyCell",
    "YieldStudyResult",
    "diagonal_contrast",
    "fit_paper_models",
    "format_table",
    "mc_samples_required",
    "paper_scale",
    "run_all",
    "run_clt_convergence",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_table1",
    "run_table2",
    "run_yield_study",
    "score_paper_models",
]
