"""Table 1: binning error reduction per scenario, four models.

Paper values for reference (LVF == 1 by construction):

    Scenario      LVF2    Norm2   LESN
    2 Peaks       12.65    1.01    1.02
    Multi-Peaks   29.65    7.67   10.68
    Saddle         9.62    5.06    1.88
    Minor Saddle  16.27   10.58    0.84
    Kurtosis       8.63    8.16    3.43

Our golden populations come from the documented synthetic scenario
mixtures, so absolute factors differ; the shape target is the ranking:
LVF2 leads every row, Norm2 close on Kurtosis, LESN weak on skewed
two-peak cases.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.scenarios import SCENARIOS
from repro.experiments.common import (
    PAPER_MODELS,
    format_table,
    score_paper_models,
)

__all__ = ["Table1Result", "run_table1", "PAPER_TABLE1"]

#: The published Table 1 (binning error reduction, x).
PAPER_TABLE1: dict[str, dict[str, float]] = {
    "2 Peaks": {"LVF2": 12.65, "Norm2": 1.01, "LESN": 1.02, "LVF": 1.0},
    "Multi-Peaks": {
        "LVF2": 29.65,
        "Norm2": 7.67,
        "LESN": 10.68,
        "LVF": 1.0,
    },
    "Saddle": {"LVF2": 9.62, "Norm2": 5.06, "LESN": 1.88, "LVF": 1.0},
    "Minor Saddle": {
        "LVF2": 16.27,
        "Norm2": 10.58,
        "LESN": 0.84,
        "LVF": 1.0,
    },
    "Kurtosis": {"LVF2": 8.63, "Norm2": 8.16, "LESN": 3.43, "LVF": 1.0},
}


@dataclass(frozen=True)
class Table1Result:
    """Binning error reductions per scenario and model."""

    reductions: dict[str, dict[str, float]]

    def to_text(self) -> str:
        headers = ["Scenario", *PAPER_MODELS]
        rows = [
            [name, *(self.reductions[name][m] for m in PAPER_MODELS)]
            for name in self.reductions
        ]
        return format_table(
            headers,
            rows,
            title="Table 1 — Binning Error Reduction (x) per scenario",
        )

    def winner(self, scenario: str) -> str:
        """Model with the largest reduction for ``scenario``."""
        row = self.reductions[scenario]
        return max(row, key=row.get)


def run_table1(
    n_samples: int = 50_000, *, seed: int = 0
) -> Table1Result:
    """Regenerate Table 1 from the synthetic scenarios."""
    reductions: dict[str, dict[str, float]] = {}
    for index, (name, scenario) in enumerate(SCENARIOS.items()):
        samples = scenario.sample(n_samples, rng=seed + index)
        report = score_paper_models(samples)
        reductions[name] = {
            model: report[model]["binning_reduction"]
            for model in PAPER_MODELS
        }
    return Table1Result(reductions=reductions)
