"""Accuracy-pattern-guided adaptive characterisation.

Paper §4.3 / §5 (future work): "assuming such an accuracy pattern can
provide significant insight to speed up the statistical
characterization that includes MC simulations across multiple
slew-load pairs."  This module implements that idea:

1. **Probe pass** — a small Monte-Carlo population at every grid point;
   each point gets a *multi-Gaussian indicator* (the per-sample BIC
   margin of LVF2 over LVF on the probe).
2. **Pattern completion** — §4.3 says the phenomenon organises along
   anti-diagonal bands of the slew-load table (constant slew x load
   product), so a point is treated as suspect if *its band* shows the
   phenomenon, not only the point itself — probes are noisy, bands are
   robust.
3. **Selective full MC** — only suspect points get the full-budget
   Monte-Carlo + LVF2 EM fit; the remaining points keep a plain LVF
   moment fit from the probe (which is all a single skew-normal
   needs).

The result reports the exact sample budget spent versus the uniform
full-grid flow, alongside the fitted model grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.cells import CellDefinition
from repro.circuits.characterize import (
    CharacterizationConfig,
    _condition_seed,
)
from repro.circuits.gate import GateTimingEngine
from repro.errors import CharacterizationError
from repro.models.lvf import LVFModel
from repro.models.lvf2 import LVF2Model

__all__ = [
    "AdaptivePlan",
    "AdaptiveResult",
    "multi_gaussian_indicator",
    "plan_adaptive",
    "characterize_adaptive",
]


def multi_gaussian_indicator(samples: np.ndarray) -> float:
    """Per-sample BIC margin of LVF2 over LVF.

    Positive values mean the data statistically support a second
    component; the magnitude quantifies the §4.3 "degree of
    multi-Gaussian phenomenon" on a scale comparable across sample
    sizes.
    """
    lvf = LVFModel.fit(samples)
    lvf2 = LVF2Model.fit(samples)
    n = np.asarray(samples).size
    return float((lvf.bic(samples) - lvf2.bic(samples)) / n)


@dataclass(frozen=True)
class AdaptivePlan:
    """Probe-pass outcome: where to spend the full MC budget.

    Attributes:
        indicator: Per-grid-point multi-Gaussian indicator.
        suspect: Boolean grid — points scheduled for full MC.
        band_scores: Max indicator per anti-diagonal band
          (``i + j = const``), the §4.3 pattern statistic.
    """

    indicator: np.ndarray
    suspect: np.ndarray
    band_scores: dict[int, float]

    @property
    def n_suspect(self) -> int:
        return int(np.count_nonzero(self.suspect))

    @property
    def n_points(self) -> int:
        return int(self.suspect.size)


@dataclass(frozen=True)
class AdaptiveResult:
    """Adaptive characterisation output for one arc quantity.

    Attributes:
        plan: The probe-pass plan that was executed.
        models: Object grid of fitted models (LVF2 on suspect points,
            probe-fitted LVF elsewhere).
        samples_spent: Total Monte-Carlo samples drawn (probe + full).
        samples_uniform: What the uniform full-grid flow would spend.
    """

    plan: AdaptivePlan
    models: np.ndarray
    samples_spent: int
    samples_uniform: int

    @property
    def savings(self) -> float:
        """Fraction of the uniform sample budget saved."""
        return 1.0 - self.samples_spent / self.samples_uniform


def plan_adaptive(
    engine: GateTimingEngine,
    cell: CellDefinition,
    input_pin: str,
    transition: str,
    config: CharacterizationConfig,
    *,
    probe_samples: int = 1000,
    quantity: str = "delay",
    point_threshold: float = 0.002,
    band_threshold: float = 0.004,
) -> tuple[AdaptivePlan, np.ndarray]:
    """Run the probe pass and build the full-MC schedule.

    Args:
        engine: Timing engine.
        cell: Cell under characterisation.
        input_pin: Arc input pin.
        transition: Output transition.
        config: Grid configuration (slews/loads/seed); its
            ``n_samples`` is the *full* per-point budget.
        probe_samples: Probe population per grid point.
        quantity: ``"delay"`` or ``"transition"``.
        point_threshold: Indicator above which a point is suspect on
            its own evidence.
        band_threshold: Band-max indicator above which the *whole*
            anti-diagonal band is suspect (§4.3 pattern completion).

    Returns:
        ``(plan, probe_sample_grid)`` — the probe samples are reused
        for the non-suspect LVF fits, so nothing is wasted.
    """
    if probe_samples >= config.n_samples:
        raise CharacterizationError(
            f"probe budget ({probe_samples}) must be smaller than the "
            f"full budget ({config.n_samples})"
        )
    topology = cell.arc(input_pin, transition)
    shape = config.grid_shape
    indicator = np.zeros(shape)
    probes = np.empty(shape, dtype=object)
    for i, slew in enumerate(config.slews):
        for j, load in enumerate(config.loads):
            result = engine.simulate_arc(
                topology,
                slew,
                load,
                probe_samples,
                rng=_condition_seed(
                    config.seed ^ 0x5EED, topology.name, i, j
                ),
            )
            samples = (
                result.delay if quantity == "delay" else result.transition
            )
            probes[i, j] = samples
            indicator[i, j] = multi_gaussian_indicator(samples)

    band_scores: dict[int, float] = {}
    for i in range(shape[0]):
        for j in range(shape[1]):
            band = i + j
            band_scores[band] = max(
                band_scores.get(band, -np.inf), indicator[i, j]
            )
    suspect = np.zeros(shape, dtype=bool)
    for i in range(shape[0]):
        for j in range(shape[1]):
            suspect[i, j] = (
                indicator[i, j] > point_threshold
                or band_scores[i + j] > band_threshold
            )
    return (
        AdaptivePlan(
            indicator=indicator,
            suspect=suspect,
            band_scores=band_scores,
        ),
        probes,
    )


def characterize_adaptive(
    engine: GateTimingEngine,
    cell: CellDefinition,
    input_pin: str,
    transition: str,
    config: CharacterizationConfig,
    *,
    probe_samples: int = 1000,
    quantity: str = "delay",
) -> AdaptiveResult:
    """Adaptive per-arc characterisation (probe -> pattern -> full MC).

    Non-suspect points are fitted as plain LVF from the probe samples —
    per Eq. 10 these are stored as collapsed LVF2 entries, so the
    output grid is homogeneous.
    """
    plan, probes = plan_adaptive(
        engine,
        cell,
        input_pin,
        transition,
        config,
        probe_samples=probe_samples,
        quantity=quantity,
    )
    topology = cell.arc(input_pin, transition)
    shape = config.grid_shape
    models = np.empty(shape, dtype=object)
    spent = plan.n_points * probe_samples
    for i, slew in enumerate(config.slews):
        for j, load in enumerate(config.loads):
            if plan.suspect[i, j]:
                result = engine.simulate_arc(
                    topology,
                    slew,
                    load,
                    config.n_samples,
                    rng=_condition_seed(
                        config.seed, topology.name, i, j
                    ),
                )
                samples = (
                    result.delay
                    if quantity == "delay"
                    else result.transition
                )
                spent += config.n_samples
                models[i, j] = LVF2Model.fit(samples)
            else:
                models[i, j] = LVF2Model.from_lvf(
                    LVFModel.fit(probes[i, j])
                )
    return AdaptiveResult(
        plan=plan,
        models=models,
        samples_spent=spent,
        samples_uniform=plan.n_points * config.n_samples,
    )
