"""Library characterisation driver (paper §4.2).

Runs the Monte-Carlo gate engine over the 8x8 slew-load grid for every
arc of every cell, producing per-condition golden sample sets, fitting
the timing models, and exporting fitted LVF2 libraries to Liberty.

The paper's grid axes are reproduced: loads are the exact capacitance
breakpoints visible in Fig. 4; slews span the same three decades
geometrically.
"""

from __future__ import annotations

import hashlib
import shutil
import tempfile
import time
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.circuits.cells import CellDefinition
from repro.circuits.gate import ArcSimResult, GateTimingEngine
from repro.errors import (
    CharacterizationError,
    FittingError,
    ParameterError,
)
from repro.liberty.library import Cell as LibCell
from repro.liberty.library import Library, Pin, TimingArc
from repro.liberty.lvf2_attrs import LVF2Tables
from repro.liberty.tables import Table, TableTemplate
from repro.models.lvf2 import LVF2Model
from repro.runtime import faults, telemetry
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.policy import FitPolicy
from repro.runtime.pool.scheduler import WorkItem
from repro.runtime.progress import ProgressReporter
from repro.runtime.report import FitContext, FitReport

__all__ = [
    "GRANULARITIES",
    "PAPER_LOADS",
    "PAPER_SLEWS",
    "CharacterizationConfig",
    "ArcCharacterization",
    "arc_checkpoint_token",
    "characterize_arc",
    "characterization_tokens",
    "characterization_work_items",
    "characterized_arc_to_liberty",
    "characterize_library",
    "grid_point_token",
    "pin_fit_token",
    "run_fingerprint",
    "simulate_condition",
]

#: Pool work-unit granularities: one item per (cell, pin) or one item
#: per (cell, pin, edge, slew index, load index).
GRANULARITIES = ("pin", "grid")

#: Output-load breakpoints (pF) — the exact Fig. 4 axis values.
PAPER_LOADS = (
    0.00015,
    0.00722,
    0.02136,
    0.04965,
    0.10623,
    0.21938,
    0.44569,
    0.89830,
)

#: Input-slew breakpoints (ns) — geometric over the same decades.
PAPER_SLEWS = (
    0.00123,
    0.00316,
    0.00812,
    0.02086,
    0.05359,
    0.13767,
    0.35366,
    0.87715,
)


def _condition_seed(
    seed: int, arc_name: str, i: int, j: int
) -> int:
    """Stable per-condition RNG seed (independent across conditions)."""
    digest = hashlib.sha256(
        f"{seed}|{arc_name}|{i}|{j}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass(frozen=True)
class CharacterizationConfig:
    """Knobs of a characterisation run.

    Attributes:
        slews: Input-transition breakpoints (ns).
        loads: Output-load breakpoints (pF).
        n_samples: Monte-Carlo population per condition (paper: 50k).
        seed: Base seed; per-condition seeds are derived from it.
        use_lhs: Latin-hypercube stratification.
    """

    slews: tuple[float, ...] = PAPER_SLEWS
    loads: tuple[float, ...] = PAPER_LOADS
    n_samples: int = 50_000
    seed: int = 2024
    use_lhs: bool = True

    def __post_init__(self) -> None:
        if self.n_samples < 16:
            raise CharacterizationError(
                f"n_samples must be >= 16, got {self.n_samples}"
            )
        if not self.slews or not self.loads:
            raise CharacterizationError("need at least one slew and load")

    @property
    def grid_shape(self) -> tuple[int, int]:
        return (len(self.slews), len(self.loads))

    def template(self) -> TableTemplate:
        """Liberty table template matching the grid."""
        rows, cols = self.grid_shape
        return TableTemplate(
            name=f"delay_template_{rows}x{cols}",
            variable_1="input_net_transition",
            variable_2="total_output_net_capacitance",
            index_1=self.slews,
            index_2=self.loads,
        )


@dataclass
class ArcCharacterization:
    """All Monte-Carlo data for one arc over the slew-load grid.

    Attributes:
        cell: Cell instance name.
        input_pin: Arc input.
        transition: Output transition, ``rise`` or ``fall``.
        config: The run configuration.
        delay_samples: ``(n_slews, n_loads)`` object grid of sample
            arrays.
        transition_samples: Same for output transition time.
        nominal_delay: Variation-free delay grid.
        nominal_transition: Variation-free transition grid.
    """

    cell: str
    input_pin: str
    transition: str
    config: CharacterizationConfig
    delay_samples: np.ndarray
    transition_samples: np.ndarray
    nominal_delay: np.ndarray
    nominal_transition: np.ndarray

    def samples(self, quantity: str, i: int, j: int) -> np.ndarray:
        """Golden samples of ``"delay"`` or ``"transition"`` at (i, j)."""
        if quantity == "delay":
            return self.delay_samples[i, j]
        if quantity == "transition":
            return self.transition_samples[i, j]
        raise CharacterizationError(
            f"quantity must be delay/transition, got {quantity!r}"
        )

    def fit_grid(
        self, quantity: str, fitter=LVF2Model.fit, *, vectorized: bool = False
    ) -> np.ndarray:
        """Fit a model at every grid point; returns an object grid.

        With ``vectorized=True`` and the default fitter, the whole grid
        is stacked into one ``(n_points, n_samples)`` array and fitted
        by :meth:`LVF2Model.fit_batch` — bit-identical to the serial
        loop, including which error is raised first (row-major order,
        like the loop).  Custom fitters always take the serial path.
        """
        shape = self.config.grid_shape
        models = np.empty(shape, dtype=object)
        indices = [
            (i, j) for i in range(shape[0]) for j in range(shape[1])
        ]
        # ``LVF2Model.fit`` is a classmethod: each attribute access
        # builds a fresh bound method, so compare the underlying
        # function rather than the bound object.
        default_fitter = (
            getattr(fitter, "__func__", None) is LVF2Model.fit.__func__
        )
        if vectorized and default_fitter:
            stack = np.stack(
                [self.samples(quantity, i, j) for i, j in indices]
            )
            with telemetry.span(
                "fit.grid_batch", stage="fitting", n_points=len(indices)
            ):
                fitted = LVF2Model.fit_batch(stack, errors="capture")
            for (i, j), result in zip(indices, fitted):
                if isinstance(result, Exception):
                    raise result
                models[i, j] = result
            return models
        for i, j in indices:
            with telemetry.span("fit.point", stage="fitting"):
                models[i, j] = fitter(self.samples(quantity, i, j))
        return models


def arc_checkpoint_token(
    engine: GateTimingEngine,
    cell: CellDefinition,
    input_pin: str,
    transition: str,
    config: CharacterizationConfig,
) -> str:
    """Content token identifying one arc-characterisation request.

    Everything the Monte-Carlo result depends on goes in: the engine's
    physical parameters, the arc topology, and the grid/sampling
    configuration.  Attribute access (rather than ``repr(engine)``)
    keeps the token stable for wrappers that delegate to a real engine.
    """
    engine_part = "|".join(
        repr(getattr(engine, name, None))
        for name in (
            "corner",
            "variation",
            "slew_sensitivity",
            "charge_sharing_kick",
            "interaction_kick",
        )
    )
    topology = cell.arc(input_pin, transition)
    config_part = (
        f"{config.slews}|{config.loads}|{config.n_samples}"
        f"|{config.seed}|{config.use_lhs}"
    )
    return f"arc-mc|{engine_part}|{cell.name}|{topology!r}|{config_part}"


def run_fingerprint(
    engine: GateTimingEngine,
    cells: Sequence[CellDefinition],
    config: CharacterizationConfig,
) -> str:
    """Content hash identifying a whole characterisation request.

    Built from the same per-arc tokens the checkpoint store keys on,
    so any knob that changes a single Monte-Carlo sample changes the
    fingerprint; recorded in the run manifest as ``config_hash``.
    """
    tokens = [
        arc_checkpoint_token(engine, cell, pin, transition, config)
        for cell in cells
        for pin in cell.inputs
        for transition in ("rise", "fall")
    ]
    digest = hashlib.sha256("\n".join(tokens).encode())
    return digest.hexdigest()[:16]


def simulate_condition(
    engine: GateTimingEngine,
    topology,
    cell_name: str,
    input_pin: str,
    transition: str,
    config: CharacterizationConfig,
    i: int,
    j: int,
) -> tuple[np.ndarray, np.ndarray, float, float]:
    """Monte-Carlo draw for one (slew, load) grid condition.

    The single shared inner loop of every characterisation path —
    serial arcs, pin-granularity pool tasks (via
    :func:`characterize_arc`) and grid-point pool tasks all sample a
    condition through this function, so the per-condition seed
    derivation, telemetry and fault-injection hooks fire identically
    wherever the condition is computed.  That is the grid-decomposition
    half of the byte-identity argument: per-condition seeds are
    independent sha256 derivations of ``(seed, arc, i, j)``, so the
    samples at (i, j) do not depend on which other conditions the same
    process has already simulated.

    Returns ``(delay_samples, transition_samples, nominal_delay,
    nominal_transition)``.
    """
    started = time.perf_counter()
    with telemetry.span(
        "mc.condition",
        stage="sampling",
        slew_index=i,
        load_index=j,
    ):
        result: ArcSimResult = engine.simulate_arc(
            topology,
            config.slews[i],
            config.loads[j],
            config.n_samples,
            rng=_condition_seed(config.seed, topology.name, i, j),
            use_lhs=config.use_lhs,
        )
    elapsed = time.perf_counter() - started
    if elapsed > 0.0:
        telemetry.observe(
            "mc.samples_per_sec", config.n_samples / elapsed
        )
    telemetry.counter_inc("mc.conditions")
    telemetry.counter_inc("mc.samples", config.n_samples)
    delay = faults.corrupt_samples(
        FitContext(cell_name, input_pin, transition, "delay", i, j),
        result.delay,
    )
    transition_samples = faults.corrupt_samples(
        FitContext(
            cell_name, input_pin, transition, "transition", i, j
        ),
        result.transition,
    )
    return (
        delay,
        transition_samples,
        result.nominal_delay,
        result.nominal_transition,
    )


def characterize_arc(
    engine: GateTimingEngine,
    cell: CellDefinition,
    input_pin: str,
    transition: str,
    config: CharacterizationConfig,
    *,
    checkpoint: CheckpointStore | None = None,
) -> ArcCharacterization:
    """Monte-Carlo characterise one arc over the full grid.

    Args:
        engine: Timing engine.
        cell: Cell whose arc is characterised.
        input_pin: Arc input pin.
        transition: Output transition, ``rise`` or ``fall``.
        config: Grid and sampling configuration.
        checkpoint: Optional store; a previously completed run of the
            identical request is returned without re-simulating, and a
            fresh run is persisted for future resumes.
    """
    token = (
        arc_checkpoint_token(engine, cell, input_pin, transition, config)
        if checkpoint is not None
        else None
    )
    if checkpoint is not None and token is not None:
        cached = checkpoint.load(token)
        if cached is not None:
            faults.arc_completed()
            return cached
    topology = cell.arc(input_pin, transition)
    shape = config.grid_shape
    delay_samples = np.empty(shape, dtype=object)
    transition_samples = np.empty(shape, dtype=object)
    nominal_delay = np.empty(shape)
    nominal_transition = np.empty(shape)
    with telemetry.span(
        "characterize.arc",
        cell=cell.name,
        pin=input_pin,
        transition=transition,
    ):
        for i in range(shape[0]):
            for j in range(shape[1]):
                (
                    delay_samples[i, j],
                    transition_samples[i, j],
                    nominal_delay[i, j],
                    nominal_transition[i, j],
                ) = simulate_condition(
                    engine,
                    topology,
                    cell.name,
                    input_pin,
                    transition,
                    config,
                    i,
                    j,
                )
    characterization = ArcCharacterization(
        cell=cell.name,
        input_pin=input_pin,
        transition=transition,
        config=config,
        delay_samples=delay_samples,
        transition_samples=transition_samples,
        nominal_delay=nominal_delay,
        nominal_transition=nominal_transition,
    )
    if checkpoint is not None and token is not None:
        checkpoint.save(token, characterization)
    faults.arc_completed()
    return characterization


def _fit_grid_with_policy(
    char: ArcCharacterization,
    quantity: str,
    policy: FitPolicy,
    report: FitReport | None,
    *,
    vectorized: bool = True,
) -> np.ndarray:
    """Fit every grid point through the fallback ladder.

    With ``vectorized=True`` the first ladder rung runs through
    :meth:`FitPolicy.fit_batch_iter`, which batches the LVF2 EM fit
    over the stacked grid and is bit-identical to calling
    :meth:`FitPolicy.fit` per point — outcomes still arrive one point
    at a time in row-major order, so report records and any mid-grid
    exception match the serial loop exactly.
    """
    shape = char.config.grid_shape
    models = np.empty(shape, dtype=object)
    indices = [(i, j) for i in range(shape[0]) for j in range(shape[1])]
    contexts = [
        FitContext(
            cell=char.cell,
            pin=char.input_pin,
            transition=char.transition,
            quantity=quantity,
            slew_index=i,
            load_index=j,
        )
        for i, j in indices
    ]
    samples_list = [char.samples(quantity, i, j) for i, j in indices]
    if vectorized:
        outcomes = policy.fit_batch_iter(samples_list, contexts)
    else:
        outcomes = (
            policy.fit(samples, context=context)
            for samples, context in zip(samples_list, contexts)
        )
    for (i, j), context, outcome in zip(indices, contexts, outcomes):
        if report is not None:
            report.record_fit(context, outcome)
        models[i, j] = outcome.model
    return models


def characterized_arc_to_liberty(
    rise: ArcCharacterization,
    fall: ArcCharacterization,
    *,
    timing_sense: str = "negative_unate",
    collapse_by_bic: bool = False,
    policy: FitPolicy | None = None,
    report: FitReport | None = None,
    vectorized: bool = True,
) -> TimingArc:
    """Fit LVF2 grids for both edges and build a Liberty timing arc.

    Args:
        rise: Characterisation of the output-rise edge.
        fall: Characterisation of the output-fall edge.
        timing_sense: Liberty unateness attribute.
        collapse_by_bic: Apply the §3.4 fallback — grid points whose
            data do not support two components are stored as plain LVF.
        policy: Optional fallback ladder; when given, a degenerate fit
            at one grid point degrades that point instead of raising.
        report: Degradation report fed by ``policy`` fits.
        vectorized: Fit each quantity's grid through the batched EM
            path (bit-identical to the serial per-point loop; see
            :meth:`~repro.models.lvf2.LVF2Model.fit_batch`).  ``False``
            forces the original per-point fits.
    """
    if (rise.cell, rise.input_pin) != (fall.cell, fall.input_pin):
        raise CharacterizationError(
            "rise/fall characterisations are for different arcs"
        )
    config = rise.config
    template = config.template()
    arc = TimingArc(
        related_pin=rise.input_pin,
        timing_sense=timing_sense,
        timing_type="combinational",
    )
    quantity_map = {
        "cell_rise": (rise, "delay"),
        "rise_transition": (rise, "transition"),
        "cell_fall": (fall, "delay"),
        "fall_transition": (fall, "transition"),
    }
    for base, (char, quantity) in quantity_map.items():
        nominal_grid = (
            char.nominal_delay
            if quantity == "delay"
            else char.nominal_transition
        )
        nominal = Table(
            template.name, config.slews, config.loads, nominal_grid
        )
        if policy is not None:
            models = _fit_grid_with_policy(
                char, quantity, policy, report, vectorized=vectorized
            )
        else:
            models = char.fit_grid(quantity, vectorized=vectorized)
        if collapse_by_bic:
            for index in np.ndindex(models.shape):
                model = models[index]
                try:
                    collapsed = model.collapse_by_bic(
                        char.samples(quantity, *index)
                    )
                except FittingError:
                    if policy is None:
                        raise
                    continue
                if collapsed is not model:
                    models[index] = LVF2Model.from_lvf(collapsed)
        with telemetry.span("liberty.tables", stage="export", table=base):
            arc.tables[base] = LVF2Tables.from_models(
                base, nominal, models
            )
    return arc


def pin_fit_token(
    engine: GateTimingEngine,
    cell: CellDefinition,
    pin_name: str,
    config: CharacterizationConfig,
    *,
    policy: FitPolicy | None,
    isolate_errors: bool,
) -> str:
    """Content token of one pin's characterise-and-fit payload.

    Built from both edge Monte-Carlo tokens plus the fit knobs: the
    payload embeds fitted models and the local fit report, so anything
    that can change a fit (the policy ladder, quarantine behaviour)
    must change the key.  ``FitPolicy`` is a frozen dataclass of
    scalars and tuples, so its repr is stable across processes/hosts.
    The ``vectorized`` toggle is deliberately *not* part of the key:
    the batched fit is bit-identical to the serial one, so both modes
    produce (and may reuse) the same payload bytes.
    """
    rise = arc_checkpoint_token(engine, cell, pin_name, "rise", config)
    fall = arc_checkpoint_token(engine, cell, pin_name, "fall", config)
    return f"pin-fit|{rise}|{fall}|{policy!r}|{isolate_errors}"


def _pin_payload(
    engine: GateTimingEngine,
    cell: CellDefinition,
    pin_name: str,
    config: CharacterizationConfig,
    *,
    checkpoint: CheckpointStore | None,
    policy: FitPolicy | None,
    isolate_errors: bool,
    vectorized: bool = True,
) -> dict:
    """Simulate both edges and fit one pin; the single shared path.

    Serial runs call this directly; pool workers call it through
    :func:`_characterize_pin_task` and checkpoint the returned dict —
    either way the payload bytes come from the same code over the same
    per-condition seeds, which is the byte-identity argument.

    Returns ``{"arc", "report", "stage", "error"}``: a Liberty
    :class:`TimingArc` (or None when the pin was quarantined), the
    pin-local :class:`FitReport`, and — on quarantine — the failing
    stage (``"simulate"``/``"fit"``) and error text.
    """
    local = FitReport()
    try:
        rise = characterize_arc(
            engine, cell, pin_name, "rise", config, checkpoint=checkpoint
        )
        fall = characterize_arc(
            engine, cell, pin_name, "fall", config, checkpoint=checkpoint
        )
    except (CharacterizationError, FittingError) as error:
        if not isolate_errors:
            raise
        local.quarantine(
            f"{cell.name}/{pin_name}", "simulate", str(error)
        )
        return {
            "arc": None,
            "report": local,
            "stage": "simulate",
            "error": str(error),
        }
    try:
        arc = characterized_arc_to_liberty(
            rise, fall, policy=policy, report=local, vectorized=vectorized
        )
    except (CharacterizationError, FittingError) as error:
        if not isolate_errors:
            raise
        local.quarantine(f"{cell.name}/{pin_name}", "fit", str(error))
        return {
            "arc": None,
            "report": local,
            "stage": "fit",
            "error": str(error),
        }
    return {"arc": arc, "report": local, "stage": None, "error": None}


def _characterize_pin_task(
    store: CheckpointStore,
    engine: GateTimingEngine,
    cell: CellDefinition,
    pin_name: str,
    config: CharacterizationConfig,
    policy: FitPolicy | None,
    isolate_errors: bool,
    vectorized: bool = True,
) -> dict:
    """Pool task: one pin's payload, Monte-Carlo checkpointed in-store.

    Top-level so it pickles under the spawn start method; the worker
    saves the returned dict under this pin's fit token.
    """
    return _pin_payload(
        engine,
        cell,
        pin_name,
        config,
        checkpoint=store,
        policy=policy,
        isolate_errors=isolate_errors,
        vectorized=vectorized,
    )


def grid_point_token(
    engine: GateTimingEngine,
    cell: CellDefinition,
    pin_name: str,
    transition: str,
    config: CharacterizationConfig,
    i: int,
    j: int,
    *,
    policy: FitPolicy | None,
) -> str:
    """Content token of one grid point's simulate-and-fit payload.

    Derived from the arc's Monte-Carlo token (so any knob that changes
    a sample changes the key) plus the condition indices and the fit
    policy.  Unlike :func:`pin_fit_token`, ``isolate_errors`` is *not*
    part of the key: a grid-point payload records errors instead of
    acting on them (the parent's assembly step applies the
    quarantine-vs-raise decision), so the same payload serves both
    modes.
    """
    arc = arc_checkpoint_token(engine, cell, pin_name, transition, config)
    return f"grid-fit|{arc}|{i}|{j}|{policy!r}"


#: Exception types a grid-point payload may carry; assembly re-raises
#: the original type so serial and grid-parallel runs fail identically.
_PAYLOAD_ERRORS = {
    "CharacterizationError": CharacterizationError,
    "FittingError": FittingError,
}


def _grid_point_task(
    store: CheckpointStore,
    engine: GateTimingEngine,
    cell: CellDefinition,
    pin_name: str,
    transition: str,
    config: CharacterizationConfig,
    i: int,
    j: int,
    policy: FitPolicy | None,
) -> dict:
    """Pool task: simulate and fit one (arc, slew, load) condition.

    Top-level so it pickles under spawn.  When the store already holds
    the full-arc Monte-Carlo payload (a previous serial or
    pin-granularity run over the same store), the condition's samples
    are sliced out of it instead of re-simulated — content addressing
    makes the slice byte-identical to a fresh draw.

    Deterministic errors are *captured in the payload* rather than
    raised: a serial run simulates the entire rise and fall grids
    before fitting anything, so which error surfaces first depends on
    serial order, not on the order grid points happen to be computed
    in.  The parent's assembly step replays the serial order over the
    captured errors and raises (or quarantines) exactly the one a
    serial run would have hit.

    Returns ``{"sim_error", "nominal_delay", "nominal_transition",
    "fits"}`` where ``fits[quantity]`` is one of ``{"outcome":
    FitOutcome}`` (policy path), ``{"model": LVF2Model}`` (bare-fitter
    path) or ``{"error": (type_name, text)}``.
    """
    topology = cell.arc(pin_name, transition)
    with telemetry.span(
        "characterize.point",
        cell=cell.name,
        pin=pin_name,
        transition=transition,
        slew_index=i,
        load_index=j,
    ):
        arc_token = arc_checkpoint_token(
            engine, cell, pin_name, transition, config
        )
        try:
            cached = (
                store.load(arc_token)
                if store is not None and store.contains(arc_token)
                else None
            )
            if cached is not None:
                delay = cached.delay_samples[i, j]
                transition_samples = cached.transition_samples[i, j]
                nominal_delay = float(cached.nominal_delay[i, j])
                nominal_transition = float(
                    cached.nominal_transition[i, j]
                )
            else:
                (
                    delay,
                    transition_samples,
                    nominal_delay,
                    nominal_transition,
                ) = simulate_condition(
                    engine,
                    topology,
                    cell.name,
                    pin_name,
                    transition,
                    config,
                    i,
                    j,
                )
        except (CharacterizationError, FittingError) as error:
            faults.arc_completed()
            return {
                "sim_error": (type(error).__name__, str(error)),
                "nominal_delay": None,
                "nominal_transition": None,
                "fits": {},
            }
        fits: dict[str, dict] = {}
        for quantity, samples in (
            ("delay", delay),
            ("transition", transition_samples),
        ):
            context = FitContext(
                cell.name, pin_name, transition, quantity, i, j
            )
            try:
                if policy is not None:
                    fits[quantity] = {
                        "outcome": policy.fit(samples, context=context)
                    }
                else:
                    with telemetry.span("fit.point", stage="fitting"):
                        fits[quantity] = {
                            "model": LVF2Model.fit(samples)
                        }
            except (CharacterizationError, FittingError) as error:
                fits[quantity] = {
                    "error": (type(error).__name__, str(error))
                }
    faults.arc_completed()
    return {
        "sim_error": None,
        "nominal_delay": nominal_delay,
        "nominal_transition": nominal_transition,
        "fits": fits,
    }


def _assemble_pin_from_grid(
    cell: CellDefinition,
    pin_name: str,
    config: CharacterizationConfig,
    points: dict,
    *,
    policy: FitPolicy | None,
    isolate_errors: bool,
) -> dict:
    """Level-1 assembly: fold grid-point payloads into one pin payload.

    Replays the serial pin path over precomputed per-point results in
    the exact serial order — simulation errors first (scanning the
    whole rise grid, then the whole fall grid, row-major, the way
    :func:`characterize_arc` visits conditions), then fits in Liberty
    base order (``cell_rise``, ``rise_transition``, ``cell_fall``,
    ``fall_transition``; slews outer, loads inner).  Fit outcomes are
    re-recorded into a fresh :class:`FitReport` in that order, so the
    assembled :class:`TimingArc`, the report records and any
    quarantine entry are byte-identical to what :func:`_pin_payload`
    would have produced.

    ``points`` maps ``(transition, i, j)`` to grid-point payloads.
    Returns the same ``{"arc", "report", "stage", "error"}`` dict as
    :func:`_pin_payload` (level 2 — per-cell Liberty assembly — is
    :func:`_characterize_cell`, shared by every path).
    """
    local = FitReport()
    shape = config.grid_shape
    label = f"{cell.name}/{pin_name}"
    for transition in ("rise", "fall"):
        for i in range(shape[0]):
            for j in range(shape[1]):
                sim_error = points[(transition, i, j)]["sim_error"]
                if sim_error is None:
                    continue
                type_name, text = sim_error
                if not isolate_errors:
                    raise _PAYLOAD_ERRORS.get(
                        type_name, CharacterizationError
                    )(text)
                local.quarantine(label, "simulate", text)
                return {
                    "arc": None,
                    "report": local,
                    "stage": "simulate",
                    "error": text,
                }
    template = config.template()
    arc = TimingArc(
        related_pin=pin_name,
        timing_sense="negative_unate",
        timing_type="combinational",
    )
    quantity_map = (
        ("cell_rise", "rise", "delay"),
        ("rise_transition", "rise", "transition"),
        ("cell_fall", "fall", "delay"),
        ("fall_transition", "fall", "transition"),
    )
    for base, transition, quantity in quantity_map:
        nominal_grid = np.empty(shape)
        models = np.empty(shape, dtype=object)
        for i in range(shape[0]):
            for j in range(shape[1]):
                point = points[(transition, i, j)]
                nominal_grid[i, j] = point[
                    "nominal_delay"
                    if quantity == "delay"
                    else "nominal_transition"
                ]
                fit = point["fits"][quantity]
                error = fit.get("error")
                if error is not None:
                    type_name, text = error
                    if not isolate_errors:
                        raise _PAYLOAD_ERRORS.get(
                            type_name, FittingError
                        )(text)
                    local.quarantine(label, "fit", text)
                    return {
                        "arc": None,
                        "report": local,
                        "stage": "fit",
                        "error": text,
                    }
                if policy is not None:
                    outcome = fit["outcome"]
                    local.record_fit(
                        FitContext(
                            cell.name,
                            pin_name,
                            transition,
                            quantity,
                            i,
                            j,
                        ),
                        outcome,
                    )
                    models[i, j] = outcome.model
                else:
                    models[i, j] = fit["model"]
        nominal = Table(
            template.name, config.slews, config.loads, nominal_grid
        )
        with telemetry.span("liberty.tables", stage="export", table=base):
            arc.tables[base] = LVF2Tables.from_models(
                base, nominal, models
            )
    return {"arc": arc, "report": local, "stage": None, "error": None}


def characterization_work_items(
    engine: GateTimingEngine,
    cells: Sequence[CellDefinition],
    config: CharacterizationConfig,
    *,
    policy: FitPolicy | None = None,
    isolate_errors: bool = False,
    granularity: str = "pin",
    vectorized: bool = True,
) -> tuple[WorkItem, ...]:
    """Pool work items for a library run, at the chosen granularity.

    ``"pin"`` (default): one item per (cell, input pin) — the whole
    simulate-both-edges-and-fit payload.  Each item's companions are
    the two per-edge Monte-Carlo tokens the task writes along the way
    (claimed together so gc cannot evict them mid-flight, and shared
    byte-for-byte with serial runs on the same store).

    ``"grid"``: one item per (cell, pin, edge, slew index, load
    index) — a single condition's simulate-and-fit.  With 8x8 grids a
    pin is 128 grid points, so this granularity load-balances
    per-pin-dominated workloads across many cores where pin items
    would leave workers idle.  Grid items carry no companions (they
    only *read* a full-arc Monte-Carlo entry if one already exists)
    and set :attr:`WorkItem.group` to the pin they fold into during
    two-level assembly.

    ``vectorized`` reaches pin items only: a grid item fits exactly one
    condition, so there is no batch axis to vectorize over (and its
    token stays untouched either way — the batched fit is
    bit-identical, so payload bytes do not depend on the toggle).

    Raises:
        ParameterError: On an unknown granularity.
    """
    if granularity not in GRANULARITIES:
        raise ParameterError(
            f"granularity must be one of {GRANULARITIES}, "
            f"got {granularity!r}"
        )
    items = []
    if granularity == "grid":
        rows, cols = config.grid_shape
        for cell in cells:
            for pin_name in cell.inputs:
                for transition in ("rise", "fall"):
                    for i in range(rows):
                        for j in range(cols):
                            items.append(
                                WorkItem(
                                    token=grid_point_token(
                                        engine,
                                        cell,
                                        pin_name,
                                        transition,
                                        config,
                                        i,
                                        j,
                                        policy=policy,
                                    ),
                                    label=(
                                        f"{cell.name}/{pin_name}"
                                        f"/{transition}[{i},{j}]"
                                    ),
                                    task=_grid_point_task,
                                    args=(
                                        engine,
                                        cell,
                                        pin_name,
                                        transition,
                                        config,
                                        i,
                                        j,
                                        policy,
                                    ),
                                    group=f"{cell.name}/{pin_name}",
                                )
                            )
        return tuple(items)
    for cell in cells:
        for pin_name in cell.inputs:
            rise = arc_checkpoint_token(
                engine, cell, pin_name, "rise", config
            )
            fall = arc_checkpoint_token(
                engine, cell, pin_name, "fall", config
            )
            items.append(
                WorkItem(
                    token=pin_fit_token(
                        engine,
                        cell,
                        pin_name,
                        config,
                        policy=policy,
                        isolate_errors=isolate_errors,
                    ),
                    label=f"{cell.name}/{pin_name}",
                    task=_characterize_pin_task,
                    args=(
                        engine,
                        cell,
                        pin_name,
                        config,
                        policy,
                        isolate_errors,
                        vectorized,
                    ),
                    companions=(rise, fall),
                )
            )
    return tuple(items)


def _assemble_pin_from_store(
    reader: CheckpointStore,
    engine: GateTimingEngine,
    cell: CellDefinition,
    pin_name: str,
    config: CharacterizationConfig,
    *,
    policy: FitPolicy | None,
    isolate_errors: bool,
) -> dict:
    """Load one pin's grid-point payloads and fold them into a pin
    payload (level 1 of the two-level assembly)."""
    rows, cols = config.grid_shape
    points: dict = {}
    for transition in ("rise", "fall"):
        for i in range(rows):
            for j in range(cols):
                token = grid_point_token(
                    engine,
                    cell,
                    pin_name,
                    transition,
                    config,
                    i,
                    j,
                    policy=policy,
                )
                point = reader.load(token)
                if point is None:  # pragma: no cover - defensive
                    point = _grid_point_task(
                        reader,
                        engine,
                        cell,
                        pin_name,
                        transition,
                        config,
                        i,
                        j,
                        policy,
                    )
                points[(transition, i, j)] = point
    with telemetry.span(
        "pool.assemble",
        label=f"{cell.name}/{pin_name}",
        n_points=len(points),
    ):
        return _assemble_pin_from_grid(
            cell,
            pin_name,
            config,
            points,
            policy=policy,
            isolate_errors=isolate_errors,
        )


def _parallel_supplier(
    engine: GateTimingEngine,
    cells: Sequence[CellDefinition],
    config: CharacterizationConfig,
    *,
    checkpoint: CheckpointStore | None,
    policy: FitPolicy | None,
    isolate_errors: bool,
    workers: int,
    pool,
    granularity: str = "pin",
    vectorized: bool = True,
):
    """Run the worker pool, pre-load every pin payload, hand back a
    ``supplier(cell, pin) -> payload`` for serial-order assembly.

    At ``"grid"`` granularity the pre-load step *is* level 1 of the
    two-level assembly: each pin's grid-point payloads are folded into
    a pin payload here, in serial order, before the per-cell Liberty
    assembly (level 2) consumes them.

    Without a caller-provided store the pool runs over a temporary
    directory removed before assembly starts (payloads are held in
    memory by then).
    """
    from repro.runtime.pool.pool import PoolConfig, run_pool

    items = characterization_work_items(
        engine,
        cells,
        config,
        policy=policy,
        isolate_errors=isolate_errors,
        granularity=granularity,
        vectorized=vectorized,
    )
    temp_dir = None
    store = checkpoint
    if store is None:
        temp_dir = tempfile.mkdtemp(prefix="repro-pool-")
        store = CheckpointStore(temp_dir, reuse=True)
    try:
        pool_config = pool or PoolConfig(
            n_workers=workers, seed=config.seed
        )
        run_pool(items, store, pool_config)
        reader = (
            store
            if store.reuse
            else CheckpointStore(store.directory, reuse=True)
        )
        payloads: dict[tuple[str, str], dict] = {}
        for cell in cells:
            for pin_name in cell.inputs:
                if granularity == "grid":
                    payload = _assemble_pin_from_store(
                        reader,
                        engine,
                        cell,
                        pin_name,
                        config,
                        policy=policy,
                        isolate_errors=isolate_errors,
                    )
                else:
                    token = pin_fit_token(
                        engine,
                        cell,
                        pin_name,
                        config,
                        policy=policy,
                        isolate_errors=isolate_errors,
                    )
                    payload = reader.load(token)
                    if payload is None:  # pragma: no cover - defensive
                        payload = _pin_payload(
                            engine,
                            cell,
                            pin_name,
                            config,
                            checkpoint=reader,
                            policy=policy,
                            isolate_errors=isolate_errors,
                            vectorized=vectorized,
                        )
                payloads[(cell.name, pin_name)] = payload
    finally:
        if temp_dir is not None:
            shutil.rmtree(temp_dir, ignore_errors=True)

    def supplier(cell: CellDefinition, pin_name: str) -> dict:
        return payloads[(cell.name, pin_name)]

    return supplier


def characterization_tokens(
    engine: GateTimingEngine,
    cells: Sequence[CellDefinition],
    config: CharacterizationConfig,
    *,
    policy: FitPolicy | None = None,
    isolate_errors: bool = False,
) -> tuple[str, ...]:
    """Every token a run of this configuration can read or write.

    The full valid set for :meth:`CheckpointStore.gc`: per-edge
    Monte-Carlo tokens, per-pin fit tokens and per-grid-point fit
    tokens.  Collecting against arc tokens alone would evict the pin-
    and grid-level payloads a pool run left behind, forcing the next
    resume to re-fit everything.
    """
    rows, cols = config.grid_shape
    tokens: list[str] = []
    for cell in cells:
        for pin_name in cell.inputs:
            tokens.append(
                pin_fit_token(
                    engine,
                    cell,
                    pin_name,
                    config,
                    policy=policy,
                    isolate_errors=isolate_errors,
                )
            )
            for transition in ("rise", "fall"):
                tokens.append(
                    arc_checkpoint_token(
                        engine, cell, pin_name, transition, config
                    )
                )
                for i in range(rows):
                    for j in range(cols):
                        tokens.append(
                            grid_point_token(
                                engine,
                                cell,
                                pin_name,
                                transition,
                                config,
                                i,
                                j,
                                policy=policy,
                            )
                        )
    return tuple(tokens)


def characterize_library(
    engine: GateTimingEngine,
    cells: Sequence[CellDefinition],
    config: CharacterizationConfig,
    *,
    library_name: str = "repro_tt_0p8v_25c",
    checkpoint: CheckpointStore | None = None,
    policy: FitPolicy | None = None,
    report: FitReport | None = None,
    isolate_errors: bool = False,
    progress: ProgressReporter | None = None,
    workers: int = 1,
    pool=None,
    granularity: str = "pin",
    vectorized: bool = True,
) -> Library:
    """Characterise a cell list into a complete LVF2 Liberty library.

    Args:
        engine: Timing engine.
        cells: Cells to characterise.
        config: Grid and sampling configuration.
        library_name: Liberty library name.
        checkpoint: Optional per-arc checkpoint store; completed arcs
            of a killed run are resumed instead of re-simulated.
        policy: Optional fit fallback ladder; degenerate grid points
            degrade through it instead of aborting the library.
        report: Degradation/quarantine report filled during the run.
        isolate_errors: When True, an arc whose characterisation or
            fitting fails terminally is quarantined into ``report``
            (the library is emitted without it) instead of raising.
        progress: Optional progress reporter (one line per arc).
        workers: When > 1, split the per-pin simulate+fit work across
            that many worker processes (claim-file coordination over
            the checkpoint directory; see ``repro.runtime.pool``).
            The resulting library and report are byte-identical to a
            serial run — sharding only changes who computes a payload.
        pool: Optional :class:`~repro.runtime.pool.PoolConfig`
            overriding the derived pool settings (implies parallel
            even when ``workers`` is 1).
        granularity: Parallel work-unit size, ``"pin"`` (default) or
            ``"grid"`` (one claimable item per grid condition; see
            :func:`characterization_work_items`).  Serial runs ignore
            it beyond validation — and every granularity/worker-count
            combination produces byte-identical output.
        vectorized: Run each grid's model fits through the batched EM
            path (:meth:`~repro.models.lvf2.LVF2Model.fit_batch`) —
            bit-identical results, one vectorized pass instead of a
            per-point Python loop.  ``False`` restores the serial
            per-point fits (``repro characterize --serial-fit``).
    """
    if granularity not in GRANULARITIES:
        raise ParameterError(
            f"granularity must be one of {GRANULARITIES}, "
            f"got {granularity!r}"
        )
    reporter = progress or ProgressReporter(enabled=False)
    template = config.template()
    library = Library(
        name=library_name,
        attributes={
            "technology": "cmos",
            "delay_model": "table_lookup",
            "time_unit": "1ns",
            "voltage_unit": "1V",
            "nom_voltage": f"{engine.corner.vdd:g}",
            "nom_temperature": f"{engine.corner.temperature:g}",
        },
    )
    library.templates[template.name] = template
    if workers > 1 or pool is not None:
        supplier = _parallel_supplier(
            engine,
            cells,
            config,
            checkpoint=checkpoint,
            policy=policy,
            isolate_errors=isolate_errors,
            workers=workers,
            pool=pool,
            granularity=granularity,
            vectorized=vectorized,
        )
    else:

        def supplier(cell: CellDefinition, pin_name: str) -> dict:
            return _pin_payload(
                engine,
                cell,
                pin_name,
                config,
                checkpoint=checkpoint,
                policy=policy,
                isolate_errors=isolate_errors,
                vectorized=vectorized,
            )

    for cell in cells:
        with telemetry.span("characterize.cell", cell=cell.name):
            lib_cell = _characterize_cell(
                cell,
                config,
                supplier=supplier,
                report=report,
                reporter=reporter,
            )
        library.cells[cell.name] = lib_cell
    return library


def _characterize_cell(
    cell: CellDefinition,
    config: CharacterizationConfig,
    *,
    supplier,
    report: FitReport | None,
    reporter: ProgressReporter,
) -> LibCell:
    """Assemble one Liberty cell from per-pin payloads, serial order.

    ``supplier(cell, pin) -> payload`` abstracts over where the payload
    came from (computed inline or loaded from a pool's checkpoint
    store); assembly order — and therefore report order and Liberty
    output — is the cell/pin iteration order either way.
    """
    lib_cell = LibCell(name=cell.name, area=1.0 + cell.drive)
    for pin_name in cell.inputs:
        lib_cell.pins[pin_name] = Pin(
            name=pin_name,
            direction="input",
            capacitance=cell.input_capacitance(pin_name),
        )
    output = Pin(
        name=cell.output, direction="output", function=cell.function
    )
    for pin_name in cell.inputs:
        payload = supplier(cell, pin_name)
        if report is not None:
            report.merge(payload["report"])
        if payload["error"] is not None:
            reporter.info(
                "quarantined %s/%s (%s): %s",
                cell.name,
                pin_name,
                payload["stage"],
                payload["error"],
            )
            continue
        output.arcs.append(payload["arc"])
        reporter.info(
            "characterized %s/%s (%dx%d grid, %d samples)",
            cell.name,
            pin_name,
            *config.grid_shape,
            config.n_samples,
        )
    lib_cell.pins[output.name] = output
    return lib_cell
