"""Library characterisation driver (paper §4.2).

Runs the Monte-Carlo gate engine over the 8x8 slew-load grid for every
arc of every cell, producing per-condition golden sample sets, fitting
the timing models, and exporting fitted LVF2 libraries to Liberty.

The paper's grid axes are reproduced: loads are the exact capacitance
breakpoints visible in Fig. 4; slews span the same three decades
geometrically.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.circuits.cells import CellDefinition
from repro.circuits.gate import ArcSimResult, GateTimingEngine
from repro.errors import CharacterizationError
from repro.liberty.library import Cell as LibCell
from repro.liberty.library import Library, Pin, TimingArc
from repro.liberty.lvf2_attrs import LVF2Tables
from repro.liberty.tables import Table, TableTemplate
from repro.models.lvf2 import LVF2Model

__all__ = [
    "PAPER_LOADS",
    "PAPER_SLEWS",
    "CharacterizationConfig",
    "ArcCharacterization",
    "characterize_arc",
    "characterized_arc_to_liberty",
    "characterize_library",
]

#: Output-load breakpoints (pF) — the exact Fig. 4 axis values.
PAPER_LOADS = (
    0.00015,
    0.00722,
    0.02136,
    0.04965,
    0.10623,
    0.21938,
    0.44569,
    0.89830,
)

#: Input-slew breakpoints (ns) — geometric over the same decades.
PAPER_SLEWS = (
    0.00123,
    0.00316,
    0.00812,
    0.02086,
    0.05359,
    0.13767,
    0.35366,
    0.87715,
)


def _condition_seed(
    seed: int, arc_name: str, i: int, j: int
) -> int:
    """Stable per-condition RNG seed (independent across conditions)."""
    digest = hashlib.sha256(
        f"{seed}|{arc_name}|{i}|{j}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass(frozen=True)
class CharacterizationConfig:
    """Knobs of a characterisation run.

    Attributes:
        slews: Input-transition breakpoints (ns).
        loads: Output-load breakpoints (pF).
        n_samples: Monte-Carlo population per condition (paper: 50k).
        seed: Base seed; per-condition seeds are derived from it.
        use_lhs: Latin-hypercube stratification.
    """

    slews: tuple[float, ...] = PAPER_SLEWS
    loads: tuple[float, ...] = PAPER_LOADS
    n_samples: int = 50_000
    seed: int = 2024
    use_lhs: bool = True

    def __post_init__(self) -> None:
        if self.n_samples < 16:
            raise CharacterizationError(
                f"n_samples must be >= 16, got {self.n_samples}"
            )
        if not self.slews or not self.loads:
            raise CharacterizationError("need at least one slew and load")

    @property
    def grid_shape(self) -> tuple[int, int]:
        return (len(self.slews), len(self.loads))

    def template(self) -> TableTemplate:
        """Liberty table template matching the grid."""
        rows, cols = self.grid_shape
        return TableTemplate(
            name=f"delay_template_{rows}x{cols}",
            variable_1="input_net_transition",
            variable_2="total_output_net_capacitance",
            index_1=self.slews,
            index_2=self.loads,
        )


@dataclass
class ArcCharacterization:
    """All Monte-Carlo data for one arc over the slew-load grid.

    Attributes:
        cell: Cell instance name.
        input_pin: Arc input.
        transition: Output transition, ``rise`` or ``fall``.
        config: The run configuration.
        delay_samples: ``(n_slews, n_loads)`` object grid of sample
            arrays.
        transition_samples: Same for output transition time.
        nominal_delay: Variation-free delay grid.
        nominal_transition: Variation-free transition grid.
    """

    cell: str
    input_pin: str
    transition: str
    config: CharacterizationConfig
    delay_samples: np.ndarray
    transition_samples: np.ndarray
    nominal_delay: np.ndarray
    nominal_transition: np.ndarray

    def samples(self, quantity: str, i: int, j: int) -> np.ndarray:
        """Golden samples of ``"delay"`` or ``"transition"`` at (i, j)."""
        if quantity == "delay":
            return self.delay_samples[i, j]
        if quantity == "transition":
            return self.transition_samples[i, j]
        raise CharacterizationError(
            f"quantity must be delay/transition, got {quantity!r}"
        )

    def fit_grid(
        self, quantity: str, fitter=LVF2Model.fit
    ) -> np.ndarray:
        """Fit a model at every grid point; returns an object grid."""
        shape = self.config.grid_shape
        models = np.empty(shape, dtype=object)
        for i in range(shape[0]):
            for j in range(shape[1]):
                models[i, j] = fitter(self.samples(quantity, i, j))
        return models


def characterize_arc(
    engine: GateTimingEngine,
    cell: CellDefinition,
    input_pin: str,
    transition: str,
    config: CharacterizationConfig,
) -> ArcCharacterization:
    """Monte-Carlo characterise one arc over the full grid."""
    topology = cell.arc(input_pin, transition)
    shape = config.grid_shape
    delay_samples = np.empty(shape, dtype=object)
    transition_samples = np.empty(shape, dtype=object)
    nominal_delay = np.empty(shape)
    nominal_transition = np.empty(shape)
    for i, slew in enumerate(config.slews):
        for j, load in enumerate(config.loads):
            result: ArcSimResult = engine.simulate_arc(
                topology,
                slew,
                load,
                config.n_samples,
                rng=_condition_seed(config.seed, topology.name, i, j),
                use_lhs=config.use_lhs,
            )
            delay_samples[i, j] = result.delay
            transition_samples[i, j] = result.transition
            nominal_delay[i, j] = result.nominal_delay
            nominal_transition[i, j] = result.nominal_transition
    return ArcCharacterization(
        cell=cell.name,
        input_pin=input_pin,
        transition=transition,
        config=config,
        delay_samples=delay_samples,
        transition_samples=transition_samples,
        nominal_delay=nominal_delay,
        nominal_transition=nominal_transition,
    )


def characterized_arc_to_liberty(
    rise: ArcCharacterization,
    fall: ArcCharacterization,
    *,
    timing_sense: str = "negative_unate",
    collapse_by_bic: bool = False,
) -> TimingArc:
    """Fit LVF2 grids for both edges and build a Liberty timing arc.

    Args:
        rise: Characterisation of the output-rise edge.
        fall: Characterisation of the output-fall edge.
        timing_sense: Liberty unateness attribute.
        collapse_by_bic: Apply the §3.4 fallback — grid points whose
            data do not support two components are stored as plain LVF.
    """
    if (rise.cell, rise.input_pin) != (fall.cell, fall.input_pin):
        raise CharacterizationError(
            "rise/fall characterisations are for different arcs"
        )
    config = rise.config
    template = config.template()
    arc = TimingArc(
        related_pin=rise.input_pin,
        timing_sense=timing_sense,
        timing_type="combinational",
    )
    quantity_map = {
        "cell_rise": (rise, "delay"),
        "rise_transition": (rise, "transition"),
        "cell_fall": (fall, "delay"),
        "fall_transition": (fall, "transition"),
    }
    for base, (char, quantity) in quantity_map.items():
        nominal_grid = (
            char.nominal_delay
            if quantity == "delay"
            else char.nominal_transition
        )
        nominal = Table(
            template.name, config.slews, config.loads, nominal_grid
        )
        models = char.fit_grid(quantity)
        if collapse_by_bic:
            for index in np.ndindex(models.shape):
                model = models[index]
                collapsed = model.collapse_by_bic(
                    char.samples(quantity, *index)
                )
                if collapsed is not model:
                    models[index] = LVF2Model.from_lvf(collapsed)
        arc.tables[base] = LVF2Tables.from_models(base, nominal, models)
    return arc


def characterize_library(
    engine: GateTimingEngine,
    cells: Sequence[CellDefinition],
    config: CharacterizationConfig,
    *,
    library_name: str = "repro_tt_0p8v_25c",
) -> Library:
    """Characterise a cell list into a complete LVF2 Liberty library."""
    template = config.template()
    library = Library(
        name=library_name,
        attributes={
            "technology": "cmos",
            "delay_model": "table_lookup",
            "time_unit": "1ns",
            "nom_voltage": f"{engine.corner.vdd:g}",
            "nom_temperature": f"{engine.corner.temperature:g}",
        },
    )
    library.templates[template.name] = template
    for cell in cells:
        lib_cell = LibCell(name=cell.name, area=1.0 + cell.drive)
        for pin_name in cell.inputs:
            lib_cell.pins[pin_name] = Pin(
                name=pin_name,
                direction="input",
                capacitance=cell.input_capacitance(pin_name),
            )
        output = Pin(
            name=cell.output, direction="output", function=cell.function
        )
        for pin_name in cell.inputs:
            rise = characterize_arc(
                engine, cell, pin_name, "rise", config
            )
            fall = characterize_arc(
                engine, cell, pin_name, "fall", config
            )
            output.arcs.append(characterized_arc_to_liberty(rise, fall))
        lib_cell.pins[output.name] = output
        library.cells[cell.name] = lib_cell
    return library
