"""The five representative non-Gaussian scenarios of paper Fig. 3.

Section 4.1 selects five shapes "from the distributions generated from
cells": 2 Peaks, Multi-Peaks, Saddle, Minor Saddle and Kurtosis.  Here
each scenario is a documented skew-normal mixture ground truth plus a
sampler, so the Fig. 3 / Table 1 experiments are exactly reproducible
without first running the full library characterisation.

The parameter choices mirror the qualitative description of each case
in §4.1 (peak separation, skewness, weight and sigma ratios).  Units
are arbitrary delay units; every metric downstream is
golden-normalised.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.stats.mixtures import Mixture
from repro.stats.skew_normal import SkewNormal

__all__ = ["Scenario", "SCENARIOS", "get_scenario", "scenario_names"]


@dataclass(frozen=True)
class Scenario:
    """A named ground-truth timing distribution.

    Attributes:
        name: Paper's scenario name.
        mixture: Ground-truth skew-normal mixture.
        description: The §4.1 characterisation of the shape.
    """

    name: str
    mixture: Mixture
    description: str

    def sample(
        self, n_samples: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Draw golden samples (the role of SPICE MC in the paper)."""
        return self.mixture.rvs(n_samples, rng=rng)


def _sn(mean: float, std: float, skew: float) -> SkewNormal:
    return SkewNormal.from_moments(mean, std, skew)


def _two_peaks() -> Scenario:
    # "two prominent peaks ... considerable distance between their
    #  locations and the minor standard deviations ... a sharp edge
    #  indicates a significant skewness."
    mixture = Mixture(
        (0.55, 0.45),
        (_sn(1.00, 0.030, 0.85), _sn(1.26, 0.026, 0.30)),
    )
    return Scenario(
        "2 Peaks",
        mixture,
        "Two well-separated narrow peaks, first with a sharp "
        "(strongly skewed) edge.",
    )


def _multi_peaks() -> Scenario:
    # "similar to (a), in which both peaks have significant skewness".
    # Four components in two clusters: each dominant skewed peak has a
    # broad shoulder, so the density is multi-peaked while LVF2's two
    # components can still "identify the two dominant peaks" (§4.1).
    mixture = Mixture(
        (0.35, 0.25, 0.25, 0.15),
        (
            _sn(1.00, 0.020, 0.90),
            _sn(1.05, 0.035, 0.50),
            _sn(1.22, 0.020, 0.90),
            _sn(1.28, 0.040, 0.60),
        ),
    )
    return Scenario(
        "Multi-Peaks",
        mixture,
        "Several peaks in two clusters, the two dominant ones "
        "strongly skewed.",
    )


def _saddle() -> Scenario:
    # "two similar peaks with slight skewness and comparable standard
    #  deviations" -- close enough to merge into a saddle.
    mixture = Mixture(
        (0.52, 0.48),
        (_sn(1.00, 0.045, 0.20), _sn(1.19, 0.050, 0.15)),
    )
    return Scenario(
        "Saddle",
        mixture,
        "Two similar, slightly skewed peaks forming a saddle.",
    )


def _minor_saddle() -> Scenario:
    # "one Gaussian dominating another, and the two Gaussians having
    #  deviated standard deviations."
    mixture = Mixture(
        (0.78, 0.22),
        (_sn(1.00, 0.035, 0.25), _sn(1.17, 0.110, 0.40)),
    )
    return Scenario(
        "Minor Saddle",
        mixture,
        "A dominant narrow peak with a wide minor companion.",
    )


def _kurtosis() -> Scenario:
    # "two peaks with similar centers but different weights and
    #  deviations. This leads to a high kurtosis."
    mixture = Mixture(
        (0.65, 0.35),
        (_sn(1.00, 0.030, 0.05), _sn(1.005, 0.095, 0.10)),
    )
    return Scenario(
        "Kurtosis",
        mixture,
        "Concentric narrow + wide components: leptokurtic, "
        "single-peaked.",
    )


_BUILDERS: dict[str, Callable[[], Scenario]] = {
    "2 Peaks": _two_peaks,
    "Multi-Peaks": _multi_peaks,
    "Saddle": _saddle,
    "Minor Saddle": _minor_saddle,
    "Kurtosis": _kurtosis,
}

#: All five scenarios keyed by the paper's names (Table 1 rows).
SCENARIOS: dict[str, Scenario] = {
    name: builder() for name, builder in _BUILDERS.items()
}


def scenario_names() -> tuple[str, ...]:
    """Scenario names in Table 1 row order."""
    return tuple(_BUILDERS)


def get_scenario(name: str) -> Scenario:
    """Scenario lookup.

    Raises:
        ParameterError: For unknown scenario names.
    """
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ParameterError(
            f"unknown scenario {name!r}; known: "
            f"{', '.join(scenario_names())}"
        ) from None
