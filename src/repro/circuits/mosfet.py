"""Transregional MOSFET drive model (alpha-power law + subthreshold).

The analytic SPICE surrogate at the heart of the Monte-Carlo substrate.
Delay variability at 22nm / 0.8 V is dominated by how the device drive
current responds to threshold-voltage mismatch; the response is
strongly non-linear (the source of skew and heavy tails in timing
distributions), so the model blends:

- the Sakurai-Newton alpha-power law in strong inversion,
  ``Id ~ K (Vgs - Vth)^alpha``;
- an exponential subthreshold law below ``Vth``,
  ``Id ~ I0 exp((Vgs - Vth) / (n vT))``;

joined with a smoothplus interpolation so the drive and its derivatives
are continuous through the near-threshold region — the region in which
[5], [6], [7] (LN / LSN / LESN) were developed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.circuits.process import ProcessCorner

__all__ = ["DeviceParams", "Transistor", "NMOS_22NM", "PMOS_22NM"]


@dataclass(frozen=True)
class DeviceParams:
    """Technology parameters of one device flavour (NMOS / PMOS).

    Attributes:
        vth0: Nominal threshold voltage magnitude in volts.
        alpha: Velocity-saturation exponent (2 = long channel,
            ~1.2-1.4 at 22nm).
        k_drive: Drive factor in mA/V^alpha per unit width.
        subthreshold_slope: Ideality factor ``n`` of the subthreshold
            exponential.
        gamma_dibl: Drain-induced barrier lowering coefficient; lowers
            the effective Vth with drain bias.
    """

    vth0: float
    alpha: float
    k_drive: float
    subthreshold_slope: float = 1.35
    gamma_dibl: float = 0.04

    def __post_init__(self) -> None:
        if self.vth0 <= 0.0:
            raise ParameterError(f"vth0 must be positive, got {self.vth0}")
        if not 1.0 <= self.alpha <= 2.0:
            raise ParameterError(
                f"alpha must lie in [1, 2], got {self.alpha}"
            )
        if self.k_drive <= 0.0:
            raise ParameterError("k_drive must be positive")


#: Representative 22nm-class device flavours (0.8 V supply).
NMOS_22NM = DeviceParams(vth0=0.36, alpha=1.30, k_drive=1.00)
PMOS_22NM = DeviceParams(vth0=0.38, alpha=1.35, k_drive=0.55)


@dataclass(frozen=True)
class Transistor:
    """One transistor instance: flavour, drive width, local variation.

    Attributes:
        params: Device flavour.
        width_factor: Width in unit-drive multiples (Xn drive
            strengths scale this).
    """

    params: DeviceParams
    width_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.width_factor <= 0.0:
            raise ParameterError(
                f"width_factor must be positive, got {self.width_factor}"
            )

    # ------------------------------------------------------------------
    def effective_vth(
        self,
        dvth: np.ndarray,
        corner: ProcessCorner,
        *,
        dlength: np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-sample threshold voltage including global shift and DIBL.

        Short-channel effect: a shorter channel (negative ``dlength``)
        lowers Vth — this couples the length and threshold variations,
        one of the "confronting variations" mechanisms of paper §4.3.
        """
        vth = self.params.vth0 + corner.global_vth_shift + np.asarray(
            dvth, dtype=float
        )
        if dlength is not None:
            # Vth roll-off: ~60 mV per 10% channel shortening at 22nm.
            vth = vth + 0.6 * self.params.vth0 * np.asarray(
                dlength, dtype=float
            )
        vth = vth - self.params.gamma_dibl * corner.vdd
        return vth

    def drive_current(
        self,
        vgs: np.ndarray | float,
        dvth: np.ndarray,
        corner: ProcessCorner,
        *,
        dlength: np.ndarray | None = None,
        dmobility: np.ndarray | None = None,
    ) -> np.ndarray:
        """Saturation drive current (mA) for gate overdrive ``vgs``.

        Transregional blend: ``Id = K' * softplus_n(vgs - vth)^alpha``
        where ``softplus_n`` has the subthreshold thermal width, so the
        current decays exponentially below threshold instead of
        clipping to zero — the mechanism behind the long right tails of
        near-threshold delay distributions.
        """
        vth = self.effective_vth(dvth, corner, dlength=dlength)
        overdrive = np.asarray(vgs, dtype=float) - vth
        width = (
            self.params.subthreshold_slope * corner.thermal_voltage * 2.0
        )
        # Smooth max(overdrive, 0) with subthreshold-width rounding:
        # softplus(x) = width * log(1 + exp(x / width)).
        scaled = overdrive / width
        smooth = width * np.logaddexp(0.0, scaled)
        mobility = 1.0
        if dmobility is not None:
            mobility = 1.0 + np.asarray(dmobility, dtype=float)
        length = 1.0
        if dlength is not None:
            length = 1.0 + np.asarray(dlength, dtype=float)
        gain = (
            self.params.k_drive
            * self.width_factor
            * mobility
            / np.maximum(length, 0.5)
        )
        return gain * smooth**self.params.alpha

    def effective_resistance(
        self,
        dvth: np.ndarray,
        corner: ProcessCorner,
        *,
        dlength: np.ndarray | None = None,
        dmobility: np.ndarray | None = None,
    ) -> np.ndarray:
        """Switching resistance in kOhm: ``~ Vdd / (2 Id(Vdd))``.

        The standard effective-resistance abstraction for RC gate-delay
        estimation; per-sample because the drive current is.
        """
        current = self.drive_current(
            corner.vdd,
            dvth,
            corner,
            dlength=dlength,
            dmobility=dmobility,
        )
        return corner.vdd / (2.0 * np.maximum(current, 1e-12))

    def nominal_resistance(self, corner: ProcessCorner) -> float:
        """Effective resistance with all variations at zero."""
        zero = np.zeros(1)
        return float(
            self.effective_resistance(zero, corner, dlength=zero,
                                      dmobility=zero)[0]
        )

    def input_capacitance(self) -> float:
        """Gate capacitance in pF (unit-width normalised)."""
        # ~0.8 fF per unit-width finger at 22nm-class dimensions.
        return 0.0008 * self.width_factor

    def switching_threshold_shift(
        self, dvth: np.ndarray, corner: ProcessCorner
    ) -> np.ndarray:
        """Relative shift of the gate switching point due to mismatch.

        Used to translate input-slew interaction into delay: a higher
        device Vth means the gate reacts later on a slow input ramp.
        """
        return np.asarray(dvth, dtype=float) / corner.vdd
