"""Analytic CMOS gate timing engine (the SPICE surrogate).

Replaces the paper's proprietary SPICE + TSMC 22nm netlists with a
vectorised analytic model that reproduces the *mechanisms* behind the
paper's observations:

1. **Skew and heavy tails** — the transregional drive model of
   :mod:`repro.circuits.mosfet` makes switching resistance a strongly
   non-linear function of threshold mismatch, so even a single-stage
   delay is non-Gaussian.

2. **Multi-Gaussian (two-peak / saddle) distributions** — stacked
   gates carry internal nodes whose pre-charge state at switching time
   is decided by a *competition between two variation mechanisms*
   (paper §4.3).  Per sample, a regime variable compares the mismatch
   of the stack devices against a slew/load-dependent offset: samples
   on one side pay an extra charge-sharing delay.  When the offset is
   near zero — which happens along slew≈load diagonals — the two
   regimes are "evenly matched" and the distribution splits into two
   components, reproducing the diagonal accuracy pattern of Fig. 4.

3. **Slew interaction** — a Vth-dependent shift of the input-ramp
   crossing point couples input transition time into delay.

Everything is vectorised over Monte-Carlo samples; a 50k-sample arc
characterisation is a handful of numpy array operations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.circuits.mosfet import Transistor
from repro.circuits.process import (
    ProcessCorner,
    TransistorVariations,
    VariationModel,
)
from repro.errors import CharacterizationError, ParameterError

__all__ = ["Stage", "ArcTopology", "ArcSimResult", "GateTimingEngine"]

_LN2 = math.log(2.0)
#: Output transition is measured 10%-90%: ~2.2 RC for an RC output.
_SLEW_FACTOR = 2.2


@dataclass(frozen=True)
class Stage:
    """One gate stage of an arc's switching network.

    Attributes:
        paths: Parallel conduction paths; each path is a series stack
            of transistors.  Single-path for simple gates; two paths
            for pass-gate structures (XOR/MUX).
        parasitic_cap: Output parasitic capacitance in pF.
        internal_cap: Internal-node capacitance in pF (charge-sharing
            reservoir); 0 disables the regime mechanism.
        regime_phase: Offset phase of the charge-sharing competition in
            the slew/load plane; shifts where the 50/50 split occurs.
        regime_gain: Sensitivity of the regime boundary to the
            slew-load imbalance (higher -> narrower mixed region).
    """

    paths: tuple[tuple[Transistor, ...], ...]
    parasitic_cap: float = 0.001
    internal_cap: float = 0.0
    regime_phase: float = 0.0
    regime_gain: float = 2.5

    def __post_init__(self) -> None:
        if not self.paths or any(not path for path in self.paths):
            raise ParameterError("stage needs at least one non-empty path")
        if self.parasitic_cap < 0.0 or self.internal_cap < 0.0:
            raise ParameterError("capacitances must be non-negative")

    @property
    def transistors(self) -> tuple[Transistor, ...]:
        """All transistors, path-major order."""
        return tuple(t for path in self.paths for t in path)

    @property
    def n_transistors(self) -> int:
        return len(self.transistors)

    @property
    def stack_depth(self) -> int:
        return max(len(path) for path in self.paths)

    @property
    def has_charge_sharing(self) -> bool:
        return self.internal_cap > 0.0 and self.stack_depth >= 2

    def input_capacitance(self) -> float:
        """Gate capacitance presented to the driving net (pF)."""
        return sum(t.input_capacitance() for t in self.transistors)


@dataclass(frozen=True)
class ArcTopology:
    """Electrical structure of one timing arc (input -> output edge).

    Attributes:
        cell: Cell type name ("NAND2").
        input_pin: Input pin name.
        output_transition: ``"rise"`` or ``"fall"`` at the output.
        stages: Switching stages in signal order (compound gates such
            as AND2 = NAND2 + INV have two).
    """

    cell: str
    input_pin: str
    output_transition: str
    stages: tuple[Stage, ...]

    def __post_init__(self) -> None:
        if self.output_transition not in ("rise", "fall"):
            raise ParameterError(
                f"output_transition must be rise/fall, "
                f"got {self.output_transition!r}"
            )
        if not self.stages:
            raise ParameterError("arc needs at least one stage")

    @property
    def n_transistors(self) -> int:
        return sum(stage.n_transistors for stage in self.stages)

    @property
    def name(self) -> str:
        return f"{self.cell}:{self.input_pin}:{self.output_transition}"

    def width_factors(self) -> np.ndarray:
        """Per-transistor width factors, stage-major order."""
        return np.array(
            [
                t.width_factor
                for stage in self.stages
                for t in stage.transistors
            ]
        )

    def input_capacitance(self) -> float:
        """Input pin loading of the first stage (pF)."""
        return self.stages[0].input_capacitance()


@dataclass(frozen=True)
class ArcSimResult:
    """Monte-Carlo simulation output for one (slew, load) condition.

    Attributes:
        delay: Per-sample propagation delays (ns).
        transition: Per-sample output transition times (ns).
        nominal_delay: Variation-free delay (ns).
        nominal_transition: Variation-free transition (ns).
    """

    delay: np.ndarray
    transition: np.ndarray
    nominal_delay: float
    nominal_transition: float


@dataclass(frozen=True)
class GateTimingEngine:
    """Vectorised analytic timing simulator.

    Attributes:
        corner: Operating corner (supply/temperature/global skew).
        variation: Local-mismatch statistics.
        slew_sensitivity: Fraction of the input transition added to
            delay at the nominal switching point (ramp-crossing model).
        charge_sharing_kick: Slow-regime delay penalty as a fraction of
            the stage RC delay.
        interaction_kick: Cross-stage (cell-cell / cell-wire, ref [8])
            regime penalty as a fraction of the total arc delay; only
            multi-stage arcs are affected.
    """

    corner: ProcessCorner
    variation: VariationModel = field(default_factory=VariationModel)
    slew_sensitivity: float = 0.45
    charge_sharing_kick: float = 0.60
    interaction_kick: float = 0.22

    # ------------------------------------------------------------------
    def simulate_arc(
        self,
        topology: ArcTopology,
        slew: float,
        load: float,
        n_samples: int,
        *,
        rng: np.random.Generator | int | None = None,
        use_lhs: bool = True,
    ) -> ArcSimResult:
        """Monte-Carlo simulate one arc at one slew/load condition.

        Args:
            topology: Arc electrical structure.
            slew: Input transition time in ns.
            load: Output load capacitance in pF.
            n_samples: Monte-Carlo population (paper: 50k via LHS).
            rng: Seed or generator.
            use_lhs: Latin-hypercube stratification (paper's scheme).

        Returns:
            Per-sample delays and transitions plus nominal values.

        Raises:
            CharacterizationError: For non-physical conditions.
        """
        if slew <= 0.0 or load < 0.0:
            raise CharacterizationError(
                f"invalid condition slew={slew}, load={load}"
            )
        if n_samples < 1:
            raise CharacterizationError(
                f"n_samples must be >= 1, got {n_samples}"
            )
        variations = self.variation.sample(
            n_samples,
            topology.width_factors(),
            rng=rng,
            use_lhs=use_lhs,
        )
        delay, transition = self._propagate(
            topology, slew, load, variations
        )
        nominal_delay, nominal_transition = self._nominal(
            topology, slew, load
        )
        return ArcSimResult(
            delay=delay,
            transition=transition,
            nominal_delay=nominal_delay,
            nominal_transition=nominal_transition,
        )

    def _nominal(
        self, topology: ArcTopology, slew: float, load: float
    ) -> tuple[float, float]:
        """Variation-free evaluation through the same code path."""
        zeros = TransistorVariations(
            np.zeros((1, topology.n_transistors)),
            np.zeros((1, topology.n_transistors)),
            np.zeros((1, topology.n_transistors)),
        )
        delay, transition = self._propagate(topology, slew, load, zeros)
        return float(delay[0]), float(transition[0])

    # ------------------------------------------------------------------
    def _propagate(
        self,
        topology: ArcTopology,
        slew: float,
        load: float,
        variations: TransistorVariations,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Chain the stages; each stage consumes the previous slew."""
        n_samples = variations.n_samples
        total_delay = np.zeros(n_samples)
        stage_slew = np.full(n_samples, slew)
        offset = 0
        for index, stage in enumerate(topology.stages):
            count = stage.n_transistors
            stage_vars = TransistorVariations(
                variations.dvth[:, offset : offset + count],
                variations.dlength[:, offset : offset + count],
                variations.dmobility[:, offset : offset + count],
            )
            offset += count
            last = index == len(topology.stages) - 1
            stage_load = (
                load
                if last
                else topology.stages[index + 1].input_capacitance()
            )
            delay, out_slew = self._stage_delay(
                stage, stage_slew, stage_load, stage_vars
            )
            total_delay = total_delay + delay
            stage_slew = out_slew
        if len(topology.stages) >= 2 and topology.n_transistors >= 2:
            extra = self._stage_interaction(
                topology, slew, load, variations, total_delay
            )
            total_delay = total_delay + extra
            stage_slew = stage_slew + 0.9 * extra
        return total_delay, stage_slew

    def _stage_interaction(
        self,
        topology: ArcTopology,
        slew: float,
        load: float,
        variations: TransistorVariations,
        total_delay: np.ndarray,
    ) -> np.ndarray:
        """Cross-stage regime penalty (cell interaction, ref [8]).

        In multi-stage arcs the hand-off between stages has two
        regimes: the second stage either begins switching while the
        first output is still slewing, or after it has settled.  The
        regime is decided by the competition between the driving
        stage's last device and the receiving stage's first device —
        another pair of "confronting variations" — with a slew/load
        dependent offset.  The penalty scales with the arc delay, the
        same normalisation as the in-stage mechanism.
        """
        first = variations.dvth[:, 0]
        last = variations.dvth[:, -1]
        widths = topology.width_factors()
        sigma = max(
            self.variation.vth_sigma(float(widths[0])),
            self.variation.vth_sigma(float(widths[-1])),
            1e-9,
        )
        phase = topology.stages[0].regime_phase
        imbalance = (
            math.log(max(slew, 1e-6) / max(load, 1e-6)) / 6.0 - phase
        )
        competition = (last - first) / (math.sqrt(2.0) * sigma) + (
            2.0 * imbalance
        )
        return np.where(
            competition > 0.0,
            self.interaction_kick * total_delay,
            0.0,
        )

    def _stage_delay(
        self,
        stage: Stage,
        slew: np.ndarray,
        load: float,
        variations: TransistorVariations,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-sample delay/output-slew of one stage.

        The model:
            R_path  = sum of series device resistances
            R_drive = parallel combination over conduction paths
            t_rc    = ln2 * R_drive * (C_load + C_par)
            t_ramp  = slew_sens * slew * (1 + vth shift of path devices)
            t_cs    = charge-sharing kick, regime-dependent
        """
        resistance = self._drive_resistance(stage, variations)
        total_cap = load + stage.parasitic_cap
        t_rc = _LN2 * resistance * total_cap

        # Input-ramp crossing: the stage reacts when the ramp passes
        # its (variation-shifted) switching threshold.
        first_path = stage.paths[0]
        shift = np.zeros(variations.n_samples)
        # The first path occupies the leading columns (path-major order).
        for column, transistor in enumerate(first_path):
            shift = shift + transistor.switching_threshold_shift(
                variations.dvth[:, column], self.corner
            )
        shift = shift / max(len(first_path), 1)
        t_ramp = self.slew_sensitivity * slew * (1.0 + 2.0 * shift)

        delay = t_rc + t_ramp
        out_slew = _SLEW_FACTOR * resistance * total_cap

        if stage.has_charge_sharing:
            extra_delay, extra_slew = self._charge_sharing(
                stage, slew, load, variations, t_rc
            )
            delay = delay + extra_delay
            out_slew = out_slew + extra_slew
        return delay, out_slew

    def _drive_resistance(
        self, stage: Stage, variations: TransistorVariations
    ) -> np.ndarray:
        """Parallel-of-series effective resistance, per sample."""
        conductance = np.zeros(variations.n_samples)
        column = 0
        for path in stage.paths:
            path_resistance = np.zeros(variations.n_samples)
            for transistor in path:
                path_resistance = (
                    path_resistance
                    + transistor.effective_resistance(
                        variations.dvth[:, column],
                        self.corner,
                        dlength=variations.dlength[:, column],
                        dmobility=variations.dmobility[:, column],
                    )
                )
                column += 1
            conductance = conductance + 1.0 / path_resistance
        return 1.0 / conductance

    def _charge_sharing(
        self,
        stage: Stage,
        slew: np.ndarray,
        load: float,
        variations: TransistorVariations,
        t_rc: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Regime-switching charge-sharing penalty (paper §4.3).

        The internal node of a stack is either pre-discharged (fast
        regime) or pre-charged (slow regime) when the input switches.
        Which regime a sample takes is decided by the competition
        variable

            u = dVth(top) - dVth(bottom) + regime_gain * imbalance

        where ``imbalance = log(slew_n / load_n) + phase`` measures how
        far the condition sits from the confrontation diagonal.  Around
        the diagonal P(slow) ~ 0.5 — maximal bimodality; off it one
        regime dominates and the distribution collapses to one peak.

        In the slow regime the stack spends its initial transient at
        reduced overdrive (it must first sweep the internal-node
        charge), which acts as a *relative* resistance penalty: the
        extra delay scales with the stage RC time itself, so the
        mixture separation stays visible across the whole slew-load
        grid — matching the Fig. 4 observation that multi-Gaussian
        behaviour recurs along diagonals at every magnitude.
        """
        # Competition between the top and bottom devices of the
        # deepest path (the two "confronting" variations).
        deepest = max(stage.paths, key=len)
        start = 0
        for path in stage.paths:
            if path is deepest:
                break
            start += len(path)
        top = variations.dvth[:, start]
        bottom = variations.dvth[:, start + len(deepest) - 1]
        sigma = max(
            self.variation.vth_sigma(deepest[0].width_factor), 1e-9
        )
        mean_slew = float(np.mean(slew))
        imbalance = (
            math.log(max(mean_slew, 1e-6) / max(load, 1e-6))
            / 6.0  # normalise the decade span of the 8x8 grid
            + stage.regime_phase
        )
        competition = (top - bottom) / (
            math.sqrt(2.0) * sigma
        ) + stage.regime_gain * imbalance
        slow_regime = competition > 0.0

        # Relative kick, mildly load-dependent (the internal node is a
        # bigger fraction of the charge budget at light loads) and with
        # its own mismatch-driven spread so the slow peak is not a
        # rigid translate of the fast one.
        cap_ratio = stage.internal_cap / (
            stage.internal_cap + 0.15 * (load + stage.parasitic_cap)
        )
        kick_fraction = self.charge_sharing_kick * (
            0.55 + 0.45 * cap_ratio
        )
        spread = 1.0 + 0.25 * (bottom / sigma) * 0.2
        kick = kick_fraction * t_rc * spread
        extra_delay = np.where(slow_regime, kick, 0.0)
        extra_slew = np.where(slow_regime, 1.2 * kick, 0.0)
        return extra_delay, extra_slew
