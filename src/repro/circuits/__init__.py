"""Transistor-level Monte-Carlo substrate (the SPICE surrogate).

Replaces the paper's TSMC 22nm + SPICE setup with an analytic,
mechanism-faithful gate timing engine; see DESIGN.md for the
substitution rationale.
"""

from repro.circuits.adaptive import (
    AdaptivePlan,
    AdaptiveResult,
    characterize_adaptive,
    multi_gaussian_indicator,
    plan_adaptive,
)
from repro.circuits.cells import (
    CELL_TYPES,
    CellDefinition,
    build_cell,
    standard_cell_library,
)
from repro.circuits.characterize import (
    PAPER_LOADS,
    PAPER_SLEWS,
    ArcCharacterization,
    CharacterizationConfig,
    characterize_arc,
    characterize_library,
    characterized_arc_to_liberty,
)
from repro.circuits.gate import (
    ArcSimResult,
    ArcTopology,
    GateTimingEngine,
    Stage,
)
from repro.circuits.mosfet import (
    NMOS_22NM,
    PMOS_22NM,
    DeviceParams,
    Transistor,
)
from repro.circuits.process import (
    TT_GLOBAL_LOCAL_MC,
    ProcessCorner,
    TransistorVariations,
    VariationModel,
)
from repro.circuits.scenarios import (
    SCENARIOS,
    Scenario,
    get_scenario,
    scenario_names,
)
from repro.circuits.wire import PiWire, wire_chain

__all__ = [
    "AdaptivePlan",
    "AdaptiveResult",
    "ArcCharacterization",
    "ArcSimResult",
    "ArcTopology",
    "CELL_TYPES",
    "CellDefinition",
    "CharacterizationConfig",
    "DeviceParams",
    "GateTimingEngine",
    "NMOS_22NM",
    "PAPER_LOADS",
    "PAPER_SLEWS",
    "PMOS_22NM",
    "PiWire",
    "ProcessCorner",
    "SCENARIOS",
    "Scenario",
    "Stage",
    "TT_GLOBAL_LOCAL_MC",
    "Transistor",
    "TransistorVariations",
    "VariationModel",
    "build_cell",
    "characterize_adaptive",
    "characterize_arc",
    "characterize_library",
    "characterized_arc_to_liberty",
    "get_scenario",
    "multi_gaussian_indicator",
    "plan_adaptive",
    "scenario_names",
    "standard_cell_library",
    "wire_chain",
]
