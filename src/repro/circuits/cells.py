"""The 25 standard combinational cell types of paper Table 2.

Each cell type is described by the switching topology of its timing
arcs: which conduction stacks drive the output for a given input edge,
how deep they are, whether internal nodes create charge-sharing
regimes, and how compound cells chain stages (AND = NAND + INV ...).

The topologies are electrical caricatures, not layout-accurate
netlists — but they carry exactly the structure the paper's statistics
depend on: stack depth (skew), internal nodes (multi-Gaussian),
pass-gate path competition (XOR/MUX richness) and drive strength
(mismatch scaling via Pelgrom).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.circuits.gate import ArcTopology, Stage
from repro.circuits.mosfet import NMOS_22NM, PMOS_22NM, Transistor
from repro.errors import ParameterError

__all__ = [
    "CellDefinition",
    "CELL_TYPES",
    "build_cell",
    "standard_cell_library",
]

#: The 25 cell types of Table 2, with input counts.
CELL_TYPES: dict[str, int] = {
    "INV": 1,
    "BUFF": 1,
    "NAND2": 2,
    "NAND3": 3,
    "NAND4": 4,
    "AND2": 2,
    "AND3": 3,
    "AND4": 4,
    "NOR2": 2,
    "NOR3": 3,
    "NOR4": 4,
    "OR2": 2,
    "OR3": 3,
    "OR4": 4,
    "XOR2": 2,
    "XOR3": 3,
    "XOR4": 4,
    "XNOR2": 2,
    "XNOR3": 3,
    "XNOR4": 4,
    "MUX2": 3,  # 2 data + 1 select
    "MUX3": 5,  # 3 data + 2 select
    "MUX4": 6,  # 4 data + 2 select
    "FA": 3,  # A, B, CI
    "HA": 2,  # A, B
}

#: PMOS/NMOS width ratio compensating mobility (beta sizing).
_BETA = 1.8
#: Internal-node capacitance per unit stack width (pF).
_INTERNAL_CAP = 0.0012
#: Output parasitic per unit of attached device width (pF).
_PARASITIC_CAP = 0.0005


def _phase(cell: str, pin: str, transition: str, salt: str = "") -> float:
    """Deterministic per-arc regime phase in [-0.6, 0.6].

    Spreads the charge-sharing confrontation diagonals of different
    arcs across the slew-load plane, as observed in Fig. 4.
    """
    digest = hashlib.sha256(
        f"{cell}|{pin}|{transition}|{salt}".encode()
    ).digest()
    return (digest[0] / 255.0 - 0.5) * 1.2


def _nmos(width: float) -> Transistor:
    return Transistor(NMOS_22NM, width)


def _pmos(width: float) -> Transistor:
    return Transistor(PMOS_22NM, width * _BETA)


def _series(device, width: float, depth: int) -> tuple[Transistor, ...]:
    """Series stack; devices widened by depth to equalise drive."""
    scaled = width * (1.0 + 0.5 * (depth - 1))
    return tuple(device(scaled) for _ in range(depth))


@dataclass(frozen=True)
class CellDefinition:
    """One concrete cell (type + drive strength) with its arcs.

    Attributes:
        name: Instance name, e.g. ``"NAND2_X2"``.
        cell_type: Type key into :data:`CELL_TYPES`.
        drive: Drive strength multiplier (X1 = 1.0).
        inputs: Ordered input pin names.
        output: Output pin name.
        function: Boolean function string for the Liberty ``function``
            attribute.
        arcs: ``(input_pin, transition) -> ArcTopology``.
    """

    name: str
    cell_type: str
    drive: float
    inputs: tuple[str, ...]
    output: str
    function: str
    arcs: dict[tuple[str, str], ArcTopology] = field(default_factory=dict)

    @property
    def n_arcs(self) -> int:
        return len(self.arcs)

    def arc(self, input_pin: str, transition: str) -> ArcTopology:
        """Lookup one arc.

        Raises:
            ParameterError: For unknown pin/transition combinations.
        """
        try:
            return self.arcs[(input_pin, transition)]
        except KeyError:
            raise ParameterError(
                f"{self.name} has no arc {input_pin}->{transition}"
            ) from None

    def input_capacitance(self, input_pin: str) -> float:
        """Loading of ``input_pin`` (pF): gate caps of its transistors."""
        for (pin, _), topology in self.arcs.items():
            if pin == input_pin:
                return topology.input_capacitance()
        raise ParameterError(f"{self.name} has no input {input_pin}")


# ----------------------------------------------------------------------
# Stage builders per structural family
# ----------------------------------------------------------------------
def _inv_stage(width: float, transition: str) -> Stage:
    device = _pmos if transition == "rise" else _nmos
    return Stage(
        paths=((device(width),),),
        parasitic_cap=_PARASITIC_CAP * width * (1.0 + _BETA),
    )


def _nand_stage(
    width: float, n: int, transition: str, phase: float
) -> Stage:
    """NAND pull network for one switching input."""
    if transition == "fall":
        # Output falls through the full NMOS series stack.
        return Stage(
            paths=(_series(_nmos, width, n),),
            parasitic_cap=_PARASITIC_CAP * width * n * (1.0 + _BETA),
            internal_cap=_INTERNAL_CAP * width * (n - 1),
            regime_phase=phase,
        )
    # Output rises through the single switching PMOS.
    return Stage(
        paths=((_pmos(width),),),
        parasitic_cap=_PARASITIC_CAP * width * n * (1.0 + _BETA),
    )


def _nor_stage(
    width: float, n: int, transition: str, phase: float
) -> Stage:
    if transition == "rise":
        return Stage(
            paths=(_series(_pmos, width, n),),
            parasitic_cap=_PARASITIC_CAP * width * n * (1.0 + _BETA),
            internal_cap=_INTERNAL_CAP * width * _BETA * (n - 1),
            regime_phase=phase,
        )
    return Stage(
        paths=((_nmos(width),),),
        parasitic_cap=_PARASITIC_CAP * width * n * (1.0 + _BETA),
    )


def _passgate_stage(
    width: float, depth: int, transition: str, phase: float, gain: float
) -> Stage:
    """XOR/XNOR/MUX style stage: two competing conduction paths."""
    primary = _pmos if transition == "rise" else _nmos
    secondary = _nmos if transition == "rise" else _pmos
    return Stage(
        paths=(
            _series(primary, width, depth),
            _series(secondary, width * 0.9, depth),
        ),
        parasitic_cap=_PARASITIC_CAP * width * 2 * depth,
        internal_cap=_INTERNAL_CAP * width * depth,
        regime_phase=phase,
        regime_gain=gain,
    )


# ----------------------------------------------------------------------
# Cell construction
# ----------------------------------------------------------------------
def _input_names(cell_type: str, count: int) -> tuple[str, ...]:
    if cell_type.startswith("MUX"):
        data = int(cell_type[3:])
        selects = 1 if data == 2 else 2
        return tuple(f"D{i}" for i in range(data)) + tuple(
            f"S{i}" for i in range(selects)
        )
    if cell_type == "FA":
        return ("A", "B", "CI")
    if cell_type == "HA":
        return ("A", "B")
    return tuple("ABCD"[:count])


def _function_string(cell_type: str, inputs: tuple[str, ...]) -> str:
    joined_and = "&".join(inputs)
    joined_or = "|".join(inputs)
    if cell_type == "INV":
        return f"!{inputs[0]}"
    if cell_type == "BUFF":
        return inputs[0]
    if cell_type.startswith("NAND"):
        return f"!({joined_and})"
    if cell_type.startswith("AND"):
        return f"({joined_and})"
    if cell_type.startswith("NOR"):
        return f"!({joined_or})"
    if cell_type.startswith("OR"):
        return f"({joined_or})"
    if cell_type.startswith("XNOR"):
        return "!(" + "^".join(inputs) + ")"
    if cell_type.startswith("XOR"):
        return "^".join(inputs)
    if cell_type.startswith("MUX"):
        return "mux(" + ",".join(inputs) + ")"
    if cell_type == "FA":
        return "A^B^CI"
    if cell_type == "HA":
        return "A^B"
    raise ParameterError(f"unknown cell type {cell_type!r}")


def _arc_stages(
    cell_type: str,
    pin: str,
    transition: str,
    width: float,
    n_inputs: int,
) -> tuple[Stage, ...]:
    """Build the stage chain of one arc for a given cell family."""
    phase = _phase(cell_type, pin, transition)
    if cell_type == "INV":
        return (_inv_stage(width, transition),)
    if cell_type == "BUFF":
        inner = "fall" if transition == "rise" else "rise"
        return (
            _inv_stage(width * 0.5, inner),
            _inv_stage(width, transition),
        )
    if cell_type.startswith("NAND"):
        return (_nand_stage(width, n_inputs, transition, phase),)
    if cell_type.startswith("NOR"):
        return (_nor_stage(width, n_inputs, transition, phase),)
    if cell_type.startswith("AND"):
        inner = "fall" if transition == "rise" else "rise"
        return (
            _nand_stage(width * 0.6, n_inputs, inner, phase),
            _inv_stage(width, transition),
        )
    if cell_type.startswith("OR"):
        inner = "fall" if transition == "rise" else "rise"
        return (
            _nor_stage(width * 0.6, n_inputs, inner, phase),
            _inv_stage(width, transition),
        )
    if cell_type.startswith(("XOR", "XNOR")):
        depth = 2 if n_inputs == 2 else 3
        gain = 2.0 if cell_type.startswith("XOR") else 2.8
        return (
            _passgate_stage(width, depth, transition, phase, gain),
        )
    if cell_type.startswith("MUX"):
        # Transmission-gate mux: TG stage into an output inverter.
        inner = "fall" if transition == "rise" else "rise"
        return (
            _passgate_stage(width * 0.7, 2, inner, phase, 2.4),
            _inv_stage(width, transition),
        )
    if cell_type == "FA":
        # Sum = two cascaded XOR-like pass stages.
        return (
            _passgate_stage(width * 0.7, 2, transition, phase, 2.2),
            _passgate_stage(
                width,
                2,
                transition,
                _phase(cell_type, pin, transition, "s2"),
                2.2,
            ),
        )
    if cell_type == "HA":
        inner = "fall" if transition == "rise" else "rise"
        return (
            _passgate_stage(width * 0.7, 2, inner, phase, 2.2),
            _inv_stage(width, transition),
        )
    raise ParameterError(f"unknown cell type {cell_type!r}")


def build_cell(cell_type: str, drive: float = 1.0) -> CellDefinition:
    """Construct one cell definition.

    Args:
        cell_type: A key of :data:`CELL_TYPES`.
        drive: Strength multiplier; the instance is named
            ``{type}_X{drive}``.

    Raises:
        ParameterError: For unknown types or non-positive drives.
    """
    if cell_type not in CELL_TYPES:
        raise ParameterError(
            f"unknown cell type {cell_type!r}; "
            f"known: {', '.join(sorted(CELL_TYPES))}"
        )
    if drive <= 0.0:
        raise ParameterError(f"drive must be positive, got {drive}")
    n_inputs = CELL_TYPES[cell_type]
    inputs = _input_names(cell_type, n_inputs)
    drive_label = f"{drive:g}".replace(".", "P")
    name = f"{cell_type}_X{drive_label}"
    cell = CellDefinition(
        name=name,
        cell_type=cell_type,
        drive=drive,
        inputs=inputs,
        output="Y",
        function=_function_string(cell_type, inputs),
    )
    for pin in inputs:
        for transition in ("rise", "fall"):
            stages = _arc_stages(
                cell_type, pin, transition, drive, n_inputs
            )
            cell.arcs[(pin, transition)] = ArcTopology(
                cell=name,
                input_pin=pin,
                output_transition=transition,
                stages=stages,
            )
    return cell


def standard_cell_library(
    drives: tuple[float, ...] = (1.0, 2.0),
    cell_types: tuple[str, ...] | None = None,
) -> list[CellDefinition]:
    """Build the benchmark library: every type at every drive."""
    names = cell_types if cell_types is not None else tuple(CELL_TYPES)
    return [
        build_cell(cell_type, drive)
        for cell_type in names
        for drive in drives
    ]
