"""Process-variation model and corners.

The paper characterises at the TSMC 22nm ``TTGlobal_LocalMC`` corner:
global (die-to-die) parameters pinned at typical, local (within-die
mismatch) parameters Monte-Carlo sampled.  This module reproduces that
statistical structure with a generic 22nm-class parameter set:

- threshold voltage ``Vth`` mismatch, Pelgrom scaling
  ``sigma(dVth) = A_VT / sqrt(W * L)``;
- effective channel-length variation ``dL``;
- carrier-mobility variation ``dmu`` (relative).

Samples are drawn with Latin hypercube sampling
(:mod:`repro.stats.lhs`), matching the paper's "LHS SPICE Monte Carlo".
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ParameterError
from repro.runtime import telemetry
from repro.stats.lhs import latin_hypercube

__all__ = [
    "ProcessCorner",
    "TransistorVariations",
    "VariationModel",
    "TT_GLOBAL_LOCAL_MC",
]


@dataclass(frozen=True)
class ProcessCorner:
    """Operating corner: supply, temperature and global skew.

    Attributes:
        name: Corner label.
        vdd: Supply voltage in volts (paper: 0.8 V).
        temperature: Junction temperature in Celsius (paper: 25 C).
        global_vth_shift: Die-to-die Vth shift in volts (0 at TT).
        global_length_shift: Die-to-die channel-length shift, relative.
        sample_local: Whether local mismatch is Monte-Carlo sampled.
    """

    name: str
    vdd: float = 0.8
    temperature: float = 25.0
    global_vth_shift: float = 0.0
    global_length_shift: float = 0.0
    sample_local: bool = True

    def __post_init__(self) -> None:
        if self.vdd <= 0.0:
            raise ParameterError(f"vdd must be positive, got {self.vdd}")

    @property
    def thermal_voltage(self) -> float:
        """kT/q in volts at the corner temperature."""
        return 8.617333262e-5 * (self.temperature + 273.15)

    def with_supply(self, vdd: float) -> "ProcessCorner":
        """Same corner at a different supply (near-threshold studies)."""
        return replace(self, vdd=vdd)


#: The paper's characterisation corner.
TT_GLOBAL_LOCAL_MC = ProcessCorner(
    name="TTGlobal_LocalMC", vdd=0.8, temperature=25.0
)


@dataclass(frozen=True)
class TransistorVariations:
    """Sampled local variations for a set of transistors.

    Arrays have shape ``(n_samples, n_transistors)``.

    Attributes:
        dvth: Threshold-voltage deltas in volts.
        dlength: Relative channel-length deltas (dL / L).
        dmobility: Relative mobility deltas (dmu / mu).
    """

    dvth: np.ndarray
    dlength: np.ndarray
    dmobility: np.ndarray

    def __post_init__(self) -> None:
        shapes = {
            self.dvth.shape,
            self.dlength.shape,
            self.dmobility.shape,
        }
        if len(shapes) != 1:
            raise ParameterError(
                f"variation arrays must share a shape, got {shapes}"
            )

    @property
    def n_samples(self) -> int:
        return int(self.dvth.shape[0])

    @property
    def n_transistors(self) -> int:
        return int(self.dvth.shape[1])

    def for_transistor(self, index: int) -> "TransistorVariations":
        """Single-transistor slice, kept 2-D."""
        return TransistorVariations(
            self.dvth[:, index : index + 1],
            self.dlength[:, index : index + 1],
            self.dmobility[:, index : index + 1],
        )


@dataclass(frozen=True)
class VariationModel:
    """Local-mismatch statistics for a 22nm-class process.

    Attributes:
        avt: Pelgrom Vth-mismatch coefficient in V * um (typical
            2-3 mV*um at 22nm).
        sigma_length_rel: Relative sigma of channel length.
        sigma_mobility_rel: Relative sigma of mobility.
        nominal_width: Reference transistor width in um (unit drive).
        nominal_length: Reference channel length in um.
    """

    avt: float = 0.0025
    sigma_length_rel: float = 0.02
    sigma_mobility_rel: float = 0.03
    nominal_width: float = 0.10
    nominal_length: float = 0.022

    def vth_sigma(self, width_factor: float = 1.0) -> float:
        """Pelgrom sigma for a device of ``width_factor`` unit widths."""
        if width_factor <= 0.0:
            raise ParameterError(
                f"width factor must be positive, got {width_factor}"
            )
        area = (self.nominal_width * width_factor) * self.nominal_length
        return self.avt / np.sqrt(area)

    def sample(
        self,
        n_samples: int,
        width_factors: np.ndarray,
        *,
        rng: np.random.Generator | int | None = None,
        use_lhs: bool = True,
    ) -> TransistorVariations:
        """Draw local mismatch for ``len(width_factors)`` transistors.

        Args:
            n_samples: Monte-Carlo population size (paper: 50k).
            width_factors: Drive-strength multiplier per transistor;
                wider devices have smaller Vth mismatch (Pelgrom).
            rng: Seed or generator.
            use_lhs: Stratify with Latin hypercube sampling (the
                paper's scheme); plain iid normals when False.

        Returns:
            :class:`TransistorVariations` of shape
            ``(n_samples, n_transistors)``.
        """
        factors = np.asarray(width_factors, dtype=float)
        if factors.ndim != 1 or factors.size == 0:
            raise ParameterError("width_factors must be a non-empty 1-D array")
        n_transistors = factors.size
        generator = (
            rng
            if isinstance(rng, np.random.Generator)
            else np.random.default_rng(rng)
        )
        n_dims = 3 * n_transistors
        if use_lhs:
            from scipy.special import ndtri

            with telemetry.span(
                "lhs.sample", n=n_samples, dims=n_dims
            ):
                normals = ndtri(
                    latin_hypercube(n_samples, n_dims, rng=generator)
                )
        else:
            normals = generator.standard_normal((n_samples, n_dims))
        vth_sigmas = np.array(
            [self.vth_sigma(factor) for factor in factors]
        )
        dvth = normals[:, :n_transistors] * vth_sigmas
        dlength = (
            normals[:, n_transistors : 2 * n_transistors]
            * self.sigma_length_rel
        )
        dmobility = (
            normals[:, 2 * n_transistors :] * self.sigma_mobility_rel
        )
        return TransistorVariations(dvth, dlength, dmobility)
