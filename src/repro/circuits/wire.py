"""Pi-model RC interconnect (used by the H-tree benchmark, paper §4.4).

Each wire segment is the classic lumped Pi model: half the total
capacitance at each end, the full resistance in between.  Delay
contributions follow the Elmore metric, which is what block-based SSTA
uses for wire stages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError

__all__ = ["PiWire", "wire_chain"]


@dataclass(frozen=True)
class PiWire:
    """One Pi-model wire segment.

    Attributes:
        resistance: Total segment resistance in kOhm.
        capacitance: Total segment capacitance in pF.
    """

    resistance: float
    capacitance: float

    def __post_init__(self) -> None:
        if self.resistance < 0.0 or self.capacitance < 0.0:
            raise ParameterError(
                "wire resistance and capacitance must be non-negative"
            )

    @property
    def near_cap(self) -> float:
        """Capacitance lumped at the driver end (pF)."""
        return 0.5 * self.capacitance

    @property
    def far_cap(self) -> float:
        """Capacitance lumped at the receiver end (pF)."""
        return 0.5 * self.capacitance

    def elmore_delay(self, load_cap: float) -> float:
        """Elmore delay (ns) driving ``load_cap`` pF at the far end."""
        if load_cap < 0.0:
            raise ParameterError("load capacitance must be non-negative")
        return self.resistance * (self.far_cap + load_cap)

    def driver_load(self, load_cap: float) -> float:
        """Total capacitance presented to the driving gate (pF).

        First-order: the full wire capacitance plus the far load
        (resistive shielding ignored, as in library-level STA).
        """
        return self.capacitance + load_cap

    def scaled(self, factor: float) -> "PiWire":
        """Wire of ``factor`` times the length (R and C scale linearly)."""
        if factor <= 0.0:
            raise ParameterError("length factor must be positive")
        return PiWire(self.resistance * factor, self.capacitance * factor)


def wire_chain(segments: list[PiWire], load_cap: float) -> float:
    """Elmore delay (ns) through a chain of Pi segments into a load."""
    total = 0.0
    downstream = load_cap
    for segment in reversed(segments):
        total += segment.elmore_delay(downstream)
        downstream = segment.driver_load(downstream)
    return total
