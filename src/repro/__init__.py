"""LVF2 — statistical timing modelling for yield estimation and speed binning.

Reproduction of Zhou et al., "LVF2: A Statistical Timing Model based on
Gaussian Mixture for Yield Estimation and Speed Binning" (DAC 2024).

Top-level convenience re-exports cover the public API a downstream user
touches first: the timing models, the binning/yield metrics, and the
Liberty reader/writer.  Subsystem detail lives in the subpackages:

- :mod:`repro.stats`    — distributions, moments, EM, LHS
- :mod:`repro.models`   — LVF, LVF2, Norm2, LESN, and friends
- :mod:`repro.binning`  — speed bins, yield, error metrics, pricing
- :mod:`repro.liberty`  — Liberty format parse/write with LVF2 extension
- :mod:`repro.circuits` — transistor-level Monte-Carlo substrate
- :mod:`repro.ssta`     — block-based statistical timing analysis
- :mod:`repro.experiments` — regeneration of every paper table/figure
"""

__version__ = "1.0.0"

from repro.errors import (
    CharacterizationError,
    FittingError,
    LibertyError,
    ParameterError,
    ReproError,
    SSTAError,
)

__all__ = [
    "CharacterizationError",
    "FittingError",
    "LibertyError",
    "ParameterError",
    "ReproError",
    "SSTAError",
    "__version__",
]
