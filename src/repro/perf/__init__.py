"""Performance baselines: record bench timings, compare for regressions.

Two halves, mirroring the record/verify split of the checkpoint and
telemetry subsystems:

- :mod:`repro.perf.record` — run a machine calibration workload and
  assemble a stable-schema (``repro.bench/1``) timing report from the
  ``experiment`` spans a bench run emits (``repro bench --json``);
- :mod:`repro.perf.compare` — compare a current report against a
  committed baseline (``benchmarks/baseline.json``), normalising by
  the calibration ratio so a slower CI runner does not read as a code
  regression (``repro bench compare``).
"""

from repro.perf.compare import (
    DEFAULT_SPEEDUP_GATES,
    ComparisonRow,
    SpeedupRow,
    check_speedups,
    compare_reports,
    load_report,
    render_comparison,
    render_speedups,
)
from repro.perf.record import (
    BENCH_SCHEMA,
    build_report,
    calibrate,
    experiment_timings,
)

__all__ = [
    "BENCH_SCHEMA",
    "DEFAULT_SPEEDUP_GATES",
    "ComparisonRow",
    "SpeedupRow",
    "build_report",
    "calibrate",
    "check_speedups",
    "compare_reports",
    "experiment_timings",
    "load_report",
    "render_comparison",
    "render_speedups",
]
