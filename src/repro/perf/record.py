"""Record one bench run's timings as a stable-schema perf report.

The report exists so CI can hold a perf-regression line without a
dedicated benchmarking fleet: ``repro bench --json`` writes one after
a normal bench run, ``benchmarks/baseline.json`` commits one, and
``repro bench compare`` (:mod:`repro.perf.compare`) judges the pair.

Raw wall-clock numbers are meaningless across machines — a laptop, a
CI runner and a build server disagree by integer factors.  Every
report therefore embeds a **calibration**: the wall time of a fixed,
seeded numpy workload (:func:`calibrate`) measured in the same
process, right before the bench run.  The comparison normalises each
timing by the calibration ratio, so "this runner is 2x slower" cancels
out and what remains is the code's own regression.  The workload mixes
the kernels the suite actually spends time in — dense linear algebra,
transcendental evaluation and sorting — so machine-speed scaling
tracks the suite reasonably, which is all the normalisation needs.

Schema ``repro.bench/1``::

    {
      "schema": "repro.bench/1",
      "created_at": <epoch seconds>,
      "host": {"machine": ..., "python": ..., "numpy": ...},
      "config": {"samples": ..., "workers": ..., "granularity": ...},
      "calibration_s": <seconds>,
      "timings_s": {"fig3": ..., "table1": ..., ..., "total": ...}
    }

``timings_s`` keys are the ``experiment=...`` tags of the runner's
``experiment`` spans plus ``total`` (their sum) — adding an experiment
extends the report without breaking the comparison, which only judges
keys present in both reports.
"""

from __future__ import annotations

import platform
import time
from collections.abc import Iterable

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "BENCH_SCHEMA",
    "build_report",
    "calibrate",
    "experiment_timings",
]

#: Schema tag of every perf report.
BENCH_SCHEMA = "repro.bench/1"

#: Size of the calibration workload's square matrices.
_CAL_DIM = 160

#: Calibration repetitions; the *minimum* is reported (classic
#: microbenchmark practice: the minimum estimates the noise floor).
_CAL_REPS = 5


def calibrate(reps: int = _CAL_REPS) -> float:
    """Time the fixed machine-calibration workload, in seconds.

    The workload is seeded and allocation-stable, so its time varies
    only with machine speed — matmul, eigendecomposition, ``erf``-like
    transcendentals and a sort, roughly the kernel mix of the bench
    suite itself.  Returns the minimum over ``reps`` repetitions.
    """
    if reps < 1:
        raise ParameterError(f"calibration reps must be >= 1, got {reps}")
    rng = np.random.default_rng(0)
    matrix = rng.standard_normal((_CAL_DIM, _CAL_DIM))
    vector = rng.standard_normal(_CAL_DIM * _CAL_DIM)
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        product = matrix @ matrix
        np.linalg.eigvalsh(product @ product.T)
        np.sort(np.tanh(vector) * np.exp(-0.5 * vector * vector))
        best = min(best, time.perf_counter() - start)
    return best


def experiment_timings(records: Iterable[dict]) -> dict[str, float]:
    """Extract per-experiment wall times from emitted trace records.

    Args:
        records: Trace records as emitted by a telemetry session sink
            (dicts with ``type``/``name``/``tags``/``wall``).

    Returns:
        ``experiment tag -> wall seconds`` for every ``experiment``
        span, plus their sum under ``"total"``.  Repeated tags (a
        re-run experiment) accumulate.
    """
    timings: dict[str, float] = {}
    for record in records:
        if record.get("type") != "span":
            continue
        if record.get("name") != "experiment":
            continue
        tag = str(record.get("tags", {}).get("experiment", ""))
        if not tag:
            continue
        timings[tag] = timings.get(tag, 0.0) + float(
            record.get("wall", 0.0)
        )
    timings["total"] = sum(timings.values())
    return timings


def build_report(
    timings: dict[str, float],
    calibration: float,
    *,
    config: dict | None = None,
) -> dict:
    """Assemble one ``repro.bench/1`` report.

    Args:
        timings: Per-experiment wall seconds (``experiment_timings``).
        calibration: :func:`calibrate` result from the same process.
        config: Run configuration worth refusing to compare across
            (sample count, workers, granularity).
    """
    if calibration <= 0.0:
        raise ParameterError(
            f"calibration time must be positive, got {calibration}"
        )
    return {
        "schema": BENCH_SCHEMA,
        "created_at": time.time(),
        "host": {
            "machine": platform.machine(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "config": dict(config or {}),
        "calibration_s": calibration,
        "timings_s": {
            key: float(value) for key, value in sorted(timings.items())
        },
    }
