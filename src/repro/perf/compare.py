"""Judge a current perf report against a committed baseline.

The comparison is calibration-normalised: each report carries the
wall time of the same fixed workload on its machine
(:func:`repro.perf.record.calibrate`), so a timing is first divided
by its report's calibration before ratios are taken.  A CI runner
that is uniformly 2x slower than the machine that recorded the
baseline then compares at ratio 1.0 — only *disproportionate*
slowdowns (the code got slower relative to raw machine speed) count
as regressions.

The gate is deliberately coarse: the bench suite is a smoke-scale
run, not a benchmarking fleet, and calibration normalisation cancels
machine speed but not scheduler noise.  The default threshold
(:data:`DEFAULT_MAX_REGRESSION_PCT`) is wide enough that CI only
fails on the regressions worth failing on — an accidental
quadratic loop, a dropped cache — not on a noisy neighbour.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import ParameterError
from repro.perf.record import BENCH_SCHEMA

__all__ = [
    "DEFAULT_MAX_REGRESSION_PCT",
    "DEFAULT_SPEEDUP_GATES",
    "ComparisonRow",
    "SpeedupRow",
    "check_speedups",
    "compare_reports",
    "load_report",
    "render_comparison",
    "render_speedups",
]

#: Normalised slowdown (percent) above which an experiment fails the
#: gate.  Wide by design — see the module docstring.
DEFAULT_MAX_REGRESSION_PCT = 50.0

#: Timings shorter than this (seconds) are reported but never failed:
#: at sub-100ms scale, interpreter and allocator noise dwarfs any
#: real regression signal.
_MIN_GATED_SECONDS = 0.1

#: Intra-report speedup invariants: ``(fast_key, slow_key,
#: min_ratio)`` — the ``slow_key`` timing must be at least
#: ``min_ratio`` times the ``fast_key`` timing *within one report*.
#: Unlike the baseline comparison, this needs no calibration: both
#: timings come from the same machine and process.  The fit
#: experiment measures 4.6-5.8x at its default grid; the gate floor
#: sits at the smoke scale (24 points x 200 samples), where the
#: batch amortises less, and leaves headroom for scheduler noise.
DEFAULT_SPEEDUP_GATES: tuple[tuple[str, str, float], ...] = (
    ("fit_batch", "fit_serial", 1.5),
)


def load_report(path: str) -> dict:
    """Load and schema-check one ``repro.bench/1`` report file."""
    try:
        with open(path) as handle:
            report = json.load(handle)
    except (OSError, ValueError) as error:
        raise ParameterError(
            f"cannot load perf report {path!r}: {error}"
        ) from error
    if not isinstance(report, dict) or report.get("schema") != BENCH_SCHEMA:
        raise ParameterError(
            f"{path!r} is not a {BENCH_SCHEMA} perf report "
            "(write one with `repro bench --json FILE`)"
        )
    if not report.get("calibration_s"):
        raise ParameterError(
            f"{path!r} has no calibration time; re-record it"
        )
    return report


@dataclass(frozen=True)
class ComparisonRow:
    """One experiment's baseline-vs-current judgement.

    Attributes:
        key: Experiment key (``fig3``, ``table2``, ``total`` ...).
        baseline: Baseline wall seconds (raw, un-normalised).
        current: Current wall seconds (raw).
        ratio: Calibration-normalised current/baseline ratio.
        regression_pct: ``(ratio - 1) * 100``; negative is a speedup.
        gated: Whether this row can fail the gate (long enough to
            carry signal).
        failed: Whether this row exceeded the threshold.
    """

    key: str
    baseline: float
    current: float
    ratio: float
    regression_pct: float
    gated: bool
    failed: bool

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "baseline_s": self.baseline,
            "current_s": self.current,
            "normalized_ratio": self.ratio,
            "regression_pct": self.regression_pct,
            "gated": self.gated,
            "failed": self.failed,
        }


def compare_reports(
    baseline: dict,
    current: dict,
    *,
    max_regression_pct: float = DEFAULT_MAX_REGRESSION_PCT,
) -> tuple[ComparisonRow, ...]:
    """Compare two perf reports key by key.

    Only keys present in both reports are judged — a new experiment
    in the current report is ignored until the baseline is
    re-recorded.  The reports must agree on their run configuration
    (sample counts etc.); comparing a 2k-sample run against a
    50k-sample baseline would be noise dressed as signal.

    Raises:
        ParameterError: On config mismatch, a missing shared key set,
            or a non-positive threshold.
    """
    if max_regression_pct <= 0.0:
        raise ParameterError(
            f"max regression must be > 0 percent, "
            f"got {max_regression_pct}"
        )
    base_config = baseline.get("config", {})
    current_config = current.get("config", {})
    if base_config != current_config:
        raise ParameterError(
            f"perf reports were recorded with different configs "
            f"(baseline {base_config}, current {current_config}); "
            "re-record the baseline or re-run the bench to match"
        )
    base_timings = baseline.get("timings_s", {})
    current_timings = current.get("timings_s", {})
    shared = sorted(set(base_timings) & set(current_timings))
    if not shared:
        raise ParameterError(
            "perf reports share no timing keys; nothing to compare"
        )
    base_cal = float(baseline["calibration_s"])
    current_cal = float(current["calibration_s"])
    rows = []
    for key in shared:
        base_t = float(base_timings[key])
        current_t = float(current_timings[key])
        if base_t <= 0.0:
            continue
        ratio = (current_t / current_cal) / (base_t / base_cal)
        regression = (ratio - 1.0) * 100.0
        gated = (
            base_t >= _MIN_GATED_SECONDS
            and current_t >= _MIN_GATED_SECONDS
        )
        rows.append(
            ComparisonRow(
                key=key,
                baseline=base_t,
                current=current_t,
                ratio=ratio,
                regression_pct=regression,
                gated=gated,
                failed=gated and regression > max_regression_pct,
            )
        )
    return tuple(rows)


@dataclass(frozen=True)
class SpeedupRow:
    """One intra-report speedup invariant's judgement.

    Attributes:
        fast_key: Timing key expected to be the faster side.
        slow_key: Timing key expected to be the slower side.
        fast: Wall seconds of the fast side.
        slow: Wall seconds of the slow side.
        ratio: ``slow / fast`` — the achieved speedup.
        min_ratio: Required floor for ``ratio``.
        failed: Whether the invariant was violated.
    """

    fast_key: str
    slow_key: str
    fast: float
    slow: float
    ratio: float
    min_ratio: float
    failed: bool

    def to_dict(self) -> dict:
        return {
            "fast_key": self.fast_key,
            "slow_key": self.slow_key,
            "fast_s": self.fast,
            "slow_s": self.slow,
            "speedup": self.ratio,
            "min_speedup": self.min_ratio,
            "failed": self.failed,
        }


def check_speedups(
    report: dict,
    gates: tuple[tuple[str, str, float], ...] = DEFAULT_SPEEDUP_GATES,
) -> tuple[SpeedupRow, ...]:
    """Check intra-report speedup invariants on one perf report.

    Each gate asserts the report's ``slow_key`` timing is at least
    ``min_ratio`` times its ``fast_key`` timing.  Gates whose keys
    the report does not carry are skipped — an old baseline without
    the fit-throughput experiment passes vacuously until re-recorded.

    Raises:
        ParameterError: When a gate's ``min_ratio`` is not positive.
    """
    timings = report.get("timings_s", {})
    rows = []
    for fast_key, slow_key, min_ratio in gates:
        if min_ratio <= 0.0:
            raise ParameterError(
                f"speedup floor must be > 0, got {min_ratio} "
                f"for {fast_key!r} vs {slow_key!r}"
            )
        if fast_key not in timings or slow_key not in timings:
            continue
        fast = float(timings[fast_key])
        slow = float(timings[slow_key])
        if fast <= 0.0:
            continue
        ratio = slow / fast
        rows.append(
            SpeedupRow(
                fast_key=fast_key,
                slow_key=slow_key,
                fast=fast,
                slow=slow,
                ratio=ratio,
                min_ratio=min_ratio,
                failed=ratio < min_ratio,
            )
        )
    return tuple(rows)


def render_speedups(rows: tuple[SpeedupRow, ...]) -> str:
    """Human-readable speedup-invariant table plus verdict line."""
    if not rows:
        return "no speedup invariants applicable to this report"
    lines = []
    for row in rows:
        marker = "  FAIL" if row.failed else ""
        lines.append(
            f"{row.fast_key} vs {row.slow_key}: "
            f"{row.fast:.3f}s vs {row.slow:.3f}s = "
            f"{row.ratio:.2f}x (floor {row.min_ratio:g}x){marker}"
        )
    failed = [f"{row.fast_key}" for row in rows if row.failed]
    if failed:
        lines.append(
            "speedup regression: "
            + ", ".join(failed)
            + " fell below the required floor"
        )
    else:
        lines.append("ok: all speedup invariants hold")
    return "\n".join(lines)


def render_comparison(
    rows: tuple[ComparisonRow, ...], *, max_regression_pct: float
) -> str:
    """Human-readable comparison table plus verdict line."""
    lines = [
        f"{'experiment':<12s} {'baseline':>10s} {'current':>10s} "
        f"{'normalized':>11s} {'change':>9s}"
    ]
    for row in rows:
        marker = ""
        if row.failed:
            marker = "  FAIL"
        elif not row.gated:
            marker = "  (not gated)"
        lines.append(
            f"{row.key:<12s} {row.baseline:>9.3f}s {row.current:>9.3f}s "
            f"{row.ratio:>10.2f}x {row.regression_pct:>+8.1f}%{marker}"
        )
    failed = [row.key for row in rows if row.failed]
    if failed:
        lines.append(
            f"perf regression: {', '.join(failed)} exceed "
            f"+{max_regression_pct:g}% normalised"
        )
    else:
        lines.append(
            f"ok: no experiment regressed past "
            f"+{max_regression_pct:g}% normalised"
        )
    return "\n".join(lines)
