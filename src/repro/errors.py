"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  Subsystems
raise the more specific subclasses below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class FittingError(ReproError):
    """A statistical model could not be fitted to the given samples.

    Raised for degenerate inputs (too few samples, zero variance, NaNs)
    and for optimisation failures that cannot be recovered by fallbacks.
    """


class ConvergenceWarningError(FittingError):
    """An iterative fit (EM, moment matching) failed to converge."""


class ParameterError(ReproError):
    """A distribution or model received invalid parameters."""


class LibertyError(ReproError):
    """Base class for Liberty-format errors."""


class LibertySyntaxError(LibertyError):
    """The Liberty source text could not be tokenised or parsed.

    Carries the 1-based ``line`` and ``column`` of the offending token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class LibertySemanticError(LibertyError):
    """The Liberty AST is well-formed but semantically inconsistent.

    Examples: a LUT whose value count does not match its index lengths,
    an LVF2 group missing a mandatory companion attribute.
    """


class LibertyWriteError(LibertyError):
    """A Liberty export did not land safely on disk.

    Raised when the post-write verification finds a short (truncated)
    file or when flushing the data to stable storage (fsync) fails —
    a truncated ``.lib`` silently poisons every downstream STA run, so
    the writer checks and refuses instead.
    """


class CharacterizationError(ReproError):
    """A Monte-Carlo characterisation run could not be completed."""


class CheckpointError(ReproError):
    """A checkpoint store entry is unreadable or inconsistent.

    Raised when a stored payload cannot be deserialised or its recorded
    request token does not match the request being resumed.
    """


class SSTAError(ReproError):
    """A statistical timing-analysis operation failed.

    Examples: propagating through a graph with cycles, or querying an
    arrival time for a node that was never reached.
    """


class ExperimentError(ReproError):
    """An experiment driver received an inconsistent configuration."""


#: Exit code per error family; the most specific ancestor wins.  Code 1
#: is reserved for unclassified :class:`ReproError` values.  Lives here
#: (not in the CLI) so pool workers can exit with their error family's
#: code and the parent can aggregate them without importing the CLI.
EXIT_CODES: dict[type[ReproError], int] = {
    ParameterError: 2,
    FittingError: 3,
    LibertyError: 4,
    CharacterizationError: 5,
    SSTAError: 6,
    ExperimentError: 7,
    CheckpointError: 8,
}


def exit_code_for(error: ReproError) -> int:
    """Map an error to its family's exit code (1 for the base class)."""
    for klass in type(error).__mro__:
        if klass in EXIT_CODES:
            return EXIT_CODES[klass]
    return 1
