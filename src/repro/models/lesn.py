"""LESN: the log-extended-skew-normal timing model (Jin et al. [7]).

The state-of-the-art *moment-based* model the paper compares against:
``log X`` follows an extended skew-normal, whose extra hidden-truncation
parameter lets the model match the kurtosis of the delay distribution
and thereby sharpen the +/-3 sigma tails.

Two estimators are provided:

- ``method="log"`` (default): match the first four moments of the
  log-samples with an ESN — fast and numerically robust.
- ``method="linear"``: match the first four moments of the delay itself
  using the analytic ESN moment-generating function
  ``E[X^k] = exp(k xi + k^2 omega^2 / 2) * Phi(tau + delta omega k) / Phi(tau)``,
  which is the kurtosis-matching construction of [7].

The accumulation of moment-matching error this fit can introduce is
exactly the effect the paper observes in its path experiment (§4.4,
"the results of LESN did not meet our expectations").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np
from scipy.optimize import least_squares
from scipy.special import ndtr

from repro.errors import FittingError, ParameterError
from repro.models.base import TimingModel, register_model
from repro.stats.extended_skew_normal import ExtendedSkewNormal
from repro.stats.moments import MomentSummary, sample_moments, validate_samples

__all__ = ["LESNModel"]


def _esn_raw_moment(
    xi: float, omega: float, delta: float, tau: float, order: int
) -> float:
    """Raw moment ``E[exp(order * Y)]`` of ``Y ~ ESN(xi, omega, ...)``."""
    return (
        math.exp(order * xi + 0.5 * (order * omega) ** 2)
        * ndtr(tau + delta * omega * order)
        / ndtr(tau)
    )


def _linear_moments(
    xi: float, omega: float, delta: float, tau: float
) -> tuple[float, float, float, float]:
    """Mean/std/skew/excess-kurtosis of ``X = exp(Y)``."""
    raw = [
        _esn_raw_moment(xi, omega, delta, tau, order)
        for order in (1, 2, 3, 4)
    ]
    mean = raw[0]
    variance = raw[1] - mean * mean
    if variance <= 0.0:
        return (mean, 0.0, math.nan, math.nan)
    std = math.sqrt(variance)
    m3 = raw[2] - 3.0 * mean * raw[1] + 2.0 * mean**3
    m4 = (
        raw[3]
        - 4.0 * mean * raw[2]
        + 6.0 * mean * mean * raw[1]
        - 3.0 * mean**4
    )
    return (mean, std, m3 / std**3, m4 / std**4 - 3.0)


@register_model
@dataclass(frozen=True, repr=False)
class LESNModel(TimingModel):
    """Log-extended-skew-normal: ``log X ~ ESN(xi, omega, alpha, tau)``."""

    name = "LESN"

    log_esn: ExtendedSkewNormal
    _moments: MomentSummary = field(init=False, compare=False)

    def __post_init__(self) -> None:
        esn = self.log_esn
        delta = esn.delta
        mean, std, skew, kurt = _linear_moments(
            esn.xi, esn.omega, delta, esn.tau
        )
        if not (std > 0.0 and math.isfinite(std)):
            raise ParameterError(
                "log-ESN parameters give a degenerate linear distribution"
            )
        object.__setattr__(
            self, "_moments", MomentSummary(mean, std, skew, kurt, count=0)
        )

    # ------------------------------------------------------------------
    @classmethod
    def fit(
        cls,
        samples: np.ndarray,
        *,
        method: str = "log",
        **kwargs: Any,
    ) -> "LESNModel":
        """Fit by four-moment matching.

        Args:
            samples: Strictly positive timing samples.
            method: ``"log"`` matches log-domain moments; ``"linear"``
                matches delay-domain moments via the ESN MGF.

        Raises:
            FittingError: If any sample is non-positive (a delay or
                transition time cannot be) or the match diverges.
        """
        data = validate_samples(samples)
        if np.any(data <= 0.0):
            raise FittingError(
                "LESN requires strictly positive samples "
                f"(min = {data.min():.4g})"
            )
        if method == "log":
            log_summary = sample_moments(np.log(data))
            esn = ExtendedSkewNormal.from_moments(*log_summary.as_tuple())
            return cls(esn)
        if method == "linear":
            return cls._fit_linear(data)
        raise ParameterError(
            f"method must be 'log' or 'linear', got {method!r}"
        )

    @classmethod
    def _fit_linear(cls, data: np.ndarray) -> "LESNModel":
        """Kurtosis matching in the delay domain (construction of [7])."""
        return cls.from_linear_moments(
            sample_moments(data), sample_moments(np.log(data)).std
        )

    @classmethod
    def from_linear_moments(
        cls,
        target: MomentSummary,
        log_std_hint: float | None = None,
    ) -> "LESNModel":
        """Build an LESN matching four *delay-domain* moments.

        Used both by the ``method="linear"`` fit and by block-based
        SSTA propagation, where stage cumulants are added analytically
        and the resulting four moments must be re-materialised as an
        LESN — the step whose accumulated matching error the paper
        observes in §4.4.

        Args:
            target: Desired mean/std/skew/kurtosis.  Skewness must be
                positive (a log-domain model has a right tail); callers
                with near-symmetric targets get a near-Gaussian fit.
            log_std_hint: Starting guess for the log-domain sigma.

        Raises:
            FittingError: When the match diverges.
        """
        if target.mean <= 0.0:
            raise FittingError(
                f"LESN needs a positive mean, got {target.mean:.4g}"
            )
        hint = log_std_hint
        if hint is None:
            hint = max(target.std / target.mean, 1e-3)
        log_std = max(hint, 1e-3)

        def residuals(params: np.ndarray) -> np.ndarray:
            omega, atanh_delta, tau = params
            delta = math.tanh(atanh_delta)
            mean, std, skew, kurt = _linear_moments(
                0.0, omega, delta, tau
            )
            if not (
                std > 0.0
                and math.isfinite(skew)
                and math.isfinite(kurt)
            ):
                return np.array([1e6, 1e6, 1e6])
            # Scale-invariant targets: CV, skewness, kurtosis.  The CV
            # residual is weighted heavily: when the triple is jointly
            # unattainable for a log-domain family (skewness below
            # ~3*CV), the compromise must fall on the shape moments,
            # never on the standard deviation — a distribution with
            # the wrong sigma is useless for binning.
            cv_target = target.std / target.mean
            return np.array(
                [
                    50.0 * (std / mean - cv_target) / max(cv_target, 1e-9),
                    skew - target.skewness,
                    kurt - target.kurtosis,
                ]
            )

        starts = [
            np.array([log_std, 0.5, 0.0]),
            np.array([log_std, -0.5, -1.0]),
            np.array([log_std, 1.5, -2.0]),
        ]
        best_x: np.ndarray | None = None
        best_cost = math.inf
        for start in starts:
            result = least_squares(
                residuals,
                x0=start,
                bounds=(
                    np.array([1e-6, -6.0, -12.0]),
                    np.array([5.0, 6.0, 12.0]),
                ),
                xtol=1e-10,
            )
            if result.cost < best_cost:
                best_cost = result.cost
                best_x = result.x
            if best_cost < 1e-10:
                break
        if best_x is None or not math.isfinite(best_cost):
            raise FittingError("linear-domain LESN match diverged")
        omega, atanh_delta, tau = best_x
        delta = math.tanh(atanh_delta)
        alpha = delta / math.sqrt(max(1.0 - delta * delta, 1e-12))
        # Fix the scale via the mean: X = exp(xi) * exp(omega Z_esn).
        mean_unit, _, _, _ = _linear_moments(0.0, omega, delta, tau)
        xi = math.log(target.mean / mean_unit)
        return cls(ExtendedSkewNormal(xi, float(omega), alpha, float(tau)))

    # ------------------------------------------------------------------
    def pdf(self, x: np.ndarray) -> np.ndarray:
        values = np.asarray(x, dtype=float)
        flat = np.atleast_1d(values).astype(float)
        out = np.zeros_like(flat)
        positive = flat > 0.0
        out[positive] = self.log_esn.pdf(np.log(flat[positive])) / flat[
            positive
        ]
        return out[0] if values.ndim == 0 else out.reshape(values.shape)

    def logpdf(self, x: np.ndarray) -> np.ndarray:
        values = np.asarray(x, dtype=float)
        flat = np.atleast_1d(values).astype(float)
        out = np.full_like(flat, -np.inf)
        positive = flat > 0.0
        logs = np.log(flat[positive])
        out[positive] = self.log_esn.logpdf(logs) - logs
        return out[0] if values.ndim == 0 else out.reshape(values.shape)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        values = np.asarray(x, dtype=float)
        flat = np.atleast_1d(values).astype(float)
        out = np.zeros_like(flat)
        positive = flat > 0.0
        out[positive] = np.asarray(
            self.log_esn.cdf(np.log(flat[positive]))
        )
        return out[0] if values.ndim == 0 else out.reshape(values.shape)

    def ppf(self, q: np.ndarray) -> np.ndarray:
        return np.exp(self.log_esn.ppf(q))

    def rvs(
        self, size: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        return np.exp(self.log_esn.rvs(size, rng=rng))

    def moments(self) -> MomentSummary:
        return self._moments

    @property
    def n_parameters(self) -> int:
        return 4
