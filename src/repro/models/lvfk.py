"""LVFk: skew-normal mixtures with more than two components.

Paper §3.3: "Although LVF2 assumes only two Gaussian components, one can
easily extend the library to support more components by following
similar attribute naming conventions."  This module is that extension —
a k-component mixture of skew-normals with the same EM fit, registered
as ``LVF3`` and ``LVF4`` plus a general factory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar

import numpy as np

from repro.errors import ParameterError
from repro.models.base import TimingModel, register_model
from repro.models.lvf import LVFModel
from repro.models.lvf2 import SKEW_NORMAL_FAMILY
from repro.stats.em import EMConfig, fit_mixture_em
from repro.stats.mixtures import Mixture
from repro.stats.moments import MomentSummary

__all__ = ["LVFkModel", "LVF3Model", "LVF4Model", "fit_lvfk"]


@dataclass(frozen=True, repr=False)
class LVFkModel(TimingModel):
    """General k-component skew-normal mixture.

    The fitted component count may be lower than requested when EM
    collapses degenerate components (graceful model-order reduction).
    """

    name: ClassVar[str] = "LVFk"
    #: Requested component count for registered subclasses.
    order: ClassVar[int] = 0

    weights: tuple[float, ...]
    components: tuple[LVFModel, ...]
    _mixture: Mixture = field(init=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.weights) != len(self.components):
            raise ParameterError(
                "weights and components must have equal length"
            )
        object.__setattr__(
            self, "_mixture", Mixture(self.weights, self.components)
        )

    @classmethod
    def fit(
        cls,
        samples: np.ndarray,
        *,
        n_components: int | None = None,
        config: EMConfig | None = None,
        **kwargs: Any,
    ) -> "LVFkModel":
        """EM fit with ``n_components`` skew-normal components."""
        count = n_components or cls.order or 3
        if count < 2:
            raise ParameterError(
                f"LVFk needs at least 2 components, got {count}"
            )
        result = fit_mixture_em(
            samples, SKEW_NORMAL_FAMILY, n_components=count, config=config
        )
        return cls(
            tuple(result.mixture.weights),
            tuple(result.mixture.components),
        )

    @property
    def mixture(self) -> Mixture:
        return self._mixture

    @property
    def n_components(self) -> int:
        return len(self.components)

    def pdf(self, x: np.ndarray) -> np.ndarray:
        return self._mixture.pdf(x)

    def logpdf(self, x: np.ndarray) -> np.ndarray:
        return self._mixture.logpdf(x)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        return self._mixture.cdf(x)

    def ppf(self, q: np.ndarray) -> np.ndarray:
        return self._mixture.ppf(q)

    def rvs(
        self, size: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        return self._mixture.rvs(size, rng=rng)

    def moments(self) -> MomentSummary:
        return self._mixture.moments()

    @property
    def n_parameters(self) -> int:
        # k-1 free weights plus 3 moments per component.
        return (self.n_components - 1) + 3 * self.n_components


@register_model
class LVF3Model(LVFkModel):
    """Three-component skew-normal mixture."""

    name = "LVF3"
    order = 3


@register_model
class LVF4Model(LVFkModel):
    """Four-component skew-normal mixture."""

    name = "LVF4"
    order = 4


def fit_lvfk(
    samples: np.ndarray,
    n_components: int,
    *,
    config: EMConfig | None = None,
) -> LVFkModel:
    """Fit an arbitrary-order skew-normal mixture."""
    return LVFkModel.fit(
        samples, n_components=n_components, config=config
    )
