"""Log-normal and log-skew-normal timing models.

The historical near-threshold models the paper's related work cites:
log-normal (Keller et al. [5]) and log-skew-normal (Balef et al. [6]).
Both are implemented as extension baselines — LESN generalises them by
adding the kurtosis degree of freedom.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np
from scipy.special import ndtr, ndtri

from repro.errors import FittingError, ParameterError
from repro.models.base import TimingModel, register_model
from repro.stats.moments import MomentSummary, sample_moments, validate_samples
from repro.stats.skew_normal import SkewNormal

__all__ = ["LogNormalModel", "LogSkewNormalModel"]


def _require_positive(samples: np.ndarray, model: str) -> np.ndarray:
    data = validate_samples(samples)
    if np.any(data <= 0.0):
        raise FittingError(
            f"{model} requires strictly positive samples "
            f"(min = {data.min():.4g})"
        )
    return data


@register_model
@dataclass(frozen=True, repr=False)
class LogNormalModel(TimingModel):
    """``log X ~ N(mu_log, sigma_log^2)`` (the LN model of [5])."""

    name = "LN"

    mu_log: float
    sigma_log: float

    def __post_init__(self) -> None:
        if not (self.sigma_log > 0.0 and math.isfinite(self.sigma_log)):
            raise ParameterError(
                f"sigma_log must be positive, got {self.sigma_log}"
            )

    @classmethod
    def fit(cls, samples: np.ndarray, **kwargs: Any) -> "LogNormalModel":
        data = _require_positive(samples, cls.name)
        logs = np.log(data)
        sigma = float(logs.std())
        if sigma == 0.0:
            raise FittingError("log-samples have zero variance")
        return cls(float(logs.mean()), sigma)

    def _z(self, x: np.ndarray) -> np.ndarray:
        return (np.log(x) - self.mu_log) / self.sigma_log

    def pdf(self, x: np.ndarray) -> np.ndarray:
        values = np.asarray(x, dtype=float)
        flat = np.atleast_1d(values).astype(float)
        out = np.zeros_like(flat)
        positive = flat > 0.0
        z = self._z(flat[positive])
        out[positive] = np.exp(-0.5 * z * z) / (
            flat[positive] * self.sigma_log * math.sqrt(2.0 * math.pi)
        )
        return out[0] if values.ndim == 0 else out.reshape(values.shape)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        values = np.asarray(x, dtype=float)
        flat = np.atleast_1d(values).astype(float)
        out = np.zeros_like(flat)
        positive = flat > 0.0
        out[positive] = ndtr(self._z(flat[positive]))
        return out[0] if values.ndim == 0 else out.reshape(values.shape)

    def ppf(self, q: np.ndarray) -> np.ndarray:
        quantiles = np.asarray(q, dtype=float)
        if np.any((quantiles < 0.0) | (quantiles > 1.0)):
            raise ParameterError("quantiles must lie in [0, 1]")
        return np.exp(self.mu_log + self.sigma_log * ndtri(quantiles))

    def rvs(
        self, size: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        generator = (
            rng
            if isinstance(rng, np.random.Generator)
            else np.random.default_rng(rng)
        )
        return np.exp(
            generator.normal(self.mu_log, self.sigma_log, size)
        )

    def moments(self) -> MomentSummary:
        ess = math.exp(self.sigma_log**2)
        mean = math.exp(self.mu_log + 0.5 * self.sigma_log**2)
        std = mean * math.sqrt(ess - 1.0)
        skew = (ess + 2.0) * math.sqrt(ess - 1.0)
        kurt = ess**4 + 2.0 * ess**3 + 3.0 * ess**2 - 6.0
        return MomentSummary(mean, std, skew, kurt, count=0)

    @property
    def n_parameters(self) -> int:
        return 2


@register_model
@dataclass(frozen=True, repr=False)
class LogSkewNormalModel(TimingModel):
    """``log X`` skew-normal (the LSN model of [6])."""

    name = "LSN"

    log_sn: SkewNormal
    _moments: MomentSummary = field(init=False, compare=False)

    def __post_init__(self) -> None:
        # Linear-domain moments via the SN moment generating function:
        # E[exp(k Y)] = 2 exp(k xi + k^2 omega^2 / 2) Phi(delta omega k).
        sn = self.log_sn
        delta = sn.alpha / math.sqrt(1.0 + sn.alpha**2)

        def raw(order: int) -> float:
            return (
                2.0
                * math.exp(order * sn.xi + 0.5 * (order * sn.omega) ** 2)
                * ndtr(delta * sn.omega * order)
            )

        r1, r2, r3, r4 = raw(1), raw(2), raw(3), raw(4)
        variance = r2 - r1 * r1
        if variance <= 0.0:
            raise ParameterError("degenerate log-skew-normal parameters")
        std = math.sqrt(variance)
        m3 = r3 - 3.0 * r1 * r2 + 2.0 * r1**3
        m4 = r4 - 4.0 * r1 * r3 + 6.0 * r1 * r1 * r2 - 3.0 * r1**4
        object.__setattr__(
            self,
            "_moments",
            MomentSummary(
                r1, std, m3 / std**3, m4 / std**4 - 3.0, count=0
            ),
        )

    @classmethod
    def fit(
        cls, samples: np.ndarray, **kwargs: Any
    ) -> "LogSkewNormalModel":
        data = _require_positive(samples, cls.name)
        summary = sample_moments(np.log(data))
        return cls(
            SkewNormal.from_moments(
                summary.mean, summary.std, summary.skewness
            )
        )

    def pdf(self, x: np.ndarray) -> np.ndarray:
        values = np.asarray(x, dtype=float)
        flat = np.atleast_1d(values).astype(float)
        out = np.zeros_like(flat)
        positive = flat > 0.0
        out[positive] = self.log_sn.pdf(np.log(flat[positive])) / flat[
            positive
        ]
        return out[0] if values.ndim == 0 else out.reshape(values.shape)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        values = np.asarray(x, dtype=float)
        flat = np.atleast_1d(values).astype(float)
        out = np.zeros_like(flat)
        positive = flat > 0.0
        out[positive] = self.log_sn.cdf(np.log(flat[positive]))
        return out[0] if values.ndim == 0 else out.reshape(values.shape)

    def ppf(self, q: np.ndarray) -> np.ndarray:
        return np.exp(self.log_sn.ppf(q))

    def rvs(
        self, size: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        return np.exp(self.log_sn.rvs(size, rng=rng))

    def moments(self) -> MomentSummary:
        return self._moments

    @property
    def n_parameters(self) -> int:
        return 3
