"""Norm2: two-component Gaussian mixture timing model.

The GMM-based SSTA model of Takahashi et al. [10], used by the paper as
the "mixture but no skewness" comparison point.  Five parameters:
``(lambda, mu1, sigma1, mu2, sigma2)``; fitted with the same EM loop as
LVF2 but with plain-Gaussian components.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ParameterError
from repro.models.base import TimingModel, register_model
from repro.models.gaussian import GaussianModel
from repro.stats.em import ComponentFamily, EMConfig, fit_mixture_em_multi
from repro.stats.mixtures import Mixture
from repro.stats.moments import MomentSummary, weighted_moments_batch

__all__ = ["Norm2Model", "GAUSSIAN_FAMILY"]


def _gaussian_logpdf_batch(
    components: Sequence[GaussianModel], data: np.ndarray
) -> np.ndarray:
    """Row-wise :meth:`GaussianModel.logpdf` over a stacked batch.

    The per-component scalar constants (``math.log(sigma)``) are
    computed with the same ``math`` calls as the serial method; the
    array expression mirrors its term order, so every lane is
    bit-identical to the serial log-density.
    """
    mus = np.array([c.mu for c in components], dtype=float)
    sigmas = np.array([c.sigma for c in components], dtype=float)
    log_sigmas = np.array(
        [math.log(c.sigma) for c in components], dtype=float
    )
    z = (data - mus[:, None]) / sigmas[:, None]
    return (
        -0.5 * z * z
        - log_sigmas[:, None]
        - 0.5 * math.log(2.0 * math.pi)
    )


def _gaussian_fit_weighted_batch(
    data: np.ndarray, weights: np.ndarray
) -> list[GaussianModel | Exception]:
    """Row-wise :meth:`GaussianModel.fit_weighted` over a batch."""
    results: list[GaussianModel | Exception] = []
    for summary in weighted_moments_batch(
        data, weights, errors="capture"
    ):
        if isinstance(summary, Exception):
            results.append(summary)
            continue
        try:
            results.append(GaussianModel(summary.mean, summary.std))
        except Exception as error:  # noqa: BLE001 — mirrors serial raise
            results.append(error)
    return results


#: Component family wiring GaussianModel into the generic EM driver.
GAUSSIAN_FAMILY = ComponentFamily(
    name="normal",
    fit=GaussianModel.fit,
    fit_weighted=GaussianModel.fit_weighted,
    logpdf_batch=_gaussian_logpdf_batch,
    fit_weighted_batch=_gaussian_fit_weighted_batch,
)


@register_model
@dataclass(frozen=True, repr=False)
class Norm2Model(TimingModel):
    """Weighted pair of Gaussians ``(1-lambda) N1 + lambda N2``.

    Attributes:
        weight: Mixing weight ``lambda`` of the second component.
        component1: First (lower-mean) Gaussian.
        component2: Second Gaussian, or ``None`` when the fit collapsed
            to a single component.
    """

    name = "Norm2"

    weight: float
    component1: GaussianModel
    component2: GaussianModel | None = None
    _mixture: Mixture = field(init=False, compare=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.weight <= 1.0:
            raise ParameterError(
                f"weight must lie in [0, 1], got {self.weight}"
            )
        if self.component2 is None and self.weight != 0.0:
            raise ParameterError(
                "weight must be 0 when the second component is absent"
            )
        if self.component2 is None:
            mixture = Mixture((1.0,), (self.component1,))
        else:
            mixture = Mixture(
                (1.0 - self.weight, self.weight),
                (self.component1, self.component2),
            )
        object.__setattr__(self, "_mixture", mixture)

    # ------------------------------------------------------------------
    @classmethod
    def fit(
        cls,
        samples: np.ndarray,
        *,
        config: EMConfig | None = None,
        **kwargs: Any,
    ) -> "Norm2Model":
        """EM fit with k-means + moment initialisation (paper §3.2).

        Multi-start (k-means and concentric seeds), best likelihood
        wins.
        """
        result = fit_mixture_em_multi(
            samples, GAUSSIAN_FAMILY, n_components=2, config=config
        )
        mixture = result.mixture
        if mixture.n_components == 1:
            return cls(0.0, mixture.components[0], None)
        return cls(
            float(mixture.weights[1]),
            mixture.components[0],
            mixture.components[1],
        )

    # ------------------------------------------------------------------
    @property
    def mixture(self) -> Mixture:
        return self._mixture

    @property
    def is_collapsed(self) -> bool:
        """True when the fit degenerated to a single Gaussian."""
        return self.component2 is None or self.weight == 0.0

    def pdf(self, x: np.ndarray) -> np.ndarray:
        return self._mixture.pdf(x)

    def logpdf(self, x: np.ndarray) -> np.ndarray:
        return self._mixture.logpdf(x)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        return self._mixture.cdf(x)

    def ppf(self, q: np.ndarray) -> np.ndarray:
        return self._mixture.ppf(q)

    def rvs(
        self, size: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        return self._mixture.rvs(size, rng=rng)

    def moments(self) -> MomentSummary:
        return self._mixture.moments()

    @property
    def n_parameters(self) -> int:
        return 2 if self.is_collapsed else 5

    def parameters(self) -> tuple[float, float, float, float, float]:
        """The five-tuple ``(lambda, mu1, sigma1, mu2, sigma2)``."""
        second = self.component2 or self.component1
        return (
            self.weight,
            self.component1.mu,
            self.component1.sigma,
            second.mu,
            second.sigma,
        )
