"""Abstract timing-model interface and model registry.

Every statistical timing model compared in the paper — LVF, LVF2,
Norm2, LESN — plus the extension models implements
:class:`TimingModel`: fit from Monte-Carlo samples, then answer
pdf/cdf/ppf/moment queries.  The registry maps the paper's model names
to classes so experiments and the CLI can select models by string.
"""

from __future__ import annotations

import abc
import math
from typing import Any, ClassVar, TypeVar

import numpy as np

from repro.errors import ParameterError
from repro.stats.moments import MomentSummary

__all__ = [
    "TimingModel",
    "available_models",
    "get_model",
    "fit_model",
    "register_model",
]

_MODEL_REGISTRY: dict[str, type["TimingModel"]] = {}

ModelT = TypeVar("ModelT", bound="TimingModel")


def register_model(cls: type[ModelT]) -> type[ModelT]:
    """Class decorator adding ``cls`` to the global model registry."""
    name = cls.name
    if not name:
        raise ParameterError(f"{cls.__name__} must define a model name")
    if name in _MODEL_REGISTRY:
        raise ParameterError(f"model name {name!r} already registered")
    _MODEL_REGISTRY[name] = cls
    return cls


def available_models() -> tuple[str, ...]:
    """Names of all registered models, sorted."""
    return tuple(sorted(_MODEL_REGISTRY))


def get_model(name: str) -> type["TimingModel"]:
    """Look up a model class by registry name.

    Raises:
        ParameterError: For unknown names, listing what is available.
    """
    try:
        return _MODEL_REGISTRY[name]
    except KeyError:
        known = ", ".join(available_models())
        raise ParameterError(
            f"unknown model {name!r}; available: {known}"
        ) from None


def fit_model(name: str, samples: np.ndarray, **kwargs: Any) -> "TimingModel":
    """Convenience: ``get_model(name).fit(samples, **kwargs)``."""
    return get_model(name).fit(samples, **kwargs)


class TimingModel(abc.ABC):
    """A fitted statistical model of one timing distribution.

    Subclasses are immutable once fitted.  The class attribute ``name``
    is the registry key (and the label used in the paper's tables);
    ``n_parameters`` is the number of free scalars, used for BIC-based
    model-order decisions (the "when to fall back to LVF" insight of
    paper §3.4).
    """

    #: Registry key, e.g. ``"LVF2"``.
    name: ClassVar[str] = ""

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    @classmethod
    @abc.abstractmethod
    def fit(cls: type[ModelT], samples: np.ndarray, **kwargs: Any) -> ModelT:
        """Fit the model to 1-D Monte-Carlo samples.

        Raises:
            FittingError: For degenerate inputs.
        """

    # ------------------------------------------------------------------
    # Distribution queries
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def pdf(self, x: np.ndarray) -> np.ndarray:
        """Probability density at ``x``."""

    @abc.abstractmethod
    def cdf(self, x: np.ndarray) -> np.ndarray:
        """Cumulative distribution function at ``x``."""

    @abc.abstractmethod
    def ppf(self, q: np.ndarray) -> np.ndarray:
        """Quantile function at probabilities ``q``."""

    @abc.abstractmethod
    def rvs(
        self, size: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Draw ``size`` samples from the fitted distribution."""

    @abc.abstractmethod
    def moments(self) -> MomentSummary:
        """Analytic moments of the fitted distribution."""

    @property
    @abc.abstractmethod
    def n_parameters(self) -> int:
        """Number of free scalar parameters (for AIC/BIC)."""

    # ------------------------------------------------------------------
    # Defaults shared by all models
    # ------------------------------------------------------------------
    def logpdf(self, x: np.ndarray) -> np.ndarray:
        """Log-density; subclasses override when a stabler form exists."""
        with np.errstate(divide="ignore"):
            return np.log(self.pdf(x))

    def sf(self, x: np.ndarray) -> np.ndarray:
        """Survival function ``1 - cdf``."""
        return 1.0 - self.cdf(x)

    def loglik(self, samples: np.ndarray) -> float:
        """Total log-likelihood of ``samples`` under the model."""
        return float(np.sum(self.logpdf(np.asarray(samples, dtype=float))))

    def aic(self, samples: np.ndarray) -> float:
        """Akaike information criterion (lower is better)."""
        return 2.0 * self.n_parameters - 2.0 * self.loglik(samples)

    def bic(self, samples: np.ndarray) -> float:
        """Bayesian information criterion (lower is better)."""
        n = np.asarray(samples).size
        return self.n_parameters * math.log(n) - 2.0 * self.loglik(samples)

    def sigma_point(self, k: float) -> float:
        """``mean + k * std`` of the fitted distribution."""
        return self.moments().sigma_point(k)

    def probability_between(self, lower: float, upper: float) -> float:
        """``P(lower < X <= upper)`` under the model."""
        if upper < lower:
            raise ParameterError(
                f"upper bound {upper} below lower bound {lower}"
            )
        return float(self.cdf(upper) - self.cdf(lower))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        summary = self.moments()
        return (
            f"<{type(self).__name__} mean={summary.mean:.6g} "
            f"std={summary.std:.6g} skew={summary.skewness:.4g}>"
        )
