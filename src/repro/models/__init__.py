"""Statistical timing models.

The four models compared in the paper's experiments:

- :class:`LVF2Model` — the paper's contribution (2 skew-normals, EM)
- :class:`Norm2Model` — 2 Gaussians, EM (Takahashi et al. [10])
- :class:`LESNModel` — log-extended-skew-normal (Jin et al. [7])
- :class:`LVFModel` — single skew-normal, the industry baseline [4]

plus extension baselines (:class:`GaussianModel`,
:class:`LogNormalModel`, :class:`LogSkewNormalModel`) and the
k-component extension (:class:`LVFkModel`).

Use the registry (:func:`get_model` / :func:`fit_model`) to select
models by the names used in the paper's tables.
"""

from repro.models.base import (
    TimingModel,
    available_models,
    fit_model,
    get_model,
    register_model,
)
from repro.models.gaussian import GaussianModel
from repro.models.lesn import LESNModel
from repro.models.lognormal import LogNormalModel, LogSkewNormalModel
from repro.models.lvf import LVFModel
from repro.models.lvf2 import LVF2Model, SKEW_NORMAL_FAMILY
from repro.models.lvfk import LVF3Model, LVF4Model, LVFkModel, fit_lvfk
from repro.models.norm2 import GAUSSIAN_FAMILY, Norm2Model
from repro.models.uncertainty import (
    BootstrapSummary,
    bootstrap_model,
    lvf2_weight_interval,
)

#: The four models of the paper's experiment section, in table order.
PAPER_MODELS = ("LVF2", "Norm2", "LESN", "LVF")

__all__ = [
    "BootstrapSummary",
    "GAUSSIAN_FAMILY",
    "GaussianModel",
    "LESNModel",
    "LVF2Model",
    "LVF3Model",
    "LVF4Model",
    "LVFModel",
    "LVFkModel",
    "LogNormalModel",
    "LogSkewNormalModel",
    "Norm2Model",
    "PAPER_MODELS",
    "SKEW_NORMAL_FAMILY",
    "TimingModel",
    "available_models",
    "bootstrap_model",
    "fit_lvfk",
    "fit_model",
    "get_model",
    "lvf2_weight_interval",
    "register_model",
]
