"""Bootstrap uncertainty quantification for fitted timing models.

Paper §3.2 chooses point estimation "instead of the Bayesian approach
that derives the posterior distribution of the parameters".  A library
producer still needs error bars — is a fitted ``lambda = 0.07`` a real
second component or sampling noise? — so this module provides the
frequentist counterpart: nonparametric bootstrap over the Monte-Carlo
samples, giving confidence intervals for any scalar functional of the
fitted model (mixture weight, component means, the 3-sigma point, a
bin probability...).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass

import numpy as np

from repro.errors import FittingError, ParameterError
from repro.models.base import TimingModel
from repro.stats.moments import validate_samples

__all__ = ["BootstrapSummary", "bootstrap_model", "lvf2_weight_interval"]


@dataclass(frozen=True)
class BootstrapSummary:
    """Bootstrap distribution of one scalar functional.

    Attributes:
        point: Value of the functional on the full-sample fit.
        lower: Lower confidence bound.
        upper: Upper confidence bound.
        level: Confidence level used (e.g. 0.95).
        draws: The raw bootstrap replicates (for custom analysis).
    """

    point: float
    lower: float
    upper: float
    level: float
    draws: np.ndarray

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.lower <= value <= self.upper


def bootstrap_model(
    samples: np.ndarray,
    model_cls: type[TimingModel],
    functionals: Mapping[str, Callable[[TimingModel], float]],
    *,
    n_boot: int = 200,
    level: float = 0.95,
    rng: np.random.Generator | int | None = 0,
    fit_kwargs: Mapping | None = None,
) -> dict[str, BootstrapSummary]:
    """Bootstrap confidence intervals for model functionals.

    Args:
        samples: The golden Monte-Carlo population.
        model_cls: Model class whose ``fit`` is bootstrapped.
        functionals: Named scalar functionals of the fitted model,
            e.g. ``{"sigma3": lambda m: m.sigma_point(3.0)}``.
        n_boot: Bootstrap replicates.
        level: Two-sided confidence level in (0, 1).
        rng: Seed or generator.
        fit_kwargs: Extra keyword arguments for ``model_cls.fit``.

    Returns:
        One :class:`BootstrapSummary` per functional.  Replicates whose
        fit fails (degenerate resample) are skipped; at least half must
        succeed.

    Raises:
        ParameterError: For an invalid confidence level.
        FittingError: When too many replicates fail.
    """
    if not 0.0 < level < 1.0:
        raise ParameterError(f"level must lie in (0, 1), got {level}")
    data = validate_samples(samples)
    generator = (
        rng
        if isinstance(rng, np.random.Generator)
        else np.random.default_rng(rng)
    )
    kwargs = dict(fit_kwargs or {})
    base_model = model_cls.fit(data, **kwargs)
    points = {
        name: float(functional(base_model))
        for name, functional in functionals.items()
    }
    draws: dict[str, list[float]] = {name: [] for name in functionals}
    failures = 0
    for _ in range(n_boot):
        resample = generator.choice(data, size=data.size, replace=True)
        try:
            model = model_cls.fit(resample, **kwargs)
        except FittingError:
            failures += 1
            continue
        for name, functional in functionals.items():
            draws[name].append(float(functional(model)))
    if failures > n_boot // 2:
        raise FittingError(
            f"bootstrap failed on {failures}/{n_boot} replicates"
        )
    alpha = (1.0 - level) / 2.0
    summaries: dict[str, BootstrapSummary] = {}
    for name in functionals:
        replicates = np.asarray(draws[name])
        summaries[name] = BootstrapSummary(
            point=points[name],
            lower=float(np.quantile(replicates, alpha)),
            upper=float(np.quantile(replicates, 1.0 - alpha)),
            level=level,
            draws=replicates,
        )
    return summaries


def lvf2_weight_interval(
    samples: np.ndarray,
    *,
    n_boot: int = 200,
    level: float = 0.95,
    rng: np.random.Generator | int | None = 0,
) -> BootstrapSummary:
    """Confidence interval for the LVF2 mixing weight ``lambda``.

    The practical question behind the §3.4 "when to fall back to LVF"
    rule: if the interval includes 0 (within resolution), the second
    component is not supported by the data and the plain-LVF entry
    saves library space at no accuracy cost.
    """
    from repro.models.lvf2 import LVF2Model

    return bootstrap_model(
        samples,
        LVF2Model,
        {"weight": lambda model: model.weight},
        n_boot=n_boot,
        level=level,
        rng=rng,
    )["weight"]
