"""The LVF timing model: a single skew-normal (paper §2.2).

LVF is the industry-standard baseline of all the paper's experiments.
It stores the statistical-moment vector ``theta = (mu, sigma, gamma)``
exactly as the Liberty LUTs do (``ocv_mean_shift``, ``ocv_std_dev``,
``ocv_skewness``), and interprets it through the bijection ``g`` as a
skew-normal distribution (Eq. 3).

The sample skewness of heavy-tailed MC data routinely exceeds the SN
attainable bound (|gamma| < 0.9953); like production characterisation
tools, the fit clamps the stored skewness — that clamping is itself one
of the error sources LVF2 removes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.models.base import TimingModel, register_model
from repro.stats.moments import (
    MomentSummary,
    sample_moments,
    weighted_moments,
)
from repro.stats.skew_normal import SkewNormal

__all__ = ["LVFModel"]


@register_model
@dataclass(frozen=True, repr=False)
class LVFModel(TimingModel):
    """Single skew-normal, parameterised by LVF moment triple.

    Attributes:
        mu: LVF mean (``nominal + ocv_mean_shift``).
        sigma: LVF standard deviation (``ocv_std_dev``).
        gamma: LVF skewness *as stored* (``ocv_skewness``); already
            clamped into the SN-attainable range.
        nominal: Nominal (deterministic-corner) value; defaults to the
            mean when a fit has no separate nominal simulation.
    """

    name = "LVF"

    mu: float
    sigma: float
    gamma: float
    nominal: float | None = None
    _sn: SkewNormal = field(init=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_sn", SkewNormal.from_moments(self.mu, self.sigma, self.gamma)
        )
        # Store the attainable (possibly clamped) skewness so that the
        # stored triple always round-trips through Liberty LUTs.
        object.__setattr__(self, "gamma", self._sn.skewness)

    # ------------------------------------------------------------------
    @classmethod
    def fit(cls, samples: np.ndarray, **kwargs: Any) -> "LVFModel":
        """Moment-match a skew-normal to the samples."""
        summary = sample_moments(samples)
        return cls(summary.mean, summary.std, summary.skewness)

    @classmethod
    def fit_weighted(
        cls, samples: np.ndarray, weights: np.ndarray
    ) -> "LVFModel":
        """Weighted moment fit — the LVF2 EM M-step for one component."""
        summary = weighted_moments(samples, weights)
        return cls(summary.mean, summary.std, summary.skewness)

    @classmethod
    def from_skew_normal(
        cls, sn: SkewNormal, nominal: float | None = None
    ) -> "LVFModel":
        """Wrap an existing skew-normal distribution."""
        mean, std, gamma = sn.moments_tuple()
        return cls(mean, std, gamma, nominal=nominal)

    # ------------------------------------------------------------------
    @property
    def skew_normal(self) -> SkewNormal:
        """The underlying SN distribution (direct parameterisation)."""
        return self._sn

    @property
    def mean_shift(self) -> float:
        """``ocv_mean_shift`` value: mean minus nominal."""
        base = self.nominal if self.nominal is not None else self.mu
        return self.mu - base

    def pdf(self, x: np.ndarray) -> np.ndarray:
        return self._sn.pdf(x)

    def logpdf(self, x: np.ndarray) -> np.ndarray:
        return self._sn.logpdf(x)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        return self._sn.cdf(x)

    def ppf(self, q: np.ndarray) -> np.ndarray:
        return self._sn.ppf(q)

    def rvs(
        self, size: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        return self._sn.rvs(size, rng=rng)

    def moments(self) -> MomentSummary:
        return self._sn.moments()

    @property
    def n_parameters(self) -> int:
        return 3

    def theta(self) -> tuple[float, float, float]:
        """The LVF moment vector ``(mu, sigma, gamma)`` (Eq. 2)."""
        return (self.mu, self.sigma, self.gamma)
