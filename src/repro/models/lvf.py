"""The LVF timing model: a single skew-normal (paper §2.2).

LVF is the industry-standard baseline of all the paper's experiments.
It stores the statistical-moment vector ``theta = (mu, sigma, gamma)``
exactly as the Liberty LUTs do (``ocv_mean_shift``, ``ocv_std_dev``,
``ocv_skewness``), and interprets it through the bijection ``g`` as a
skew-normal distribution (Eq. 3).

The sample skewness of heavy-tailed MC data routinely exceeds the SN
attainable bound (|gamma| < 0.9953); like production characterisation
tools, the fit clamps the stored skewness — that clamping is itself one
of the error sources LVF2 removes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ParameterError
from repro.models.base import TimingModel, register_model
from repro.stats.moments import (
    MomentSummary,
    sample_moments,
    weighted_moments,
)
from repro.stats.skew_normal import (
    _B,
    _HALF_GAP,
    DEFAULT_SKEW_MARGIN,
    MAX_SKEWNESS,
    SkewNormal,
)

__all__ = ["LVFModel"]


def _lvf_from_moments_fast(
    mean: float, std: float, skew: float
) -> "LVFModel":
    """Construct ``LVFModel(mean, std, skew)`` without dispatch overhead.

    The EM M-step builds one model per component per iteration per grid
    point, so the dataclass ``__init__``/``__post_init__`` machinery —
    two object constructions, a moments->params inversion wrapped in
    three call layers, and a params->moments round trip — is hot.  This
    helper runs the *same scalar expressions in the same order* (the
    inlined bodies of :func:`~repro.stats.skew_normal.moments_to_params`,
    ``SkewNormal.__post_init__`` and the ``skewness`` round trip), so
    the resulting model is bit-identical, field for field, to the
    dataclass path and raises the same :class:`ParameterError` on the
    same inputs.
    """
    # --- moments_to_params, inlined -----------------------------------
    if not (std > 0.0 and math.isfinite(std)):
        raise ParameterError(
            f"std must be positive and finite, got {std}"
        )
    bound = MAX_SKEWNESS - DEFAULT_SKEW_MARGIN
    if skew > bound:
        gamma = float(bound)
    elif skew < -bound:
        gamma = float(-bound)
    else:
        gamma = float(skew)
    magnitude = abs(gamma)
    if magnitude < 1e-14:
        xi, omega, alpha = float(mean), float(std), 0.0
    else:
        ratio = magnitude ** (2.0 / 3.0)
        abs_delta = math.sqrt(
            (math.pi / 2.0) * ratio / (ratio + _HALF_GAP)
        )
        delta = math.copysign(min(abs_delta, 1.0 - 1e-12), gamma)
        if not -1.0 < delta < 1.0:
            raise ParameterError(
                f"delta must lie in (-1, 1), got {delta}"
            )
        alpha = delta / math.sqrt(1.0 - delta * delta)
        omega = std / math.sqrt(1.0 - (_B * delta) ** 2)
        xi = mean - omega * delta * _B
        xi, omega, alpha = float(xi), float(omega), float(alpha)
    # --- SkewNormal.__post_init__ validation --------------------------
    if not (omega > 0.0 and math.isfinite(omega)):
        raise ParameterError(
            f"omega must be positive and finite, got {omega}"
        )
    if not (math.isfinite(xi) and math.isfinite(alpha)):
        raise ParameterError("xi and alpha must be finite")
    # --- stored skewness: params_to_moments gamma term ----------------
    delta_back = alpha / math.sqrt(1.0 + alpha * alpha)
    centered = delta_back * _B
    stored_gamma = float(
        0.5
        * (4.0 - math.pi)
        * centered**3
        / (1.0 - centered**2) ** 1.5
    )
    sn = SkewNormal.__new__(SkewNormal)
    object.__setattr__(sn, "xi", xi)
    object.__setattr__(sn, "omega", omega)
    object.__setattr__(sn, "alpha", alpha)
    model = LVFModel.__new__(LVFModel)
    object.__setattr__(model, "mu", mean)
    object.__setattr__(model, "sigma", std)
    object.__setattr__(model, "gamma", stored_gamma)
    object.__setattr__(model, "nominal", None)
    object.__setattr__(model, "_sn", sn)
    return model


@register_model
@dataclass(frozen=True, repr=False)
class LVFModel(TimingModel):
    """Single skew-normal, parameterised by LVF moment triple.

    Attributes:
        mu: LVF mean (``nominal + ocv_mean_shift``).
        sigma: LVF standard deviation (``ocv_std_dev``).
        gamma: LVF skewness *as stored* (``ocv_skewness``); already
            clamped into the SN-attainable range.
        nominal: Nominal (deterministic-corner) value; defaults to the
            mean when a fit has no separate nominal simulation.
    """

    name = "LVF"

    mu: float
    sigma: float
    gamma: float
    nominal: float | None = None
    _sn: SkewNormal = field(init=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_sn", SkewNormal.from_moments(self.mu, self.sigma, self.gamma)
        )
        # Store the attainable (possibly clamped) skewness so that the
        # stored triple always round-trips through Liberty LUTs.
        object.__setattr__(self, "gamma", self._sn.skewness)

    # ------------------------------------------------------------------
    @classmethod
    def fit(cls, samples: np.ndarray, **kwargs: Any) -> "LVFModel":
        """Moment-match a skew-normal to the samples."""
        summary = sample_moments(samples)
        if cls is LVFModel:
            return _lvf_from_moments_fast(
                summary.mean, summary.std, summary.skewness
            )
        return cls(summary.mean, summary.std, summary.skewness)

    @classmethod
    def fit_weighted(
        cls, samples: np.ndarray, weights: np.ndarray
    ) -> "LVFModel":
        """Weighted moment fit — the LVF2 EM M-step for one component."""
        summary = weighted_moments(samples, weights)
        if cls is LVFModel:
            return _lvf_from_moments_fast(
                summary.mean, summary.std, summary.skewness
            )
        return cls(summary.mean, summary.std, summary.skewness)

    @classmethod
    def from_skew_normal(
        cls, sn: SkewNormal, nominal: float | None = None
    ) -> "LVFModel":
        """Wrap an existing skew-normal distribution."""
        mean, std, gamma = sn.moments_tuple()
        return cls(mean, std, gamma, nominal=nominal)

    # ------------------------------------------------------------------
    @property
    def skew_normal(self) -> SkewNormal:
        """The underlying SN distribution (direct parameterisation)."""
        return self._sn

    @property
    def mean_shift(self) -> float:
        """``ocv_mean_shift`` value: mean minus nominal."""
        base = self.nominal if self.nominal is not None else self.mu
        return self.mu - base

    def pdf(self, x: np.ndarray) -> np.ndarray:
        return self._sn.pdf(x)

    def logpdf(self, x: np.ndarray) -> np.ndarray:
        return self._sn.logpdf(x)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        return self._sn.cdf(x)

    def ppf(self, q: np.ndarray) -> np.ndarray:
        return self._sn.ppf(q)

    def rvs(
        self, size: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        return self._sn.rvs(size, rng=rng)

    def moments(self) -> MomentSummary:
        return self._sn.moments()

    @property
    def n_parameters(self) -> int:
        return 3

    def theta(self) -> tuple[float, float, float]:
        """The LVF moment vector ``(mu, sigma, gamma)`` (Eq. 2)."""
        return (self.mu, self.sigma, self.gamma)
