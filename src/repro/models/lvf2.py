"""LVF2: the paper's statistical timing model (§3).

A two-component mixture of skew-normals (Eq. 4):

    f(x) = (1 - lambda) * f_SN(x | theta1) + lambda * f_SN(x | theta2)

fitted by EM (Eqs. 5-9) with k-means + method-of-moments
initialisation.  Each component is an :class:`repro.models.lvf.LVFModel`
so the mixture carries exactly the seven Liberty attributes of §3.3:
``(lambda, mu1, sigma1, gamma1, mu2, sigma2, gamma2)``.

Backward compatibility (Eq. 10): when ``lambda == 0`` (or the EM fit
collapses), the model *is* a plain LVF distribution; :meth:`to_lvf`
returns it and the Liberty writer emits only the conventional LVF
attributes for it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np
from scipy.optimize import minimize
from scipy.special import expit, logit

from repro.errors import FittingError, ParameterError
from repro.models.base import TimingModel, register_model
from repro.models.lvf import LVFModel, _lvf_from_moments_fast
from repro.stats.em import (
    ComponentFamily,
    EMConfig,
    EMResult,
    concentric_initial,
    fit_mixture_em,
    fit_mixture_em_batch,
    fit_mixture_em_multi,
)
from repro.stats.mixtures import Mixture
from repro.stats.moments import MomentSummary, weighted_moments_batch
from repro.stats.skew_normal import (
    _B,
    _HALF_GAP,
    DEFAULT_SKEW_MARGIN,
    MAX_SKEWNESS,
    SkewNormal,
)

__all__ = ["LVF2Model", "SKEW_NORMAL_FAMILY"]


class _SNLane:
    """EM-internal stand-in for an intermediate skew-normal component.

    The lockstep E-step only reads the direct parameters
    ``(xi, omega, alpha)``; building a full ``LVFModel`` (two frozen
    dataclasses plus the stored-skewness round trip) for every
    component of every iteration of every grid point is the single
    hottest scalar cost of the batched fit.  A lane carries just the
    moment triple and the direct parameters; ``_sn_realize`` turns it
    into the exact model the serial M-step would have produced once
    its row converges.
    """

    __slots__ = ("mean", "std", "skew", "xi", "omega", "alpha")


def _sn_lane(mean: float, std: float, skew: float) -> _SNLane:
    """Compute a lane via the exact ``moments_to_params`` expressions.

    Token-for-token the first half of
    :func:`repro.models.lvf._lvf_from_moments_fast` (same clamping,
    same validation, same error messages); it stops after the
    ``SkewNormal`` parameter checks instead of building the model
    objects and the stored skewness, which no intermediate iteration
    reads.
    """
    if not (std > 0.0 and math.isfinite(std)):
        raise ParameterError(
            f"std must be positive and finite, got {std}"
        )
    bound = MAX_SKEWNESS - DEFAULT_SKEW_MARGIN
    if skew > bound:
        gamma = float(bound)
    elif skew < -bound:
        gamma = float(-bound)
    else:
        gamma = float(skew)
    magnitude = abs(gamma)
    if magnitude < 1e-14:
        xi, omega, alpha = float(mean), float(std), 0.0
    else:
        ratio = magnitude ** (2.0 / 3.0)
        abs_delta = math.sqrt(
            (math.pi / 2.0) * ratio / (ratio + _HALF_GAP)
        )
        delta = math.copysign(min(abs_delta, 1.0 - 1e-12), gamma)
        if not -1.0 < delta < 1.0:
            raise ParameterError(
                f"delta must lie in (-1, 1), got {delta}"
            )
        alpha = delta / math.sqrt(1.0 - delta * delta)
        omega = std / math.sqrt(1.0 - (_B * delta) ** 2)
        xi = mean - omega * delta * _B
        xi, omega, alpha = float(xi), float(omega), float(alpha)
    if not (omega > 0.0 and math.isfinite(omega)):
        raise ParameterError(
            f"omega must be positive and finite, got {omega}"
        )
    if not (math.isfinite(xi) and math.isfinite(alpha)):
        raise ParameterError("xi and alpha must be finite")
    lane = _SNLane()
    lane.mean = mean
    lane.std = std
    lane.skew = skew
    lane.xi = xi
    lane.omega = omega
    lane.alpha = alpha
    return lane


def _sn_realize(component: Any) -> Any:
    """Turn an :class:`_SNLane` into the serial-identical model."""
    if type(component) is _SNLane:
        return _lvf_from_moments_fast(
            component.mean, component.std, component.skew
        )
    return component


def _sn_logpdf_batch(
    components: "list[LVFModel | _SNLane]", data: np.ndarray
) -> np.ndarray:
    """Row-wise skew-normal log-density over a stacked batch.

    Mirrors :meth:`repro.stats.skew_normal.SkewNormal.logpdf` term for
    term: the per-component scalar constant uses the same
    ``math.log(2.0 / omega)`` call, and the array expression keeps the
    serial association order ``(const + log_phi) + log_ndtr``, so every
    lane is bit-identical to the serial method.  Components may be
    models (warm starts, kept-previous estimates) or :class:`_SNLane`
    stand-ins from the batched M-step, interchangeably.
    """
    from scipy.special import log_ndtr

    params: list[tuple[float, float, float]] = []
    for component in components:
        if type(component) is _SNLane:
            params.append(
                (component.xi, component.omega, component.alpha)
            )
        else:
            # LVFModel wraps its distribution; a bare SkewNormal (a
            # legal serial warm-start component) carries the direct
            # parameters itself.
            sn = getattr(component, "skew_normal", component)
            params.append((sn.xi, sn.omega, sn.alpha))
    xis = np.array([p[0] for p in params], dtype=float)
    omegas = np.array([p[1] for p in params], dtype=float)
    alphas = np.array([p[2] for p in params], dtype=float)
    consts = np.array(
        [math.log(2.0 / p[1]) for p in params], dtype=float
    )
    z = (data - xis[:, None]) / omegas[:, None]
    log_phi = -0.5 * z * z - 0.5 * math.log(2.0 * math.pi)
    return consts[:, None] + log_phi + log_ndtr(alphas[:, None] * z)


def _sn_fit_weighted_batch(
    data: np.ndarray, weights: np.ndarray
) -> "list[_SNLane | Exception]":
    """Row-wise :meth:`LVFModel.fit_weighted` over a batch.

    Returns :class:`_SNLane` stand-ins (realized by
    :func:`_sn_realize` on convergence); the scalar expressions and
    error behaviour per row match the serial ``fit_weighted`` exactly.
    """
    results: "list[_SNLane | Exception]" = []
    for summary in weighted_moments_batch(
        data, weights, errors="capture", raw=True
    ):
        if isinstance(summary, Exception):
            results.append(summary)
            continue
        try:
            results.append(_sn_lane(*summary))
        except Exception as error:  # noqa: BLE001 — mirrors serial raise
            results.append(error)
    return results


#: Component family wiring LVFModel (skew-normal) into the EM driver.
SKEW_NORMAL_FAMILY = ComponentFamily(
    name="skew-normal",
    fit=LVFModel.fit,
    fit_weighted=LVFModel.fit_weighted,
    logpdf_batch=_sn_logpdf_batch,
    fit_weighted_batch=_sn_fit_weighted_batch,
    realize=_sn_realize,
)


@register_model
@dataclass(frozen=True, repr=False)
class LVF2Model(TimingModel):
    """Weighted pair of skew-normals, the LVF2 distribution (Eq. 4).

    Attributes:
        weight: Mixing weight ``lambda`` of the second component
            (``ocv_weight2`` in the Liberty extension).
        component1: First skew-normal as an LVF moment triple.
        component2: Second skew-normal, or ``None`` for a collapsed /
            plain-LVF model (``lambda = 0``, Eq. 10).
        nominal: Optional nominal corner value carried through to the
            Liberty mean-shift attributes.
    """

    name = "LVF2"

    weight: float
    component1: LVFModel
    component2: LVFModel | None = None
    nominal: float | None = None
    _mixture: Mixture = field(init=False, compare=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.weight <= 1.0:
            raise ParameterError(
                f"weight must lie in [0, 1], got {self.weight}"
            )
        if self.component2 is None and self.weight != 0.0:
            raise ParameterError(
                "weight must be 0 when the second component is absent"
            )
        if self.component2 is None:
            mixture = Mixture((1.0,), (self.component1,))
        else:
            mixture = Mixture(
                (1.0 - self.weight, self.weight),
                (self.component1, self.component2),
            )
        object.__setattr__(self, "_mixture", mixture)

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    @classmethod
    def fit(
        cls,
        samples: np.ndarray,
        *,
        config: EMConfig | None = None,
        refine: str = "none",
        **kwargs: Any,
    ) -> "LVF2Model":
        """Fit by EM (paper §3.2).

        Args:
            samples: Golden Monte-Carlo samples.
            config: EM loop settings.
            refine: ``"none"`` for the plain EM (moment-based M-step)
                or ``"mle"`` to follow EM with a direct L-BFGS ascent
                of the full log-likelihood (Eq. 5).

        Returns:
            Fitted model; collapses to ``lambda = 0`` when the data do
            not support two components.
        """
        if refine not in ("none", "mle"):
            raise ParameterError(
                f"refine must be 'none' or 'mle', got {refine!r}"
            )
        # Multi-start EM: k-means and concentric seeds, plus a warm
        # start from the Gaussian-mixture (Norm2) solution — skew-normal
        # mixtures strictly generalise Gaussian ones, so starting on
        # Norm2's basin guarantees LVF2 never loses to it in likelihood.
        extra_initials = []
        norm2_start = cls._norm2_warm_start(samples, config)
        if norm2_start is not None:
            extra_initials.append(norm2_start)
        result = fit_mixture_em_multi(
            samples,
            SKEW_NORMAL_FAMILY,
            n_components=2,
            config=config,
            extra_initials=extra_initials,
        )
        mixture = result.mixture
        if mixture.n_components == 1:
            model = cls(0.0, mixture.components[0], None)
        else:
            model = cls(
                float(mixture.weights[1]),
                mixture.components[0],
                mixture.components[1],
            )
        if refine == "mle" and not model.is_collapsed:
            model = model.refine_mle(samples)
        return model

    @classmethod
    def _norm2_warm_start(
        cls, samples: np.ndarray, config: EMConfig | None
    ) -> Mixture | None:
        """Gaussian-EM solution recast as zero-skew SN components."""
        from repro.models.norm2 import GAUSSIAN_FAMILY

        try:
            gaussian = fit_mixture_em(
                samples, GAUSSIAN_FAMILY, n_components=2, config=config
            )
        except FittingError:
            return None
        if gaussian.mixture.n_components != 2:
            return None
        components = tuple(
            LVFModel(component.mu, component.sigma, 0.0)
            for component in gaussian.mixture.components
        )
        return Mixture(gaussian.mixture.weights, components)

    @classmethod
    def fit_batch(
        cls,
        samples: np.ndarray,
        *,
        config: EMConfig | None = None,
        errors: str = "raise",
    ) -> "list[LVF2Model | Exception]":
        """Fit one LVF2 model per row of a ``(n_points, n_samples)`` stack.

        Bit-identical to looping :meth:`fit` (with ``refine="none"``)
        over the rows: the same multi-start schedule runs as three
        batched EM sweeps — the Norm2 warm start, the k-means start and
        the concentric start — and each row picks the first
        highest-likelihood candidate in the serial candidate order
        (k-means, concentric, warm).  Rows that error in an earlier
        phase skip the later ones, exactly as the serial control flow
        would.

        Args:
            samples: Stacked observations, one grid point per row.
            config: EM settings shared by all rows.
            errors: ``"raise"`` re-raises the first failing row's error
                in row order; ``"capture"`` stores exceptions in their
                row slots so the caller can fall back per point.

        Returns:
            One fitted model (or captured exception) per row.
        """
        from repro.models.norm2 import GAUSSIAN_FAMILY

        if errors not in ("raise", "capture"):
            raise ValueError(f"unknown errors mode: {errors!r}")
        stack = np.asarray(samples, dtype=float)
        if stack.ndim != 2:
            raise FittingError(
                "batched samples must be a 2-D (n_points, n_samples) "
                f"array, got ndim={stack.ndim}"
            )
        stack = np.ascontiguousarray(stack)
        n_points = stack.shape[0]
        results: "list[LVF2Model | Exception | None]" = [None] * n_points

        # Phase 1 — Norm2 warm starts (serial order: computed before
        # the skew-normal multi-start).  FittingError means "no warm
        # start"; anything else fails the row like the serial path.
        warms: list[Mixture | None] = [None] * n_points
        gaussian_results = fit_mixture_em_batch(
            stack,
            GAUSSIAN_FAMILY,
            n_components=2,
            config=config,
            errors="capture",
        )
        for p, gaussian in enumerate(gaussian_results):
            if isinstance(gaussian, FittingError):
                continue
            if isinstance(gaussian, Exception):
                results[p] = gaussian
                continue
            if gaussian.mixture.n_components != 2:
                continue
            try:
                components = tuple(
                    LVFModel(component.mu, component.sigma, 0.0)
                    for component in gaussian.mixture.components
                )
                warms[p] = Mixture(gaussian.mixture.weights, components)
            except Exception as error:  # noqa: BLE001 — serial raise
                results[p] = error

        # Phase 2 — k-means-seeded EM.  An error here aborts the row
        # before the other starts run (fit_mixture_em_multi raises out
        # of its first fit).
        candidates: dict[int, list[EMResult]] = {}
        live = [p for p in range(n_points) if results[p] is None]
        for p, outcome in zip(
            live,
            fit_mixture_em_batch(
                stack[np.asarray(live, dtype=np.intp)],
                SKEW_NORMAL_FAMILY,
                n_components=2,
                config=config,
                errors="capture",
            )
            if live
            else [],
        ):
            if isinstance(outcome, Exception):
                results[p] = outcome
            else:
                candidates[p] = [outcome]

        # Phase 3 — concentric starts.
        conc_initials: dict[int, Mixture] = {}
        for p in [p for p in live if results[p] is None]:
            try:
                concentric = concentric_initial(
                    stack[p], SKEW_NORMAL_FAMILY
                )
            except Exception as error:  # noqa: BLE001 — serial raise
                results[p] = error
                continue
            if concentric is not None:
                conc_initials[p] = concentric
        conc_rows = [p for p in conc_initials if results[p] is None]
        if conc_rows:
            for p, outcome in zip(
                conc_rows,
                fit_mixture_em_batch(
                    stack[np.asarray(conc_rows, dtype=np.intp)],
                    SKEW_NORMAL_FAMILY,
                    n_components=2,
                    config=config,
                    initials=[conc_initials[p] for p in conc_rows],
                    errors="capture",
                ),
            ):
                if isinstance(outcome, Exception):
                    results[p] = outcome
                else:
                    candidates[p].append(outcome)

        # Phase 4 — Norm2 warm starts as extra initials.
        warm_rows = [
            p
            for p in live
            if results[p] is None and warms[p] is not None
        ]
        if warm_rows:
            for p, outcome in zip(
                warm_rows,
                fit_mixture_em_batch(
                    stack[np.asarray(warm_rows, dtype=np.intp)],
                    SKEW_NORMAL_FAMILY,
                    n_components=2,
                    config=config,
                    initials=[warms[p] for p in warm_rows],
                    errors="capture",
                ),
            ):
                if isinstance(outcome, Exception):
                    results[p] = outcome
                else:
                    candidates[p].append(outcome)

        # First-max-wins over the serial candidate order.
        for p in range(n_points):
            if results[p] is not None:
                continue
            best = max(
                candidates[p], key=lambda result: result.loglik
            )
            mixture = best.mixture
            try:
                if mixture.n_components == 1:
                    results[p] = cls(0.0, mixture.components[0], None)
                else:
                    results[p] = cls(
                        float(mixture.weights[1]),
                        mixture.components[0],
                        mixture.components[1],
                    )
            except Exception as error:  # noqa: BLE001 — serial raise
                results[p] = error
        if errors == "raise":
            for outcome in results:
                if isinstance(outcome, Exception):
                    raise outcome
        assert all(outcome is not None for outcome in results)
        return results  # type: ignore[return-value]

    @classmethod
    def from_lvf(cls, lvf: LVFModel) -> "LVF2Model":
        """Eq. 10: interpret a plain LVF triple as LVF2 with lambda=0."""
        return cls(0.0, lvf, None, nominal=lvf.nominal)

    def refine_mle(self, samples: np.ndarray) -> "LVF2Model":
        """Maximise the observed-data log-likelihood directly.

        EM with a moment-based M-step is a conditional-maximisation
        scheme; this optional pass polishes its output with L-BFGS on
        the direct parameterisation ``(logit lambda, xi_i, log omega_i,
        alpha_i)``.  Returns the better of the two fits by likelihood.
        """
        if self.component2 is None:
            return self
        data = np.asarray(samples, dtype=float).ravel()
        sn1 = self.component1.skew_normal
        sn2 = self.component2.skew_normal
        start = np.array(
            [
                logit(min(max(self.weight, 1e-6), 1.0 - 1e-6)),
                sn1.xi,
                math.log(sn1.omega),
                sn1.alpha,
                sn2.xi,
                math.log(sn2.omega),
                sn2.alpha,
            ]
        )

        def negative_loglik(params: np.ndarray) -> float:
            lam = float(expit(params[0]))
            try:
                mix = Mixture(
                    (1.0 - lam, lam),
                    (
                        SkewNormal(
                            params[1], math.exp(params[2]), params[3]
                        ),
                        SkewNormal(
                            params[4], math.exp(params[5]), params[6]
                        ),
                    ),
                )
            except (ParameterError, OverflowError):
                return 1e12
            value = mix.loglik(data)
            return 1e12 if not math.isfinite(value) else -value

        result = minimize(
            negative_loglik, start, method="L-BFGS-B",
            options={"maxiter": 300},
        )
        if not math.isfinite(result.fun) or -result.fun <= self.loglik(data):
            return self
        lam = float(expit(result.x[0]))
        first = LVFModel.from_skew_normal(
            SkewNormal(result.x[1], math.exp(result.x[2]), result.x[3])
        )
        second = LVFModel.from_skew_normal(
            SkewNormal(result.x[4], math.exp(result.x[5]), result.x[6])
        )
        if first.mu > second.mu:
            first, second = second, first
            lam = 1.0 - lam
        return LVF2Model(lam, first, second, nominal=self.nominal)

    def collapse_by_bic(self, samples: np.ndarray) -> TimingModel:
        """Return plain LVF when BIC prefers it (paper §3.4 insight).

        The CLT analysis says LVF2's advantage vanishes for
        near-Gaussian data; a BIC comparison against the 3-parameter
        LVF fit implements the "when to switch back" rule and saves
        library storage.
        """
        lvf = LVFModel.fit(samples)
        if self.is_collapsed or lvf.bic(samples) <= self.bic(samples):
            return lvf
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def mixture(self) -> Mixture:
        return self._mixture

    @property
    def is_collapsed(self) -> bool:
        """True when the model is effectively a plain LVF (Eq. 10)."""
        return self.component2 is None or self.weight == 0.0

    def to_lvf(self) -> LVFModel:
        """Project to the backward-compatible LVF triple.

        For a collapsed model this is exact (Eq. 10); otherwise it is
        the moment-matched single skew-normal of the mixture — what a
        legacy LVF-only tool would effectively see.
        """
        if self.is_collapsed:
            return self.component1
        summary = self.moments()
        return LVFModel(
            summary.mean, summary.std, summary.skewness, nominal=self.nominal
        )

    def pdf(self, x: np.ndarray) -> np.ndarray:
        return self._mixture.pdf(x)

    def logpdf(self, x: np.ndarray) -> np.ndarray:
        return self._mixture.logpdf(x)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        return self._mixture.cdf(x)

    def ppf(self, q: np.ndarray) -> np.ndarray:
        return self._mixture.ppf(q)

    def rvs(
        self, size: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        return self._mixture.rvs(size, rng=rng)

    def moments(self) -> MomentSummary:
        return self._mixture.moments()

    @property
    def n_parameters(self) -> int:
        return 3 if self.is_collapsed else 7

    def parameters(self) -> dict[str, float | None]:
        """The seven LVF2 parameters, keyed by Liberty-style names."""
        second = self.component2
        return {
            "weight2": self.weight,
            "mean1": self.component1.mu,
            "std_dev1": self.component1.sigma,
            "skewness1": self.component1.gamma,
            "mean2": second.mu if second else None,
            "std_dev2": second.sigma if second else None,
            "skewness2": second.gamma if second else None,
        }

    def decomposition(
        self, x: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Weighted component densities (Fig. 3 bottom row).

        Returns ``((1-lambda) f1(x), lambda f2(x))``; the second array
        is zero for a collapsed model.
        """
        x = np.asarray(x, dtype=float)
        first = (1.0 - self.weight) * self.component1.pdf(x)
        if self.component2 is None:
            return first, np.zeros_like(x)
        return first, self.weight * self.component2.pdf(x)
