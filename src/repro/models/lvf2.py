"""LVF2: the paper's statistical timing model (§3).

A two-component mixture of skew-normals (Eq. 4):

    f(x) = (1 - lambda) * f_SN(x | theta1) + lambda * f_SN(x | theta2)

fitted by EM (Eqs. 5-9) with k-means + method-of-moments
initialisation.  Each component is an :class:`repro.models.lvf.LVFModel`
so the mixture carries exactly the seven Liberty attributes of §3.3:
``(lambda, mu1, sigma1, gamma1, mu2, sigma2, gamma2)``.

Backward compatibility (Eq. 10): when ``lambda == 0`` (or the EM fit
collapses), the model *is* a plain LVF distribution; :meth:`to_lvf`
returns it and the Liberty writer emits only the conventional LVF
attributes for it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np
from scipy.optimize import minimize
from scipy.special import expit, logit

from repro.errors import FittingError, ParameterError
from repro.models.base import TimingModel, register_model
from repro.models.lvf import LVFModel
from repro.stats.em import (
    ComponentFamily,
    EMConfig,
    fit_mixture_em,
    fit_mixture_em_multi,
)
from repro.stats.mixtures import Mixture
from repro.stats.moments import MomentSummary
from repro.stats.skew_normal import SkewNormal

__all__ = ["LVF2Model", "SKEW_NORMAL_FAMILY"]

#: Component family wiring LVFModel (skew-normal) into the EM driver.
SKEW_NORMAL_FAMILY = ComponentFamily(
    name="skew-normal",
    fit=LVFModel.fit,
    fit_weighted=LVFModel.fit_weighted,
)


@register_model
@dataclass(frozen=True, repr=False)
class LVF2Model(TimingModel):
    """Weighted pair of skew-normals, the LVF2 distribution (Eq. 4).

    Attributes:
        weight: Mixing weight ``lambda`` of the second component
            (``ocv_weight2`` in the Liberty extension).
        component1: First skew-normal as an LVF moment triple.
        component2: Second skew-normal, or ``None`` for a collapsed /
            plain-LVF model (``lambda = 0``, Eq. 10).
        nominal: Optional nominal corner value carried through to the
            Liberty mean-shift attributes.
    """

    name = "LVF2"

    weight: float
    component1: LVFModel
    component2: LVFModel | None = None
    nominal: float | None = None
    _mixture: Mixture = field(init=False, compare=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.weight <= 1.0:
            raise ParameterError(
                f"weight must lie in [0, 1], got {self.weight}"
            )
        if self.component2 is None and self.weight != 0.0:
            raise ParameterError(
                "weight must be 0 when the second component is absent"
            )
        if self.component2 is None:
            mixture = Mixture((1.0,), (self.component1,))
        else:
            mixture = Mixture(
                (1.0 - self.weight, self.weight),
                (self.component1, self.component2),
            )
        object.__setattr__(self, "_mixture", mixture)

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    @classmethod
    def fit(
        cls,
        samples: np.ndarray,
        *,
        config: EMConfig | None = None,
        refine: str = "none",
        **kwargs: Any,
    ) -> "LVF2Model":
        """Fit by EM (paper §3.2).

        Args:
            samples: Golden Monte-Carlo samples.
            config: EM loop settings.
            refine: ``"none"`` for the plain EM (moment-based M-step)
                or ``"mle"`` to follow EM with a direct L-BFGS ascent
                of the full log-likelihood (Eq. 5).

        Returns:
            Fitted model; collapses to ``lambda = 0`` when the data do
            not support two components.
        """
        if refine not in ("none", "mle"):
            raise ParameterError(
                f"refine must be 'none' or 'mle', got {refine!r}"
            )
        # Multi-start EM: k-means and concentric seeds, plus a warm
        # start from the Gaussian-mixture (Norm2) solution — skew-normal
        # mixtures strictly generalise Gaussian ones, so starting on
        # Norm2's basin guarantees LVF2 never loses to it in likelihood.
        extra_initials = []
        norm2_start = cls._norm2_warm_start(samples, config)
        if norm2_start is not None:
            extra_initials.append(norm2_start)
        result = fit_mixture_em_multi(
            samples,
            SKEW_NORMAL_FAMILY,
            n_components=2,
            config=config,
            extra_initials=extra_initials,
        )
        mixture = result.mixture
        if mixture.n_components == 1:
            model = cls(0.0, mixture.components[0], None)
        else:
            model = cls(
                float(mixture.weights[1]),
                mixture.components[0],
                mixture.components[1],
            )
        if refine == "mle" and not model.is_collapsed:
            model = model.refine_mle(samples)
        return model

    @classmethod
    def _norm2_warm_start(
        cls, samples: np.ndarray, config: EMConfig | None
    ) -> Mixture | None:
        """Gaussian-EM solution recast as zero-skew SN components."""
        from repro.models.norm2 import GAUSSIAN_FAMILY

        try:
            gaussian = fit_mixture_em(
                samples, GAUSSIAN_FAMILY, n_components=2, config=config
            )
        except FittingError:
            return None
        if gaussian.mixture.n_components != 2:
            return None
        components = tuple(
            LVFModel(component.mu, component.sigma, 0.0)
            for component in gaussian.mixture.components
        )
        return Mixture(gaussian.mixture.weights, components)

    @classmethod
    def from_lvf(cls, lvf: LVFModel) -> "LVF2Model":
        """Eq. 10: interpret a plain LVF triple as LVF2 with lambda=0."""
        return cls(0.0, lvf, None, nominal=lvf.nominal)

    def refine_mle(self, samples: np.ndarray) -> "LVF2Model":
        """Maximise the observed-data log-likelihood directly.

        EM with a moment-based M-step is a conditional-maximisation
        scheme; this optional pass polishes its output with L-BFGS on
        the direct parameterisation ``(logit lambda, xi_i, log omega_i,
        alpha_i)``.  Returns the better of the two fits by likelihood.
        """
        if self.component2 is None:
            return self
        data = np.asarray(samples, dtype=float).ravel()
        sn1 = self.component1.skew_normal
        sn2 = self.component2.skew_normal
        start = np.array(
            [
                logit(min(max(self.weight, 1e-6), 1.0 - 1e-6)),
                sn1.xi,
                math.log(sn1.omega),
                sn1.alpha,
                sn2.xi,
                math.log(sn2.omega),
                sn2.alpha,
            ]
        )

        def negative_loglik(params: np.ndarray) -> float:
            lam = float(expit(params[0]))
            try:
                mix = Mixture(
                    (1.0 - lam, lam),
                    (
                        SkewNormal(
                            params[1], math.exp(params[2]), params[3]
                        ),
                        SkewNormal(
                            params[4], math.exp(params[5]), params[6]
                        ),
                    ),
                )
            except (ParameterError, OverflowError):
                return 1e12
            value = mix.loglik(data)
            return 1e12 if not math.isfinite(value) else -value

        result = minimize(
            negative_loglik, start, method="L-BFGS-B",
            options={"maxiter": 300},
        )
        if not math.isfinite(result.fun) or -result.fun <= self.loglik(data):
            return self
        lam = float(expit(result.x[0]))
        first = LVFModel.from_skew_normal(
            SkewNormal(result.x[1], math.exp(result.x[2]), result.x[3])
        )
        second = LVFModel.from_skew_normal(
            SkewNormal(result.x[4], math.exp(result.x[5]), result.x[6])
        )
        if first.mu > second.mu:
            first, second = second, first
            lam = 1.0 - lam
        return LVF2Model(lam, first, second, nominal=self.nominal)

    def collapse_by_bic(self, samples: np.ndarray) -> TimingModel:
        """Return plain LVF when BIC prefers it (paper §3.4 insight).

        The CLT analysis says LVF2's advantage vanishes for
        near-Gaussian data; a BIC comparison against the 3-parameter
        LVF fit implements the "when to switch back" rule and saves
        library storage.
        """
        lvf = LVFModel.fit(samples)
        if self.is_collapsed or lvf.bic(samples) <= self.bic(samples):
            return lvf
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def mixture(self) -> Mixture:
        return self._mixture

    @property
    def is_collapsed(self) -> bool:
        """True when the model is effectively a plain LVF (Eq. 10)."""
        return self.component2 is None or self.weight == 0.0

    def to_lvf(self) -> LVFModel:
        """Project to the backward-compatible LVF triple.

        For a collapsed model this is exact (Eq. 10); otherwise it is
        the moment-matched single skew-normal of the mixture — what a
        legacy LVF-only tool would effectively see.
        """
        if self.is_collapsed:
            return self.component1
        summary = self.moments()
        return LVFModel(
            summary.mean, summary.std, summary.skewness, nominal=self.nominal
        )

    def pdf(self, x: np.ndarray) -> np.ndarray:
        return self._mixture.pdf(x)

    def logpdf(self, x: np.ndarray) -> np.ndarray:
        return self._mixture.logpdf(x)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        return self._mixture.cdf(x)

    def ppf(self, q: np.ndarray) -> np.ndarray:
        return self._mixture.ppf(q)

    def rvs(
        self, size: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        return self._mixture.rvs(size, rng=rng)

    def moments(self) -> MomentSummary:
        return self._mixture.moments()

    @property
    def n_parameters(self) -> int:
        return 3 if self.is_collapsed else 7

    def parameters(self) -> dict[str, float | None]:
        """The seven LVF2 parameters, keyed by Liberty-style names."""
        second = self.component2
        return {
            "weight2": self.weight,
            "mean1": self.component1.mu,
            "std_dev1": self.component1.sigma,
            "skewness1": self.component1.gamma,
            "mean2": second.mu if second else None,
            "std_dev2": second.sigma if second else None,
            "skewness2": second.gamma if second else None,
        }

    def decomposition(
        self, x: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Weighted component densities (Fig. 3 bottom row).

        Returns ``((1-lambda) f1(x), lambda f2(x))``; the second array
        is zero for a collapsed model.
        """
        x = np.asarray(x, dtype=float)
        first = (1.0 - self.weight) * self.component1.pdf(x)
        if self.component2 is None:
            return first, np.zeros_like(x)
        return first, self.weight * self.component2.pdf(x)
