"""Single-Gaussian timing model.

The historical baseline ([2] in the paper): cell delay as a plain
normal distribution.  Kept both as the simplest reference model and as
the component family used by :class:`repro.models.norm2.Norm2Model`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np
from scipy.special import log_ndtr, ndtr, ndtri

from repro.errors import ParameterError
from repro.models.base import TimingModel, register_model
from repro.stats.moments import (
    MomentSummary,
    validate_samples,
    weighted_moments,
)

__all__ = ["GaussianModel"]


@register_model
@dataclass(frozen=True, repr=False)
class GaussianModel(TimingModel):
    """Normal distribution fitted by the first two sample moments."""

    name = "Gaussian"

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if not (self.sigma > 0.0 and math.isfinite(self.sigma)):
            raise ParameterError(
                f"sigma must be positive and finite, got {self.sigma}"
            )

    @classmethod
    def fit(cls, samples: np.ndarray, **kwargs: Any) -> "GaussianModel":
        data = validate_samples(samples)
        sigma = float(data.std())
        if sigma == 0.0:
            from repro.errors import FittingError

            raise FittingError("samples have zero variance")
        return cls(float(data.mean()), sigma)

    @classmethod
    def fit_weighted(
        cls, samples: np.ndarray, weights: np.ndarray
    ) -> "GaussianModel":
        """Weighted fit — the Norm2 EM M-step for one component."""
        summary = weighted_moments(samples, weights)
        return cls(summary.mean, summary.std)

    def _z(self, x: np.ndarray) -> np.ndarray:
        return (np.asarray(x, dtype=float) - self.mu) / self.sigma

    def pdf(self, x: np.ndarray) -> np.ndarray:
        z = self._z(x)
        return np.exp(-0.5 * z * z) / (
            self.sigma * math.sqrt(2.0 * math.pi)
        )

    def logpdf(self, x: np.ndarray) -> np.ndarray:
        z = self._z(x)
        return (
            -0.5 * z * z
            - math.log(self.sigma)
            - 0.5 * math.log(2.0 * math.pi)
        )

    def cdf(self, x: np.ndarray) -> np.ndarray:
        return ndtr(self._z(x))

    def logcdf(self, x: np.ndarray) -> np.ndarray:
        return log_ndtr(self._z(x))

    def ppf(self, q: np.ndarray) -> np.ndarray:
        quantiles = np.asarray(q, dtype=float)
        if np.any((quantiles < 0.0) | (quantiles > 1.0)):
            raise ParameterError("quantiles must lie in [0, 1]")
        return self.mu + self.sigma * ndtri(quantiles)

    def rvs(
        self, size: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        generator = (
            rng
            if isinstance(rng, np.random.Generator)
            else np.random.default_rng(rng)
        )
        return generator.normal(self.mu, self.sigma, size)

    def moments(self) -> MomentSummary:
        return MomentSummary(self.mu, self.sigma, 0.0, 0.0, count=0)

    @property
    def n_parameters(self) -> int:
        return 2
