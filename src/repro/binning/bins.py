"""Speed-bin construction and bin probabilities (paper §2.1).

A binning process with boundaries ``T_1 < T_2 < ... < T_n`` defines
``n + 1`` bins; the probability of bin ``i`` is Eq. (1):

    P(Bin_1)     = P(t < T_1)
    P(Bin_i)     = P(t < T_i) - P(t <= T_{i-1})     2 <= i <= n
    P(Bin_{n+1}) = 1 - P(t <= T_n)

The paper's experiments place the boundaries at the *golden*
``mu +/- {3, 2, 1, 0} sigma`` points, giving eight bins; the same
boundaries are then applied to each fitted model, so bin-probability
error measures pure distribution-shape error.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.errors import ParameterError
from repro.stats.moments import MomentSummary

__all__ = [
    "DistributionLike",
    "BinningScheme",
    "sigma_binning",
    "PAPER_SIGMA_LEVELS",
]

#: The paper's bin boundaries: mu +/- 3, 2, 1 sigma and mu (8 bins).
PAPER_SIGMA_LEVELS = (-3.0, -2.0, -1.0, 0.0, 1.0, 2.0, 3.0)


class DistributionLike(Protocol):
    """Anything exposing a CDF — fitted models and empirical goldens."""

    def cdf(self, x: np.ndarray) -> np.ndarray: ...


@dataclass(frozen=True)
class BinningScheme:
    """An ordered set of speed-bin boundaries.

    Attributes:
        boundaries: Strictly increasing boundary values
            ``(T_1, ..., T_n)``.
    """

    boundaries: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.boundaries) < 1:
            raise ParameterError("need at least one bin boundary")
        diffs = np.diff(self.boundaries)
        if np.any(diffs <= 0.0):
            raise ParameterError(
                f"boundaries must be strictly increasing: {self.boundaries}"
            )

    @property
    def n_bins(self) -> int:
        """Number of bins (boundaries + 1)."""
        return len(self.boundaries) + 1

    def bin_probabilities(self, dist: DistributionLike) -> np.ndarray:
        """Eq. (1): probability mass of each bin under ``dist``.

        Returns:
            Array of length ``n_bins`` summing to 1 (up to the CDF's
            own normalisation error, which is clipped).
        """
        cdf_values = np.asarray(
            dist.cdf(np.asarray(self.boundaries, dtype=float)), dtype=float
        )
        cdf_values = np.clip(cdf_values, 0.0, 1.0)
        padded = np.concatenate(([0.0], cdf_values, [1.0]))
        probabilities = np.diff(padded)
        return np.clip(probabilities, 0.0, 1.0)

    def assign(self, samples: np.ndarray) -> np.ndarray:
        """Bin index (0-based) for each sample — the tester's sort."""
        return np.searchsorted(
            np.asarray(self.boundaries, dtype=float),
            np.asarray(samples, dtype=float),
            side="right",
        )

    def counts(self, samples: np.ndarray) -> np.ndarray:
        """Histogram of samples over the bins."""
        return np.bincount(self.assign(samples), minlength=self.n_bins)

    def usable_range(self) -> tuple[float, float]:
        """``(T_min, T_max)`` — the outermost boundaries (Fig. 2)."""
        return (self.boundaries[0], self.boundaries[-1])


def sigma_binning(
    golden: MomentSummary,
    levels: Sequence[float] = PAPER_SIGMA_LEVELS,
) -> BinningScheme:
    """Build the paper's μ±kσ binning from golden moments.

    Args:
        golden: Moments of the golden (Monte-Carlo) distribution.
        levels: Sigma multipliers, default ``(-3,-2,-1,0,1,2,3)``.

    Returns:
        A :class:`BinningScheme` with ``len(levels) + 1`` bins.
    """
    boundaries = tuple(
        golden.mean + float(level) * golden.std for level in sorted(levels)
    )
    return BinningScheme(boundaries)
