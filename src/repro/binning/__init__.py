"""Speed binning, yield estimation and accuracy metrics (paper §2.1, §4)."""

from repro.binning.bins import (
    PAPER_SIGMA_LEVELS,
    BinningScheme,
    DistributionLike,
    sigma_binning,
)
from repro.binning.metrics import (
    DistributionScore,
    YieldReference,
    binning_error,
    cdf_rmse,
    error_reduction,
    estimated_sigma_yield,
    estimated_yield_error,
    evaluate_distribution,
    evaluate_models,
    geometric_mean,
    sigma_yield,
    yield_error,
)
from repro.binning.pricing import (
    PriceProfile,
    expected_revenue,
    revenue_error,
)

__all__ = [
    "PAPER_SIGMA_LEVELS",
    "BinningScheme",
    "DistributionLike",
    "DistributionScore",
    "PriceProfile",
    "YieldReference",
    "binning_error",
    "cdf_rmse",
    "error_reduction",
    "estimated_sigma_yield",
    "estimated_yield_error",
    "evaluate_distribution",
    "evaluate_models",
    "expected_revenue",
    "geometric_mean",
    "revenue_error",
    "sigma_binning",
    "sigma_yield",
    "yield_error",
]
