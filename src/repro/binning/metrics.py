"""Accuracy metrics: binning error, 3σ yield, CDF RMSE (paper §4).

The paper scores every model against the golden Monte-Carlo samples
with three metrics and normalises them as *error reductions* relative
to the LVF baseline (Eq. 12):

    error_reduction = |baseline - golden| / |result - golden|

so LVF itself always scores 1× and larger is better.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.binning.bins import (
    PAPER_SIGMA_LEVELS,
    BinningScheme,
    DistributionLike,
    sigma_binning,
)
from repro.errors import ParameterError
from repro.stats.empirical import EmpiricalDistribution
from repro.stats.moments import MomentSummary

__all__ = [
    "DistributionScore",
    "YieldReference",
    "binning_error",
    "cdf_rmse",
    "error_reduction",
    "estimated_sigma_yield",
    "estimated_yield_error",
    "evaluate_distribution",
    "evaluate_models",
    "sigma_yield",
    "yield_error",
]

#: Reference types accepted wherever a ``mu + k sigma`` design target
#: is derived: golden samples, or their moment summary directly.
YieldReference = EmpiricalDistribution | MomentSummary


def _reference_summary(reference: YieldReference) -> MomentSummary:
    """Moment summary of a yield reference (samples or summary)."""
    if isinstance(reference, MomentSummary):
        return reference
    moments = getattr(reference, "moments", None)
    if callable(moments):
        return moments()
    raise ParameterError(
        "yield reference must be a MomentSummary or expose .moments(), "
        f"got {type(reference).__name__}"
    )


def binning_error(
    model: DistributionLike,
    golden: EmpiricalDistribution,
    scheme: BinningScheme | None = None,
) -> float:
    """Mean absolute bin-probability error over the paper's 8 bins.

    Args:
        model: Fitted distribution under test.
        golden: Golden Monte-Carlo samples.
        scheme: Bin boundaries; defaults to the golden μ±{1,2,3}σ
            scheme of §4.

    Returns:
        ``mean_i |P_model(Bin_i) - P_golden(Bin_i)|``.
    """
    bins = scheme or sigma_binning(golden.moments())
    model_probs = bins.bin_probabilities(model)
    golden_probs = bins.bin_probabilities(golden)
    return float(np.mean(np.abs(model_probs - golden_probs)))


def sigma_yield(
    dist: DistributionLike,
    golden: YieldReference,
    k: float = 3.0,
    *,
    two_sided: bool = False,
) -> float:
    """Yield at the reference ``mu + k sigma`` design target.

    ``T_max = mu + k * sigma`` of the reference is the target delay
    chips must satisfy (§2.1); the k-sigma yield is ``P(t <= T_max)``
    under ``dist``.  With ``two_sided`` the leakage-limited lower cut
    ``T_min = mu - k sigma`` is applied as well.  ``golden`` may be
    the golden sample set or a bare :class:`MomentSummary`, so design
    targets at arbitrary ``k`` (4–5 sigma included) do not require a
    sample set that can resolve them.
    """
    summary = _reference_summary(golden)
    upper = summary.sigma_point(k)
    value = float(np.asarray(dist.cdf(np.asarray(upper))))
    if two_sided:
        lower = summary.sigma_point(-k)
        value -= float(np.asarray(dist.cdf(np.asarray(lower))))
    return value


def yield_error(
    model: DistributionLike,
    golden: EmpiricalDistribution,
    k: float = 3.0,
    *,
    two_sided: bool = False,
    reference: YieldReference | None = None,
) -> float:
    """Absolute k-sigma yield error of ``model`` vs the golden samples.

    ``reference`` (default: ``golden``) fixes the design target; the
    golden side is read from the empirical CDF, so past ``golden``'s
    tail resolution (``k`` above roughly ``ppf(1 - 1/n)``) this metric
    saturates — use :func:`estimated_yield_error` there.
    """
    ref = golden if reference is None else reference
    return abs(
        sigma_yield(model, ref, k, two_sided=two_sided)
        - sigma_yield(golden, ref, k, two_sided=two_sided)
    )


def estimated_sigma_yield(
    target: object,
    reference: YieldReference,
    k: float = 3.0,
    *,
    engine: str = "adaptive-is",
    budget: int = 8192,
    rng: np.random.Generator | int | None = None,
):
    """Estimator-backed k-sigma yield of ``target``.

    Far-tail variant of :func:`sigma_yield`: instead of evaluating a
    CDF (useless for raw samplers, resolution-capped for empirical
    distributions) it runs a :mod:`repro.yield_est` engine at the
    ``mu + k sigma`` target of ``reference`` and returns the full
    :class:`~repro.yield_est.result.YieldEstimate` — yield is its
    ``yield_fraction``, with standard error and budget accounting
    attached rather than discarded.
    """
    from repro.yield_est import estimate_yield

    threshold = _reference_summary(reference).sigma_point(k)
    return estimate_yield(
        target, threshold, engine=engine, budget=budget, rng=rng
    )


def estimated_yield_error(
    model: object,
    golden: EmpiricalDistribution,
    k: float = 3.0,
    *,
    engine: str = "adaptive-is",
    budget: int = 8192,
    rng: np.random.Generator | int | None = None,
    reference: YieldReference | None = None,
) -> float:
    """Absolute k-sigma yield error with an estimator on the model side.

    The model's tail probability comes from a :mod:`repro.yield_est`
    engine (so ``model`` may be any estimator target, fitted models
    and raw samplers alike); the golden side is still the empirical
    CDF, so beyond ``golden.tail_resolution`` the golden term clamps
    to 0 and this reads as the model's absolute tail mass.
    """
    ref = golden if reference is None else reference
    estimate = estimated_sigma_yield(
        model, ref, k, engine=engine, budget=budget, rng=rng
    )
    golden_failure = 1.0 - sigma_yield(golden, ref, k)
    return abs(estimate.failure_probability - golden_failure)


def cdf_rmse(
    model: DistributionLike,
    golden: EmpiricalDistribution,
    *,
    n_points: int = 256,
    spread: float = 4.0,
) -> float:
    """RMSE between model and empirical CDFs on a μ±spread·σ grid.

    This is the Fig. 4 indicator used to quantify the multi-Gaussian
    phenomenon across the slew-load table.
    """
    grid = golden.grid(n_points=n_points, spread=spread)
    model_cdf = np.asarray(model.cdf(grid), dtype=float)
    golden_cdf = golden.cdf(grid)
    return float(np.sqrt(np.mean((model_cdf - golden_cdf) ** 2)))


def error_reduction(
    baseline_error: float, model_error: float, *, floor: float = 1e-12
) -> float:
    """Eq. (12): ``|baseline - golden| / |result - golden|``.

    Both arguments are already absolute errors versus golden.  A model
    error below ``floor`` is floored to avoid infinite ratios when a
    model nails the golden value to numerical precision.
    """
    if baseline_error < 0.0 or model_error < 0.0:
        raise ParameterError("errors must be non-negative")
    return baseline_error / max(model_error, floor)


@dataclass(frozen=True)
class DistributionScore:
    """All three §4 metrics for one model on one distribution.

    Attributes:
        binning: Mean absolute bin-probability error.
        yield3sigma: Absolute 3σ-yield error.
        rmse: CDF RMSE.
    """

    binning: float
    yield3sigma: float
    rmse: float

    def reductions(self, baseline: "DistributionScore") -> "DistributionScore":
        """Error-reduction factors of ``self`` versus ``baseline``."""
        return DistributionScore(
            binning=error_reduction(baseline.binning, self.binning),
            yield3sigma=error_reduction(
                baseline.yield3sigma, self.yield3sigma
            ),
            rmse=error_reduction(baseline.rmse, self.rmse),
        )


def evaluate_distribution(
    model: DistributionLike,
    golden: EmpiricalDistribution,
    scheme: BinningScheme | None = None,
) -> DistributionScore:
    """Score one model on the three §4 metrics."""
    return DistributionScore(
        binning=binning_error(model, golden, scheme),
        yield3sigma=yield_error(model, golden),
        rmse=cdf_rmse(model, golden),
    )


def evaluate_models(
    models: Mapping[str, DistributionLike],
    golden: EmpiricalDistribution,
    *,
    baseline: str = "LVF",
    levels: Sequence[float] = PAPER_SIGMA_LEVELS,
) -> dict[str, dict[str, float]]:
    """Score several models and normalise against the baseline.

    Args:
        models: Mapping of model name to fitted distribution; must
            include ``baseline``.
        golden: Golden Monte-Carlo samples.
        baseline: Name of the Eq.-12 baseline model (LVF in the paper).
        levels: Sigma levels for the bin boundaries.

    Returns:
        ``{name: {"binning", "yield3sigma", "rmse",
        "binning_reduction", "yield_reduction", "rmse_reduction"}}``.
    """
    if baseline not in models:
        raise ParameterError(
            f"baseline model {baseline!r} missing from models"
        )
    scheme = sigma_binning(golden.moments(), levels)
    scores = {
        name: evaluate_distribution(model, golden, scheme)
        for name, model in models.items()
    }
    base = scores[baseline]
    report: dict[str, dict[str, float]] = {}
    for name, score in scores.items():
        reduction = score.reductions(base)
        report[name] = {
            "binning": score.binning,
            "yield3sigma": score.yield3sigma,
            "rmse": score.rmse,
            "binning_reduction": reduction.binning,
            "yield_reduction": reduction.yield3sigma,
            "rmse_reduction": reduction.rmse,
        }
    return report


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, the right average for ratio metrics."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ParameterError("geometric mean of empty sequence")
    if np.any(array <= 0.0):
        raise ParameterError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(array))))
