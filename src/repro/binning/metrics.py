"""Accuracy metrics: binning error, 3σ yield, CDF RMSE (paper §4).

The paper scores every model against the golden Monte-Carlo samples
with three metrics and normalises them as *error reductions* relative
to the LVF baseline (Eq. 12):

    error_reduction = |baseline - golden| / |result - golden|

so LVF itself always scores 1× and larger is better.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.binning.bins import (
    PAPER_SIGMA_LEVELS,
    BinningScheme,
    DistributionLike,
    sigma_binning,
)
from repro.errors import ParameterError
from repro.stats.empirical import EmpiricalDistribution

__all__ = [
    "DistributionScore",
    "binning_error",
    "cdf_rmse",
    "error_reduction",
    "evaluate_distribution",
    "evaluate_models",
    "sigma_yield",
    "yield_error",
]


def binning_error(
    model: DistributionLike,
    golden: EmpiricalDistribution,
    scheme: BinningScheme | None = None,
) -> float:
    """Mean absolute bin-probability error over the paper's 8 bins.

    Args:
        model: Fitted distribution under test.
        golden: Golden Monte-Carlo samples.
        scheme: Bin boundaries; defaults to the golden μ±{1,2,3}σ
            scheme of §4.

    Returns:
        ``mean_i |P_model(Bin_i) - P_golden(Bin_i)|``.
    """
    bins = scheme or sigma_binning(golden.moments())
    model_probs = bins.bin_probabilities(model)
    golden_probs = bins.bin_probabilities(golden)
    return float(np.mean(np.abs(model_probs - golden_probs)))


def sigma_yield(
    dist: DistributionLike,
    golden: EmpiricalDistribution,
    k: float = 3.0,
    *,
    two_sided: bool = False,
) -> float:
    """Yield at the golden ``mu + k sigma`` design target.

    ``T_max = mu_golden + k * sigma_golden`` is the target delay chips
    must satisfy (§2.1); the k-sigma yield is ``P(t <= T_max)``.  With
    ``two_sided`` the leakage-limited lower cut ``T_min = mu - k sigma``
    is applied as well.
    """
    summary = golden.moments()
    upper = summary.sigma_point(k)
    value = float(np.asarray(dist.cdf(np.asarray(upper))))
    if two_sided:
        lower = summary.sigma_point(-k)
        value -= float(np.asarray(dist.cdf(np.asarray(lower))))
    return value


def yield_error(
    model: DistributionLike,
    golden: EmpiricalDistribution,
    k: float = 3.0,
    *,
    two_sided: bool = False,
) -> float:
    """Absolute k-sigma yield error of ``model`` vs the golden samples."""
    return abs(
        sigma_yield(model, golden, k, two_sided=two_sided)
        - sigma_yield(golden, golden, k, two_sided=two_sided)
    )


def cdf_rmse(
    model: DistributionLike,
    golden: EmpiricalDistribution,
    *,
    n_points: int = 256,
    spread: float = 4.0,
) -> float:
    """RMSE between model and empirical CDFs on a μ±spread·σ grid.

    This is the Fig. 4 indicator used to quantify the multi-Gaussian
    phenomenon across the slew-load table.
    """
    grid = golden.grid(n_points=n_points, spread=spread)
    model_cdf = np.asarray(model.cdf(grid), dtype=float)
    golden_cdf = golden.cdf(grid)
    return float(np.sqrt(np.mean((model_cdf - golden_cdf) ** 2)))


def error_reduction(
    baseline_error: float, model_error: float, *, floor: float = 1e-12
) -> float:
    """Eq. (12): ``|baseline - golden| / |result - golden|``.

    Both arguments are already absolute errors versus golden.  A model
    error below ``floor`` is floored to avoid infinite ratios when a
    model nails the golden value to numerical precision.
    """
    if baseline_error < 0.0 or model_error < 0.0:
        raise ParameterError("errors must be non-negative")
    return baseline_error / max(model_error, floor)


@dataclass(frozen=True)
class DistributionScore:
    """All three §4 metrics for one model on one distribution.

    Attributes:
        binning: Mean absolute bin-probability error.
        yield3sigma: Absolute 3σ-yield error.
        rmse: CDF RMSE.
    """

    binning: float
    yield3sigma: float
    rmse: float

    def reductions(self, baseline: "DistributionScore") -> "DistributionScore":
        """Error-reduction factors of ``self`` versus ``baseline``."""
        return DistributionScore(
            binning=error_reduction(baseline.binning, self.binning),
            yield3sigma=error_reduction(
                baseline.yield3sigma, self.yield3sigma
            ),
            rmse=error_reduction(baseline.rmse, self.rmse),
        )


def evaluate_distribution(
    model: DistributionLike,
    golden: EmpiricalDistribution,
    scheme: BinningScheme | None = None,
) -> DistributionScore:
    """Score one model on the three §4 metrics."""
    return DistributionScore(
        binning=binning_error(model, golden, scheme),
        yield3sigma=yield_error(model, golden),
        rmse=cdf_rmse(model, golden),
    )


def evaluate_models(
    models: Mapping[str, DistributionLike],
    golden: EmpiricalDistribution,
    *,
    baseline: str = "LVF",
    levels: Sequence[float] = PAPER_SIGMA_LEVELS,
) -> dict[str, dict[str, float]]:
    """Score several models and normalise against the baseline.

    Args:
        models: Mapping of model name to fitted distribution; must
            include ``baseline``.
        golden: Golden Monte-Carlo samples.
        baseline: Name of the Eq.-12 baseline model (LVF in the paper).
        levels: Sigma levels for the bin boundaries.

    Returns:
        ``{name: {"binning", "yield3sigma", "rmse",
        "binning_reduction", "yield_reduction", "rmse_reduction"}}``.
    """
    if baseline not in models:
        raise ParameterError(
            f"baseline model {baseline!r} missing from models"
        )
    scheme = sigma_binning(golden.moments(), levels)
    scores = {
        name: evaluate_distribution(model, golden, scheme)
        for name, model in models.items()
    }
    base = scores[baseline]
    report: dict[str, dict[str, float]] = {}
    for name, score in scores.items():
        reduction = score.reductions(base)
        report[name] = {
            "binning": score.binning,
            "yield3sigma": score.yield3sigma,
            "rmse": score.rmse,
            "binning_reduction": reduction.binning,
            "yield_reduction": reduction.yield3sigma,
            "rmse_reduction": reduction.rmse,
        }
    return report


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, the right average for ratio metrics."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ParameterError("geometric mean of empty sequence")
    if np.any(array <= 0.0):
        raise ParameterError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(array))))
