"""Bin pricing and revenue estimation (paper Fig. 2).

Chips below ``T_min`` are leakage-faulty, chips above ``T_max`` miss
the design target; usable bins in between are priced by speed —
"faster chips will be sold higher, and profit decreases as the
performance drops".  Expected revenue per manufactured chip under a
timing distribution is the price-weighted bin-probability sum; the
revenue *estimation error* of a model is the business-facing
consequence of a bad distribution fit.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.binning.bins import BinningScheme, DistributionLike
from repro.errors import ParameterError

__all__ = ["PriceProfile", "expected_revenue", "revenue_error"]


@dataclass(frozen=True)
class PriceProfile:
    """Per-bin prices over a binning scheme.

    Attributes:
        scheme: The speed bins.
        prices: One price per bin (``scheme.n_bins`` entries).  The
            first bin (below ``T_min``, leaky parts) and the last bin
            (slower than ``T_max``) are conventionally priced 0.
    """

    scheme: BinningScheme
    prices: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.prices) != self.scheme.n_bins:
            raise ParameterError(
                f"need {self.scheme.n_bins} prices, got {len(self.prices)}"
            )
        if any(price < 0.0 for price in self.prices):
            raise ParameterError("prices must be non-negative")

    @classmethod
    def monotone(
        cls,
        scheme: BinningScheme,
        top_price: float,
        *,
        decay: float = 0.75,
    ) -> "PriceProfile":
        """Fig. 2 style profile: fastest usable bin priced highest.

        Bins 2..n get geometrically decaying prices; the faulty first
        bin and the too-slow last bin get 0.

        Args:
            scheme: The speed bins.
            top_price: Price of the fastest usable bin.
            decay: Multiplicative decay per slower bin, in (0, 1].
        """
        if not 0.0 < decay <= 1.0:
            raise ParameterError(f"decay must lie in (0, 1], got {decay}")
        if top_price <= 0.0:
            raise ParameterError("top_price must be positive")
        usable = scheme.n_bins - 2
        prices = [0.0]
        prices.extend(top_price * decay**index for index in range(usable))
        prices.append(0.0)
        return cls(scheme, tuple(prices))


def expected_revenue(
    profile: PriceProfile, dist: DistributionLike
) -> float:
    """Expected revenue per chip under ``dist``."""
    probabilities = profile.scheme.bin_probabilities(dist)
    return float(np.dot(probabilities, np.asarray(profile.prices)))


def revenue_error(
    profile: PriceProfile,
    model: DistributionLike,
    golden: DistributionLike,
) -> float:
    """Absolute expected-revenue error of ``model`` vs ``golden``."""
    return abs(
        expected_revenue(profile, model) - expected_revenue(profile, golden)
    )


def revenue_profile_sweep(
    profile: PriceProfile,
    dist: DistributionLike,
    volumes: Sequence[float],
) -> np.ndarray:
    """Revenue at several production volumes (chips manufactured)."""
    per_chip = expected_revenue(profile, dist)
    return per_chip * np.asarray(volumes, dtype=float)
