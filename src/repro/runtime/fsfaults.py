"""Deterministic filesystem fault model and the FS-access seam.

The claim-file pool is designed for shared mounts (DESIGN.md §9), but
shared mounts fail in ways a local disk never shows: transient
``EIO``/``ESTALE`` on read, ``ENOSPC`` on write, torn writes that
leave a truncated entry behind, stale directory listings and delayed
visibility (NFS close-to-open semantics), and claim mtimes skewed by
clock drift between hosts.  This module provides both halves of the
hardening story:

- a **fault model** in the style of :mod:`repro.runtime.faults`: a
  seeded :class:`FsFaultPlan` of rule-matched :class:`FsFaultRule`
  entries, activated with :func:`inject_fs`, whose every decision is
  a pure function of ``(plan seed, rule, path name, op, occurrence
  index)`` — the same sequence of filesystem accesses always sees the
  same faults;
- a thin **FS-access seam** (:func:`read_bytes`, :func:`write_bytes`,
  :func:`append_line`, :func:`create_exclusive`, :func:`replace`,
  :func:`exists`, :func:`listdir`, :func:`stat_mtime`) that
  :class:`~repro.runtime.checkpoint.CheckpointStore`,
  :class:`~repro.runtime.pool.claims.ClaimStore`,
  :class:`~repro.runtime.pool.journal.PoolJournal` and the Liberty
  export writer all route through.  The seam retries *transient*
  errors — injected or real — with bounded deterministic backoff
  (:class:`RetryPolicy`), surfacing every retry as telemetry counters
  and an ``fs.retry`` span.

Fault kinds:

- ``read_error``    — transient ``OSError`` (``EIO`` or ``ESTALE``)
  on a matching read/stat op;
- ``write_error``   — transient ``ENOSPC`` on a matching
  write/append/create/replace op;
- ``torn_write``    — the write "succeeds" but only a prefix of the
  payload reaches the file (a crash mid-write / lost NFS commit);
- ``stale_listing`` — a directory listing omits matching entries
  (readdir cache staleness);
- ``hidden_entry``  — an existence probe reports a present file as
  absent (delayed close-to-open visibility);
- ``clock_skew``    — stat-reported mtimes are shifted by a constant
  (cross-host clock drift against claim heartbeats).

Per-process activation mirrors :func:`repro.runtime.faults.inject`:
each pool worker activates its own plan instance, so plan counters
never race across processes.  Decisions are keyed on the *path name*
and a per-``(rule, path, op)`` occurrence counter — not on global
ordering — so they are stable under worker interleaving for any fixed
per-process access sequence.
"""

from __future__ import annotations

import errno
import hashlib
import os
import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from types import MappingProxyType
from typing import Callable, TypeVar

from repro.errors import ParameterError
from repro.runtime import telemetry

__all__ = [
    "DEFAULT_RETRY",
    "FsFaultPlan",
    "FsFaultRule",
    "RetryPolicy",
    "TRANSIENT_ERRNOS",
    "active_fs_plan",
    "append_line",
    "create_exclusive",
    "exists",
    "inject_fs",
    "listdir",
    "read_bytes",
    "read_text",
    "replace",
    "retry_policy",
    "set_retry_policy",
    "stat_mtime",
    "touch",
    "use_retry_policy",
    "write_bytes",
]

_KINDS = (
    "read_error",
    "write_error",
    "torn_write",
    "stale_listing",
    "hidden_entry",
    "clock_skew",
)

_READ_ERRNOS = MappingProxyType(
    {"EIO": errno.EIO, "ESTALE": errno.ESTALE}
)

#: Errno values the seam treats as transient and retries.  Everything
#: else (``ENOENT``, ``EACCES``...) is a real answer, not flakiness.
TRANSIENT_ERRNOS = frozenset(
    {errno.EIO, errno.ESTALE, errno.EAGAIN, errno.ENOSPC}
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with deterministic exponential backoff.

    Attributes:
        retries: Additional attempts after the first (0 disables
            retrying).
        backoff: Sleep before the first retry, in seconds.
        multiplier: Backoff growth factor per subsequent retry.
    """

    retries: int = 2
    backoff: float = 0.05
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ParameterError(
                f"fs retries must be >= 0, got {self.retries}"
            )
        if self.backoff < 0:
            raise ParameterError(
                f"fs backoff must be >= 0 seconds, got {self.backoff}"
            )
        if self.multiplier < 1.0:
            raise ParameterError(
                f"fs backoff multiplier must be >= 1, "
                f"got {self.multiplier}"
            )

    def delay(self, retry_index: int) -> float:
        """Sleep before retry ``retry_index`` (0-based), in seconds."""
        return self.backoff * self.multiplier**retry_index


DEFAULT_RETRY = RetryPolicy()


@dataclass(frozen=True)
class FsFaultRule:
    """One filesystem fault rule; glob selectors match anything by
    default.

    Attributes:
        kind: One of ``read_error``, ``write_error``, ``torn_write``,
            ``stale_listing``, ``hidden_entry``, ``clock_skew``.
        path_glob: ``fnmatch`` pattern over the file *name* (for
            ``stale_listing``: the entry names hidden from the
            listing).
        op: ``fnmatch`` pattern over the seam operation name
            (``"checkpoint.write"``, ``"claim.*"``...).
        times: Maximum fires per ``(path, op)`` pair; None removes
            the bound (persistent faults such as clock skew).
        probability: Chance a matching access fires, drawn
            deterministically from the plan seed.
        error: For ``read_error``: ``"EIO"`` or ``"ESTALE"``.
        keep_bytes: For ``torn_write``: exact surviving prefix length
            (overrides ``keep_fraction``).
        keep_fraction: For ``torn_write``: surviving fraction of the
            payload when ``keep_bytes`` is None.
        skew_seconds: For ``clock_skew``: mtime shift (may be
            negative — a host whose clock runs behind).
    """

    kind: str
    path_glob: str = "*"
    op: str = "*"
    times: int | None = 1
    probability: float = 1.0
    error: str = "EIO"
    keep_bytes: int | None = None
    keep_fraction: float = 0.5
    skew_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ParameterError(
                f"fs fault kind must be one of {_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.times is not None and self.times < 1:
            raise ParameterError(
                f"times must be >= 1 or None, got {self.times}"
            )
        if not 0.0 < self.probability <= 1.0:
            raise ParameterError(
                f"probability must lie in (0, 1], "
                f"got {self.probability}"
            )
        if self.error not in _READ_ERRNOS:
            raise ParameterError(
                f"read_error errno must be one of "
                f"{tuple(_READ_ERRNOS)}, got {self.error!r}"
            )
        if self.keep_bytes is not None and self.keep_bytes < 0:
            raise ParameterError(
                f"keep_bytes must be >= 0, got {self.keep_bytes}"
            )
        if not 0.0 <= self.keep_fraction <= 1.0:
            raise ParameterError(
                f"keep_fraction must lie in [0, 1], "
                f"got {self.keep_fraction}"
            )

    def matches(self, name: str, op: str) -> bool:
        """Whether this rule selects ``(file name, seam op)``."""
        return fnmatch(name, self.path_glob) and fnmatch(op, self.op)

    def torn(self, data: bytes) -> bytes:
        """The prefix of ``data`` that survives a torn write."""
        if self.keep_bytes is not None:
            return data[: self.keep_bytes]
        return data[: int(len(data) * self.keep_fraction)]


def _coin(
    seed: int, index: int, name: str, op: str, occurrence: int
) -> float:
    """Deterministic uniform draw in [0, 1) for one fault decision."""
    digest = hashlib.sha256(
        f"{seed}|{index}|{name}|{op}|{occurrence}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "little") / 2**64


@dataclass
class FsFaultPlan:
    """A seeded set of fault rules plus one run's firing state.

    Picklable (it travels to spawned pool workers inside a
    ``WorkerSpec``); each unpickled copy starts from the counters it
    was pickled with, so workers fire their faults independently.

    Attributes:
        rules: The fault rules, matched in order; every match fires
            independently.
        seed: Seed of the deterministic probability draws.
        fired: ``kind -> count`` of faults this plan instance fired.
    """

    rules: tuple[FsFaultRule, ...]
    seed: int = 0
    fired: dict[str, int] = field(default_factory=dict)
    _attempts: dict[tuple[int, str, str], int] = field(
        default_factory=dict
    )
    _fires: dict[tuple[int, str, str], int] = field(
        default_factory=dict
    )

    def __init__(
        self, rules: Iterator[FsFaultRule] | tuple[FsFaultRule, ...],
        seed: int = 0,
    ) -> None:
        self.rules = tuple(rules)
        self.seed = int(seed)
        self.fired = {}
        self._attempts = {}
        self._fires = {}

    def should_fire(
        self, index: int, rule: FsFaultRule, name: str, op: str
    ) -> bool:
        """Decide (and record) whether ``rule`` fires on this access."""
        key = (index, name, op)
        occurrence = self._attempts.get(key, 0)
        self._attempts[key] = occurrence + 1
        if (
            rule.times is not None
            and self._fires.get(key, 0) >= rule.times
        ):
            return False
        if (
            rule.probability < 1.0
            and _coin(self.seed, index, name, op, occurrence)
            >= rule.probability
        ):
            return False
        self._fires[key] = self._fires.get(key, 0) + 1
        self.fired[rule.kind] = self.fired.get(rule.kind, 0) + 1
        return True

    def matching(
        self, kind: str, name: str, op: str
    ) -> Iterator[tuple[int, FsFaultRule]]:
        """Indexed rules of ``kind`` selecting ``(name, op)``."""
        for index, rule in enumerate(self.rules):
            if rule.kind == kind and rule.matches(name, op):
                yield index, rule

    def total_fired(self) -> int:
        """Faults fired by this plan instance, all kinds summed."""
        return sum(self.fired.values())


_ACTIVE_FS: FsFaultPlan | None = None
_RETRY: RetryPolicy = DEFAULT_RETRY


def active_fs_plan() -> FsFaultPlan | None:
    """The currently injected filesystem fault plan, if any."""
    return _ACTIVE_FS


@contextmanager
def inject_fs(plan: FsFaultPlan) -> Iterator[FsFaultPlan]:
    """Activate ``plan`` for the duration of the ``with`` block."""
    # Deliberate process-local activation, mirroring faults.inject:
    # each parallel worker activates its own plan instance.
    global _ACTIVE_FS  # repro-lint: disable=PAR003
    previous = _ACTIVE_FS
    _ACTIVE_FS = plan
    try:
        yield plan
    finally:
        _ACTIVE_FS = previous


def retry_policy() -> RetryPolicy:
    """The process-wide retry policy the seam currently applies."""
    return _RETRY


def set_retry_policy(policy: RetryPolicy) -> RetryPolicy:
    """Install ``policy`` process-wide; returns the previous policy.

    The CLI calls this once per process from ``--fs-retries`` /
    ``--fs-backoff``; pool workers install the policy forwarded in
    their :class:`~repro.runtime.pool.worker.WorkerSpec`.
    """
    # Process-local config, set once at startup (CLI / worker main).
    global _RETRY  # repro-lint: disable=PAR003
    previous = _RETRY
    _RETRY = policy
    return previous


@contextmanager
def use_retry_policy(policy: RetryPolicy) -> Iterator[RetryPolicy]:
    """Scoped :func:`set_retry_policy` (tests and harnesses)."""
    previous = set_retry_policy(policy)
    try:
        yield policy
    finally:
        set_retry_policy(previous)


# ----------------------------------------------------------------------
# Fault hooks (no-ops without an active plan)
# ----------------------------------------------------------------------
def _maybe_error(kind: str, op: str, path: Path) -> None:
    """Raise the injected transient ``OSError`` when a rule fires."""
    plan = _ACTIVE_FS
    if plan is None:
        return
    for index, rule in plan.matching(kind, path.name, op):
        if plan.should_fire(index, rule, path.name, op):
            if kind == "write_error":
                code, label = errno.ENOSPC, "ENOSPC"
            else:
                code, label = _READ_ERRNOS[rule.error], rule.error
            telemetry.counter_inc(f"fsfaults.{kind}")
            raise OSError(
                code, f"injected {label} on {op} {path.name}"
            )


def _torn_payload(op: str, path: Path, data: bytes) -> bytes:
    """Apply matching ``torn_write`` rules to an outgoing payload."""
    plan = _ACTIVE_FS
    if plan is None:
        return data
    for index, rule in plan.matching("torn_write", path.name, op):
        if plan.should_fire(index, rule, path.name, op):
            telemetry.counter_inc("fsfaults.torn_write")
            data = rule.torn(data)
    return data


def _is_hidden(op: str, path: Path) -> bool:
    """Whether a ``hidden_entry`` rule hides this existence probe."""
    plan = _ACTIVE_FS
    if plan is None:
        return False
    for index, rule in plan.matching("hidden_entry", path.name, op):
        if plan.should_fire(index, rule, path.name, op):
            telemetry.counter_inc("fsfaults.hidden_entry")
            return True
    return False


def _filter_listing(
    op: str, directory: Path, entries: list[Path]
) -> list[Path]:
    """Apply ``stale_listing`` rules to one directory listing."""
    plan = _ACTIVE_FS
    if plan is None:
        return entries
    for index, rule in enumerate(plan.rules):
        # path_glob selects the *entries* to hide, so rule matching
        # here is by op alone; the firing counter keys on the
        # directory whose listing went stale.
        if rule.kind != "stale_listing" or not fnmatch(op, rule.op):
            continue
        if plan.should_fire(index, rule, directory.name, op):
            telemetry.counter_inc("fsfaults.stale_listing")
            entries = [
                entry
                for entry in entries
                if not fnmatch(entry.name, rule.path_glob)
            ]
    return entries


def _skewed(op: str, path: Path, mtime: float) -> float:
    """Apply ``clock_skew`` rules to a stat-reported mtime."""
    plan = _ACTIVE_FS
    if plan is None:
        return mtime
    for index, rule in plan.matching("clock_skew", path.name, op):
        if plan.should_fire(index, rule, path.name, op):
            telemetry.counter_inc("fsfaults.clock_skew")
            mtime += rule.skew_seconds
    return mtime


# ----------------------------------------------------------------------
# The seam: retried filesystem primitives
# ----------------------------------------------------------------------
_T = TypeVar("_T")


def _write_all(descriptor: int, payload: bytes) -> None:
    """Write ``payload`` fully; ``os.write`` may stop short."""
    view = memoryview(payload)
    while view:
        view = view[os.write(descriptor, view):]


def _with_retries(
    op: str, path: Path, attempt: Callable[[], _T]
) -> _T:
    """Run ``attempt``, retrying transient ``OSError`` per the active
    :class:`RetryPolicy`; re-raises the last error when exhausted."""
    policy = _RETRY
    try:
        return attempt()
    except OSError as error:
        if error.errno not in TRANSIENT_ERRNOS or policy.retries < 1:
            raise
        last = error
    with telemetry.span(
        "fs.retry", stage="fs", op=op, path=path.name
    ):
        for retry_index in range(policy.retries):
            telemetry.counter_inc("fs.retries")
            telemetry.counter_inc(f"fs.retries.{op}")
            delay = policy.delay(retry_index)
            if delay > 0:
                time.sleep(delay)
            try:
                result = attempt()
            except OSError as error:
                if error.errno not in TRANSIENT_ERRNOS:
                    raise
                last = error
                continue
            telemetry.counter_inc("fs.retry_recovered")
            return result
    telemetry.counter_inc("fs.retry_exhausted")
    raise last


def read_bytes(
    path: str | os.PathLike[str], *, op: str = "fs.read"
) -> bytes:
    """Read a file's bytes, retrying transient read errors."""
    target = Path(path)

    def attempt() -> bytes:
        _maybe_error("read_error", op, target)
        return target.read_bytes()

    return _with_retries(op, target, attempt)


def read_text(
    path: str | os.PathLike[str], *, op: str = "fs.read"
) -> str:
    """Read a file's text, retrying transient read errors."""
    return read_bytes(path, op=op).decode()


def write_bytes(
    path: str | os.PathLike[str],
    data: bytes,
    *,
    op: str = "fs.write",
    fsync: bool = False,
) -> int:
    """(Over)write a file, retrying transient errors; returns the
    bytes actually written (less than ``len(data)`` under an injected
    torn write — callers verify sizes where that matters)."""
    target = Path(path)

    def attempt() -> int:
        _maybe_error("write_error", op, target)
        payload = _torn_payload(op, target, data)
        descriptor = os.open(
            target, os.O_CREAT | os.O_WRONLY | os.O_TRUNC, 0o644
        )
        try:
            _write_all(descriptor, payload)
            if fsync:
                os.fsync(descriptor)
        finally:
            os.close(descriptor)
        return len(payload)

    return _with_retries(op, target, attempt)


def append_line(
    path: str | os.PathLike[str], data: bytes, *, op: str = "fs.append"
) -> int:
    """Append one record atomically (``O_APPEND``, single write),
    retrying transient errors; returns the bytes written."""
    target = Path(path)

    def attempt() -> int:
        _maybe_error("write_error", op, target)
        payload = _torn_payload(op, target, data)
        descriptor = os.open(
            target, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644
        )
        try:
            # One os.write is the atomicity unit; finishing a (rare)
            # short write can tear the line, which the lenient
            # readers tolerate — losing the bytes entirely is worse.
            _write_all(descriptor, payload)
        finally:
            os.close(descriptor)
        return len(payload)

    return _with_retries(op, target, attempt)


def create_exclusive(
    path: str | os.PathLike[str], data: bytes, *, op: str = "fs.create"
) -> bool:
    """``O_CREAT|O_EXCL``-create a file with ``data``; False when it
    already exists.  Transient errors are retried; the existence
    answer is never retried (it is an answer, not a failure)."""
    target = Path(path)

    def attempt() -> bool:
        _maybe_error("write_error", op, target)
        try:
            descriptor = os.open(
                target, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
            )
        except FileExistsError:
            return False
        payload = _torn_payload(op, target, data)
        try:
            _write_all(descriptor, payload)
        finally:
            os.close(descriptor)
        return True

    return _with_retries(op, target, attempt)


def replace(
    src: str | os.PathLike[str],
    dst: str | os.PathLike[str],
    *,
    op: str = "fs.replace",
) -> None:
    """Atomic rename, retrying transient errors."""
    target = Path(dst)

    def attempt() -> None:
        _maybe_error("write_error", op, target)
        os.replace(src, dst)

    _with_retries(op, target, attempt)


def touch(
    path: str | os.PathLike[str], *, op: str = "fs.touch"
) -> None:
    """Refresh an existing file's mtime, retrying transient errors.

    Claim heartbeats live on this: a heartbeat lost to a transient
    shared-mount error ages the claim toward the reclaim timeout, so
    it goes through the same retry discipline as every other protocol
    write.  The file must already exist — touch never creates (claim
    birth is :func:`create_exclusive`'s job)."""
    target = Path(path)

    def attempt() -> None:
        _maybe_error("write_error", op, target)
        os.utime(target)

    _with_retries(op, target, attempt)


def exists(
    path: str | os.PathLike[str], *, op: str = "fs.exists"
) -> bool:
    """Existence probe subject to ``hidden_entry`` visibility faults.

    A hidden probe answers False exactly like NFS close-to-open
    staleness would; callers that then recompute produce the same
    content-addressed bytes, so delayed visibility costs work, never
    correctness.
    """
    target = Path(path)
    if _is_hidden(op, target):
        return False
    return target.exists()


def listdir(
    directory: str | os.PathLike[str],
    pattern: str,
    *,
    op: str = "fs.list",
) -> tuple[Path, ...]:
    """Sorted glob listing subject to ``stale_listing`` faults."""
    root = Path(directory)
    entries = sorted(root.glob(pattern))
    return tuple(_filter_listing(op, root, entries))


def stat_mtime(
    path: str | os.PathLike[str], *, op: str = "fs.stat"
) -> float:
    """A file's mtime, retrying transient errors, with any injected
    clock skew applied (claim liveness reads mtimes through this)."""
    target = Path(path)

    def attempt() -> float:
        _maybe_error("read_error", op, target)
        return target.stat().st_mtime

    return _skewed(op, target, _with_retries(op, target, attempt))
