"""Content-addressed checkpoint store for long-running pipelines.

Library characterisation simulates thousands of Monte-Carlo arc
populations; a killed run used to restart from zero.  The store in this
module gives every unit of work a *content-addressed* key — a hash of
the full request (engine corner, cell topology, grid, sample count,
seed) — and persists the finished payload under that key, so a re-run
of the same request resumes from the last completed arc while any
change to the request (different seed, grid, corner...) naturally maps
to fresh keys and recomputes.

Payloads are arbitrary Python objects (sample grids, fitted models)
persisted with :mod:`pickle`; the store is a private cache directory
owned by this library, not an interchange format.  Writes are atomic
(temp file + ``os.replace``) so a kill mid-write never leaves a
truncated checkpoint behind.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from collections.abc import Iterable
from pathlib import Path
from typing import Any

from repro.errors import CheckpointError
from repro.runtime import telemetry

__all__ = ["CheckpointStore"]

#: Bump when the on-disk layout changes; stale formats are rejected.
_FORMAT_VERSION = 1


class CheckpointStore:
    """Directory of content-addressed pickled checkpoints.

    Attributes:
        directory: Store root; created on construction.
        reuse: When False, ``load`` always misses (fresh run) while
            ``save`` still records checkpoints for future resumes.
        hits: Number of successful loads.
        misses: Number of loads that found nothing.
        writes: Number of checkpoints saved.
    """

    def __init__(
        self, directory: str | os.PathLike[str], *, reuse: bool = True
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.reuse = reuse
        self.hits = 0
        self.misses = 0
        self.writes = 0

    @staticmethod
    def key_of(token: str) -> str:
        """Content-addressed key for a request token."""
        return hashlib.sha256(token.encode()).hexdigest()[:32]

    def path_for(self, token: str) -> Path:
        """On-disk path of the checkpoint for ``token``."""
        return self.directory / f"{self.key_of(token)}.ckpt"

    def contains(self, token: str) -> bool:
        """Whether a checkpoint for ``token`` exists on disk."""
        return self.path_for(token).exists()

    def missing(self, tokens: Iterable[str]) -> tuple[str, ...]:
        """The given tokens that have no checkpoint on disk yet.

        Order-preserving, so callers (pool respawn accounting, the
        parent sweep's completeness check) see missing work in the
        same serial order the items were generated in.
        """
        return tuple(
            token for token in tokens if not self.contains(token)
        )

    def load(self, token: str) -> Any | None:
        """Load the payload for ``token``; None on miss (or fresh run).

        Raises:
            CheckpointError: If the stored entry cannot be read or was
                written for a different request (hash collision or
                foreign file).
        """
        path = self.path_for(token)
        if not self.reuse or not path.exists():
            self.misses += 1
            telemetry.counter_inc("checkpoint.miss")
            return None
        with telemetry.span("checkpoint.load", stage="checkpoint"):
            try:
                with path.open("rb") as handle:
                    entry = pickle.load(handle)
            except Exception as error:
                raise CheckpointError(
                    f"unreadable checkpoint {path.name}: {error}"
                ) from error
            if (
                not isinstance(entry, dict)
                or entry.get("version") != _FORMAT_VERSION
                or "payload" not in entry
            ):
                raise CheckpointError(
                    f"checkpoint {path.name} has an unknown format"
                )
            if entry.get("token") != token:
                raise CheckpointError(
                    f"checkpoint {path.name} was written for a "
                    f"different request"
                )
        self.hits += 1
        telemetry.counter_inc("checkpoint.hit")
        return entry["payload"]

    def save(self, token: str, payload: Any) -> Path:
        """Atomically persist ``payload`` under ``token``'s key."""
        path = self.path_for(token)
        entry = {
            "version": _FORMAT_VERSION,
            "token": token,
            "payload": payload,
        }
        descriptor, tmp_name = tempfile.mkstemp(
            dir=self.directory, suffix=".tmp"
        )
        with telemetry.span("checkpoint.save", stage="checkpoint"):
            try:
                with os.fdopen(descriptor, "wb") as handle:
                    pickle.dump(
                        entry, handle, protocol=pickle.HIGHEST_PROTOCOL
                    )
                os.replace(tmp_name, path)
            except BaseException:
                # A kill between mkstemp and replace must not leave temp
                # litter that a later clear() would miss.
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        self.writes += 1
        telemetry.counter_inc("checkpoint.write")
        return path

    def keys(self) -> tuple[str, ...]:
        """Keys of every checkpoint currently on disk (sorted)."""
        return tuple(
            sorted(p.stem for p in self.directory.glob("*.ckpt"))
        )

    def __len__(self) -> int:
        return len(self.keys())

    def clear(self) -> int:
        """Delete every checkpoint; returns how many were removed."""
        removed = 0
        for path in self.directory.glob("*.ckpt"):
            path.unlink()
            removed += 1
        return removed

    def total_bytes(self) -> int:
        """Total on-disk size of every checkpoint, in bytes."""
        total = 0
        for path in self.directory.glob("*.ckpt"):
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def invalidate(self, tokens: Iterable[str]) -> int:
        """Delete the entries for ``tokens``; returns how many existed.

        Pool runs use this to honour fresh-run (``reuse=False``)
        semantics: the parallel workers share a reusing store handle,
        so the parent drops this run's entries up front instead of
        suppressing loads per process.
        """
        removed = 0
        for token in tokens:
            try:
                self.path_for(token).unlink()
            except FileNotFoundError:
                continue
            except OSError:
                continue
            removed += 1
        return removed

    def _claimed_keys(self, claim_timeout: float | None) -> frozenset:
        """Keys of entries currently under a *live* claim file.

        A live claim means some pool worker (possibly on another host)
        is mid-computation on that key's companions — removing the key
        now would race its imminent ``save`` or force a recompute of
        work already in flight.
        """
        # Function-local import: claims.py imports CheckpointStore for
        # key derivation, so the dependency must stay one-way at
        # module-import time.
        from repro.runtime.pool.claims import ClaimStore

        claims = (
            ClaimStore(self.directory)
            if claim_timeout is None
            else ClaimStore(self.directory, timeout=claim_timeout)
        )
        live = []
        for path in self.directory.glob("*.claim"):
            info = claims.live_claim_for_key(path.stem)
            if info is not None:
                live.append(path.stem)
        return frozenset(live)

    def gc(
        self,
        valid_tokens: Iterable[str] | None = None,
        *,
        max_age_seconds: float | None = None,
        max_total_bytes: int | None = None,
        claim_timeout: float | None = None,
    ) -> int:
        """Drop stale checkpoints; returns how many were removed.

        An entry is stale when its key is not derived from any of
        ``valid_tokens`` (i.e. no arc of the *current* configuration
        can ever load it again — a changed seed, grid or corner maps
        to fresh keys and orphans the old ones), or when its file is
        older than ``max_age_seconds``.  After those selectors run,
        ``max_total_bytes`` caps the store size: surviving entries are
        evicted oldest-first (mtime order) until the total fits.
        Passing no selector removes nothing.

        Entries whose key carries a **live claim file** (a pool worker
        is computing against them right now) are never removed — by
        either selector or the size cap.  ``claim_timeout`` overrides
        the claim-staleness threshold used for that liveness check
        (default: the claim store's own default).

        Raises:
            CheckpointError: When ``max_age_seconds`` or
                ``max_total_bytes`` is negative.
        """
        if max_age_seconds is not None and max_age_seconds < 0:
            raise CheckpointError(
                f"max_age_seconds must be >= 0, got {max_age_seconds}"
            )
        if max_total_bytes is not None and max_total_bytes < 0:
            raise CheckpointError(
                f"max_total_bytes must be >= 0, got {max_total_bytes}"
            )
        valid = (
            {self.key_of(token) for token in valid_tokens}
            if valid_tokens is not None
            else None
        )
        claimed = self._claimed_keys(claim_timeout)
        now = time.time()
        removed = 0
        protected = 0
        survivors: list[tuple[float, int, Path]] = []
        for path in self.directory.glob("*.ckpt"):
            try:
                stat = path.stat()
            except OSError:
                continue
            stale = valid is not None and path.stem not in valid
            if not stale and max_age_seconds is not None:
                stale = now - stat.st_mtime > max_age_seconds
            if stale and path.stem in claimed:
                stale = False
                protected += 1
            if not stale:
                survivors.append((stat.st_mtime, stat.st_size, path))
                continue
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        if max_total_bytes is not None:
            total = sum(size for _, size, _ in survivors)
            # Evict oldest first; ties broken by name for determinism.
            survivors.sort(key=lambda item: (item[0], item[2].name))
            for _, size, path in survivors:
                if total <= max_total_bytes:
                    break
                if path.stem in claimed:
                    protected += 1
                    continue
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= size
                removed += 1
        telemetry.counter_inc("checkpoint.gc_removed", removed)
        if protected:
            telemetry.counter_inc("checkpoint.gc_claim_skips", protected)
        return removed
