"""Content-addressed checkpoint store for long-running pipelines.

Library characterisation simulates thousands of Monte-Carlo arc
populations; a killed run used to restart from zero.  The store in this
module gives every unit of work a *content-addressed* key — a hash of
the full request (engine corner, cell topology, grid, sample count,
seed) — and persists the finished payload under that key, so a re-run
of the same request resumes from the last completed arc while any
change to the request (different seed, grid, corner...) naturally maps
to fresh keys and recomputes.

Payloads are arbitrary Python objects (sample grids, fitted models)
persisted with :mod:`pickle`; the store is a private cache directory
owned by this library, not an interchange format.  Writes are atomic
(temp file + ``os.replace``) so a kill mid-write never leaves a
truncated checkpoint behind *on a well-behaved filesystem*.  Shared
mounts are not well behaved, so the store also defends its reads:

- every filesystem access routes through the seam in
  :mod:`repro.runtime.fsfaults`, which retries transient errors
  (``EIO``/``ESTALE``/``ENOSPC``) with bounded deterministic backoff;
- format v2 entries carry a sha256 checksum of the pickled payload,
  so a torn or bit-flipped entry is *detected* rather than trusted;
- a corrupt entry is **quarantined** — renamed to ``<name>.corrupt``,
  counted (``quarantined`` attribute, ``checkpoint.quarantined``
  telemetry) — and reported as a cache miss, so the caller recomputes
  it instead of aborting the whole run;
- v1 entries (no checksum) still load, so a pre-existing store
  resumes under the new format.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from collections.abc import Iterable
from pathlib import Path
from typing import Any

from repro.errors import CheckpointError
from repro.runtime import fsfaults, telemetry

__all__ = ["CheckpointStore", "QUARANTINE_SUFFIX"]

#: Bump when the on-disk layout changes.  v2 wraps the payload pickle
#: in a checksummed envelope; v1 (payload stored directly) is still
#: readable.  Unknown formats are quarantined, not fatal.
_FORMAT_VERSION = 2

#: Appended to a corrupt entry's file name when it is quarantined.
QUARANTINE_SUFFIX = ".corrupt"


class _CorruptEntry(Exception):
    """Internal: a stored entry failed decoding or verification."""


class CheckpointStore:
    """Directory of content-addressed pickled checkpoints.

    Attributes:
        directory: Store root; created on construction.
        reuse: When False, ``load`` always misses (fresh run) while
            ``save`` still records checkpoints for future resumes.
        hits: Number of successful loads.
        misses: Number of loads that found nothing.
        writes: Number of checkpoints saved.
        quarantined: Corrupt entries renamed aside and re-reported as
            misses (each one also counts into ``misses``).
    """

    def __init__(
        self, directory: str | os.PathLike[str], *, reuse: bool = True
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.reuse = reuse
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.quarantined = 0

    @staticmethod
    def key_of(token: str) -> str:
        """Content-addressed key for a request token."""
        return hashlib.sha256(token.encode()).hexdigest()[:32]

    def path_for(self, token: str) -> Path:
        """On-disk path of the checkpoint for ``token``."""
        return self.directory / f"{self.key_of(token)}.ckpt"

    def contains(self, token: str) -> bool:
        """Whether a checkpoint for ``token`` exists on disk."""
        return fsfaults.exists(
            self.path_for(token), op="checkpoint.exists"
        )

    def missing(self, tokens: Iterable[str]) -> tuple[str, ...]:
        """The given tokens that have no checkpoint on disk yet.

        Order-preserving, so callers (pool respawn accounting, the
        parent sweep's completeness check) see missing work in the
        same serial order the items were generated in.
        """
        return tuple(
            token for token in tokens if not self.contains(token)
        )

    @staticmethod
    def _decode(blob: bytes, token: str) -> Any:
        """Decode and verify one stored entry.

        Raises:
            _CorruptEntry: On any torn, foreign, checksum-failing or
                unknown-format entry — the caller quarantines it.
        """
        try:
            entry = pickle.loads(blob)
        except Exception as error:
            raise _CorruptEntry(f"undecodable pickle: {error}")
        if not isinstance(entry, dict) or "payload" not in entry:
            raise _CorruptEntry("unknown entry layout")
        if entry.get("token") != token:
            raise _CorruptEntry("written for a different request")
        version = entry.get("version")
        if version == 1:
            # Pre-checksum format: the payload object is stored
            # directly.  Trusted as-is for read compatibility.
            return entry["payload"]
        if version != _FORMAT_VERSION:
            raise _CorruptEntry(f"unknown format version {version!r}")
        payload_bytes = entry["payload"]
        if not isinstance(payload_bytes, bytes):
            raise _CorruptEntry("v2 payload is not a byte string")
        digest = hashlib.sha256(payload_bytes).hexdigest()
        if digest != entry.get("sha256"):
            raise _CorruptEntry("payload checksum mismatch")
        try:
            return pickle.loads(payload_bytes)
        except Exception as error:
            raise _CorruptEntry(f"undecodable payload: {error}")

    def _quarantine(self, path: Path, reason: str) -> None:
        """Rename a corrupt entry aside and count it.

        The quarantined file keeps its bytes (``<name>.corrupt``
        next to the store entries) for post-mortem inspection; the
        key becomes a miss, so the payload is recomputed and saved
        fresh.  A quarantine that cannot rename falls back to
        unlinking — the entry must stop being loadable either way.
        """
        target = path.with_name(path.name + QUARANTINE_SUFFIX)
        try:
            fsfaults.replace(path, target, op="checkpoint.quarantine")
        except OSError:
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
        self.quarantined += 1
        telemetry.counter_inc("checkpoint.quarantined")

    def load(self, token: str) -> Any | None:
        """Load the payload for ``token``; None on miss (or fresh run).

        A corrupt entry — torn write, checksum mismatch, foreign or
        unknown format, or unreadable after the transient-error
        retries — is quarantined (renamed to ``*.corrupt``) and
        reported as a miss so the caller recomputes it; it never
        aborts the run.
        """
        path = self.path_for(token)
        if not self.reuse or not fsfaults.exists(
            path, op="checkpoint.exists"
        ):
            self.misses += 1
            telemetry.counter_inc("checkpoint.miss")
            return None
        with telemetry.span("checkpoint.load", stage="checkpoint"):
            try:
                blob = fsfaults.read_bytes(path, op="checkpoint.read")
            except FileNotFoundError:
                # Raced a concurrent gc/invalidate between the
                # existence probe and the read: a plain miss.
                self.misses += 1
                telemetry.counter_inc("checkpoint.miss")
                return None
            except OSError as error:
                self._quarantine(
                    path, f"unreadable after retries: {error}"
                )
                self.misses += 1
                telemetry.counter_inc("checkpoint.miss")
                return None
            try:
                payload = self._decode(blob, token)
            except _CorruptEntry as corrupt:
                self._quarantine(path, str(corrupt))
                self.misses += 1
                telemetry.counter_inc("checkpoint.miss")
                return None
        self.hits += 1
        telemetry.counter_inc("checkpoint.hit")
        return payload

    def save(self, token: str, payload: Any) -> Path:
        """Atomically persist ``payload`` under ``token``'s key."""
        path = self.path_for(token)
        payload_bytes = pickle.dumps(
            payload, protocol=pickle.HIGHEST_PROTOCOL
        )
        entry = {
            "version": _FORMAT_VERSION,
            "token": token,
            "sha256": hashlib.sha256(payload_bytes).hexdigest(),
            "payload": payload_bytes,
        }
        blob = pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
        descriptor, tmp_name = tempfile.mkstemp(
            dir=self.directory, suffix=".tmp"
        )
        os.close(descriptor)
        with telemetry.span("checkpoint.save", stage="checkpoint"):
            try:
                fsfaults.write_bytes(
                    tmp_name, blob, op="checkpoint.write"
                )
                fsfaults.replace(tmp_name, path, op="checkpoint.write")
            except BaseException:
                # A kill between mkstemp and replace must not leave temp
                # litter that a later clear() would miss.
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        self.writes += 1
        telemetry.counter_inc("checkpoint.write")
        return path

    def _entries(self) -> tuple[Path, ...]:
        """Every checkpoint file currently visible in the directory.

        Quarantined ``*.corrupt`` files and foreign debris
        (``.DS_Store``, editor swap files...) never match.
        """
        return fsfaults.listdir(
            self.directory, "*.ckpt", op="checkpoint.list"
        )

    def keys(self) -> tuple[str, ...]:
        """Keys of every checkpoint currently on disk (sorted)."""
        return tuple(sorted(p.stem for p in self._entries()))

    def __len__(self) -> int:
        return len(self.keys())

    def clear(self) -> int:
        """Delete every checkpoint; returns how many were removed.

        Tolerates a concurrent worker/gc unlinking entries
        mid-iteration: an entry that vanished before our unlink is
        simply not counted.  Quarantined ``*.corrupt`` files are
        swept as well (uncounted — they were never live entries).
        """
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
            except FileNotFoundError:
                continue
            except OSError:
                continue
            removed += 1
        for path in fsfaults.listdir(
            self.directory, f"*.ckpt{QUARANTINE_SUFFIX}",
            op="checkpoint.list",
        ):
            try:
                path.unlink(missing_ok=True)
            except OSError:
                continue
        return removed

    def total_bytes(self) -> int:
        """Total on-disk size of every checkpoint, in bytes."""
        total = 0
        for path in self._entries():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def invalidate(self, tokens: Iterable[str]) -> int:
        """Delete the entries for ``tokens``; returns how many existed.

        Pool runs use this to honour fresh-run (``reuse=False``)
        semantics: the parallel workers share a reusing store handle,
        so the parent drops this run's entries up front instead of
        suppressing loads per process.  Concurrent unlinks (another
        pool's gc racing this one) are tolerated, not errors.
        """
        removed = 0
        for token in tokens:
            try:
                self.path_for(token).unlink()
            except FileNotFoundError:
                continue
            except OSError:
                continue
            removed += 1
        return removed

    def _claimed_keys(self, claim_timeout: float | None) -> frozenset:
        """Keys of entries currently under a *live* claim file.

        A live claim means some pool worker (possibly on another host)
        is mid-computation on that key's companions — removing the key
        now would race its imminent ``save`` or force a recompute of
        work already in flight.
        """
        # Function-local import: claims.py imports CheckpointStore for
        # key derivation, so the dependency must stay one-way at
        # module-import time.
        from repro.runtime.pool.claims import ClaimStore

        claims = (
            ClaimStore(self.directory)
            if claim_timeout is None
            else ClaimStore(self.directory, timeout=claim_timeout)
        )
        live = []
        for path in fsfaults.listdir(
            self.directory, "*.claim", op="claim.list"
        ):
            info = claims.live_claim_for_key(path.stem)
            if info is not None:
                live.append(path.stem)
        return frozenset(live)

    def gc(
        self,
        valid_tokens: Iterable[str] | None = None,
        *,
        max_age_seconds: float | None = None,
        max_total_bytes: int | None = None,
        claim_timeout: float | None = None,
    ) -> int:
        """Drop stale checkpoints; returns how many were removed.

        An entry is stale when its key is not derived from any of
        ``valid_tokens`` (i.e. no arc of the *current* configuration
        can ever load it again — a changed seed, grid or corner maps
        to fresh keys and orphans the old ones), or when its file is
        older than ``max_age_seconds``.  After those selectors run,
        ``max_total_bytes`` caps the store size: surviving entries are
        evicted oldest-first (mtime order) until the total fits.
        Passing no selector removes nothing.

        Entries whose key carries a **live claim file** (a pool worker
        is computing against them right now) are never removed — by
        either selector or the size cap.  ``claim_timeout`` overrides
        the claim-staleness threshold used for that liveness check
        (default: the claim store's own default).

        Raises:
            CheckpointError: When ``max_age_seconds`` or
                ``max_total_bytes`` is negative.
        """
        if max_age_seconds is not None and max_age_seconds < 0:
            raise CheckpointError(
                f"max_age_seconds must be >= 0, got {max_age_seconds}"
            )
        if max_total_bytes is not None and max_total_bytes < 0:
            raise CheckpointError(
                f"max_total_bytes must be >= 0, got {max_total_bytes}"
            )
        valid = (
            {self.key_of(token) for token in valid_tokens}
            if valid_tokens is not None
            else None
        )
        claimed = self._claimed_keys(claim_timeout)
        now = time.time()
        removed = 0
        protected = 0
        survivors: list[tuple[float, int, Path]] = []
        for path in self._entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            stale = valid is not None and path.stem not in valid
            if not stale and max_age_seconds is not None:
                stale = now - stat.st_mtime > max_age_seconds
            if stale and path.stem in claimed:
                stale = False
                protected += 1
            if not stale:
                survivors.append((stat.st_mtime, stat.st_size, path))
                continue
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        if max_total_bytes is not None:
            total = sum(size for _, size, _ in survivors)
            # Evict oldest first; ties broken by name for determinism.
            survivors.sort(key=lambda item: (item[0], item[2].name))
            for _, size, path in survivors:
                if total <= max_total_bytes:
                    break
                if path.stem in claimed:
                    protected += 1
                    continue
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= size
                removed += 1
        telemetry.counter_inc("checkpoint.gc_removed", removed)
        if protected:
            telemetry.counter_inc("checkpoint.gc_claim_skips", protected)
        return removed
