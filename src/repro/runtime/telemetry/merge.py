"""Merge per-worker JSONL traces into one coherent trace file.

Each pool worker process writes its own trace (span ids are only
unique per process; ``start`` offsets are relative to each tracer's
own epoch).  :func:`merge_trace_files` folds any number of such files
into a single trace that ``repro trace summarize`` reads like any
other:

- **span ids** are remapped with a per-file offset so they stay unique
  across the merged file, preserving each file's parent/child edges;
- every span's tags gain a ``worker: <label>`` entry naming its source
  (labels default to the source file stems), so the aggregated call
  tree shows who did what;
- **metrics** are combined: counters sum, gauges keep the maximum
  across sources (they are level readings — worker counts, queue
  depths — where the high-water mark is the useful merge), histograms
  merge exactly for count/mean/min/max and *approximately* for
  percentiles (count-weighted average of the per-source percentiles —
  cheap, and close enough for the merged overview; read the per-worker
  file when a percentile matters);
- **manifests** from the sources pass through unchanged, and the
  merged metrics plus a ``repro.trace_merge/1`` manifest are written
  *last*, so ``load_trace``'s last-record-wins rule surfaces the
  merged view while the per-worker records stay greppable.

Files are read leniently: a truncated final line — the signature of a
worker killed mid-write, which is exactly when traces get merged — is
counted and skipped instead of raising.  ``start`` offsets are left
untouched, so the merged timeline is per-worker-relative, not a global
clock; cross-worker ordering comes from the pool journal, not spans.

The output is written via :class:`JsonlSink` to a temporary file and
atomically renamed over the destination, so the destination may be one
of the inputs (the CLI merges worker traces *into* the main trace).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import ParameterError
from repro.runtime.telemetry.sinks import JsonlSink

__all__ = ["MERGE_SCHEMA", "merge_trace_files", "read_jsonl_lenient"]

#: Schema tag of the manifest record appended to every merged trace.
MERGE_SCHEMA = "repro.trace_merge/1"


def read_jsonl_lenient(
    path: str | os.PathLike[str],
) -> tuple[list[dict], int]:
    """Parse a JSONL file, skipping a truncated final line.

    Returns ``(records, skipped)`` where ``skipped`` is 1 when the
    file ends mid-record without a trailing newline (a killed writer)
    and 0 otherwise.  Malformed lines *with* a trailing newline are
    real corruption and raise :class:`ParameterError` like the strict
    reader.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise ParameterError(
            f"cannot read trace file {path}: {error}"
        ) from error
    records: list[dict] = []
    skipped = 0
    lines = text.splitlines()
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            if number == len(lines) and not text.endswith("\n"):
                skipped = 1
                break
            raise ParameterError(
                f"{path}:{number}: malformed trace line: {error}"
            ) from error
        if not isinstance(record, dict):
            raise ParameterError(
                f"{path}:{number}: trace records must be objects"
            )
        records.append(record)
    return records, skipped


def _merge_histogram(parts: list[dict]) -> dict:
    """Combine histogram summaries; percentiles are approximate."""
    live = [part for part in parts if part.get("count", 0) > 0]
    total = sum(part["count"] for part in live)
    if total == 0:
        return {"count": 0}
    merged = {
        "count": total,
        "mean": sum(part["count"] * part["mean"] for part in live)
        / total,
        "min": min(part["min"] for part in live),
        "max": max(part["max"] for part in live),
    }
    for quantile in ("p50", "p90", "p99"):
        merged[quantile] = (
            sum(part["count"] * part[quantile] for part in live) / total
        )
    return merged


def merge_trace_files(
    paths,
    out: str | os.PathLike[str],
    *,
    labels=None,
) -> dict:
    """Merge trace files into ``out``; returns the merge manifest.

    Args:
        paths: Source trace files, merged in the given order.
        out: Destination path (may be one of the sources; the write is
            staged to a temporary file and renamed over it).
        labels: Per-source worker labels for the ``worker`` span tag;
            defaults to the source file stems.

    Raises:
        ParameterError: No sources, label/source count mismatch, or a
            source file that is corrupt beyond a truncated tail.
    """
    sources = [str(path) for path in paths]
    if not sources:
        raise ParameterError("no trace files to merge")
    if labels is None:
        labels = [Path(source).stem for source in sources]
    labels = [str(label) for label in labels]
    if len(labels) != len(sources):
        raise ParameterError(
            f"{len(sources)} trace files but {len(labels)} labels"
        )
    out_path = Path(out)
    staging = out_path.with_name(out_path.name + ".tmp")

    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histogram_parts: dict[str, list[dict]] = {}
    source_summaries: list[dict] = []
    total_spans = 0
    total_skipped = 0

    sink = JsonlSink(staging)
    try:
        offset = 0
        for source, label in zip(sources, labels):
            records, skipped = read_jsonl_lenient(source)
            total_skipped += skipped
            max_id = 0
            span_count = 0
            file_metrics: dict = {}
            run_id = None
            for record in records:
                kind = record.get("type")
                if kind == "span":
                    span = dict(record)
                    span_id = int(span.get("span_id", 0))
                    max_id = max(max_id, span_id)
                    span["span_id"] = span_id + offset
                    parent_id = span.get("parent_id")
                    if parent_id is not None:
                        span["parent_id"] = int(parent_id) + offset
                    tags = dict(span.get("tags") or {})
                    tags["worker"] = label
                    span["tags"] = tags
                    run_id = span.get("run_id", run_id)
                    sink.write(span)
                    span_count += 1
                elif kind == "metrics":
                    # Mirrors load_trace: the last snapshot in a file
                    # is that file's final state.
                    file_metrics = record.get("metrics", {})
                    run_id = record.get("run_id", run_id)
                else:
                    # Manifests and unknown record kinds pass through.
                    sink.write(record)
            for name, value in file_metrics.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value
            for name, value in file_metrics.get("gauges", {}).items():
                if value is None:
                    continue
                gauges[name] = (
                    value
                    if name not in gauges
                    else max(gauges[name], value)
                )
            for name, summary in file_metrics.get(
                "histograms", {}
            ).items():
                histogram_parts.setdefault(name, []).append(summary)
            source_summaries.append(
                {
                    "path": source,
                    "label": label,
                    "run_id": run_id,
                    "spans": span_count,
                    "truncated": bool(skipped),
                }
            )
            total_spans += span_count
            offset += max_id
        merged_metrics = {
            "counters": {
                name: counters[name] for name in sorted(counters)
            },
            "gauges": {name: gauges[name] for name in sorted(gauges)},
            "histograms": {
                name: _merge_histogram(histogram_parts[name])
                for name in sorted(histogram_parts)
            },
        }
        manifest = {
            "schema": MERGE_SCHEMA,
            "sources": source_summaries,
            "span_count": total_spans,
            "truncated_sources": total_skipped,
        }
        sink.write(
            {
                "type": "metrics",
                "run_id": "merged",
                "metrics": merged_metrics,
            }
        )
        record = {"type": "manifest"}
        record.update(manifest)
        sink.write(record)
    except BaseException:
        sink.close()
        staging.unlink(missing_ok=True)
        raise
    sink.close()
    os.replace(staging, out_path)
    return manifest
