"""Trace analysis: waterfall, phase attribution, pool utilization.

``repro trace summarize`` answers "what ran"; this module answers
*where the time went*.  It consumes a parsed :class:`TraceData`
(serial trace or merged pool trace — the ``worker`` tag the merge
stamps onto every span is what separates the two) and produces one
:class:`TraceAnalysis` with four reports:

- **phase attribution** — every span's *self time* (wall minus the
  wall of its direct children) is charged to one phase derived from
  the span name (``lhs`` / ``mc`` / ``moments`` / ``kmeans`` / ``em``
  / ``fallback`` / ``checkpoint`` / ``export`` / ``fs`` / ``pool`` /
  ``status`` / ``other``).  Self-time attribution means nested spans
  never double count, and the phase walls sum to the accounted span
  time — this is the report the paper's Table 2 characterization-cost
  claims (and every later optimization PR) are judged against;
- **span waterfall** — the largest spans laid out on a text timeline
  (start offset → bar), so stragglers and serialization stalls are
  visible at a glance.  Offsets in a merged pool trace are relative
  to each worker's own tracer epoch (the merge leaves ``start``
  untouched), so bars align *within* a worker, not across workers;
- **worker utilization** — per ``worker`` label: lifetime
  (``pool.worker`` wall), busy time (summed ``pool.item`` walls),
  idle share, item count, and the longest idle gap between
  consecutive claims (a long gap means the worker starved waiting on
  live foreign claims);
- **stragglers / critical path** — the top-N slowest work units
  (``pool.item`` spans, or ``characterize.point`` /
  ``characterize.arc`` in a serial trace) and the worker whose
  lifetime bounds the pool's wall clock.

Everything here is read-side only: no imports beyond the telemetry
package itself, no filesystem access — callers load the trace with
:func:`~repro.runtime.telemetry.summarize.load_trace` first.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.telemetry.summarize import TraceData
from repro.runtime.telemetry.tracer import SpanRecord

__all__ = [
    "PHASES",
    "PhaseReport",
    "TraceAnalysis",
    "UnitReport",
    "WorkerReport",
    "analyze_trace",
    "phase_of",
    "render_analysis",
]

#: Span-name prefix -> phase label, matched in order (first wins).
#: Kept as a tuple of pairs, not a dict: matching is ordered and the
#: table is read-only (PAR001).
_PHASE_PREFIXES: tuple[tuple[str, str], ...] = (
    ("lhs.", "lhs"),
    ("mc.", "mc"),
    ("moments.", "moments"),
    ("kmeans.", "kmeans"),
    ("em.", "em"),
    ("fit.ladder", "fallback"),
    ("fit.", "fitting"),
    ("checkpoint.", "checkpoint"),
    ("export.", "export"),
    ("liberty.", "export"),
    ("fs.", "fs"),
    ("status.", "status"),
    ("claim.", "pool"),
    ("pool.", "pool"),
    ("ssta.", "ssta"),
    ("characterize.", "characterize"),
    ("experiment", "experiment"),
)

#: Every phase label the prefix table can produce, plus the catch-all.
PHASES: tuple[str, ...] = tuple(
    dict.fromkeys([label for _, label in _PHASE_PREFIXES] + ["other"])
)

#: Span names that count as one schedulable work unit in pool reports.
_UNIT_NAMES = frozenset(
    {"pool.item", "characterize.point", "characterize.arc"}
)


def phase_of(name: str) -> str:
    """Phase label for a span name (first matching prefix wins)."""
    for prefix, label in _PHASE_PREFIXES:
        if name.startswith(prefix):
            return label
    return "other"


@dataclass(frozen=True)
class PhaseReport:
    """Wall time charged to one phase.

    Attributes:
        phase: Phase label from :data:`PHASES`.
        wall: Summed self time of the phase's spans, seconds.
        count: Number of spans charged to the phase.
        share: ``wall`` as a fraction of the total accounted time.
    """

    phase: str
    wall: float
    count: int
    share: float

    def to_dict(self) -> dict:
        return {
            "phase": self.phase,
            "wall_s": self.wall,
            "count": self.count,
            "share": self.share,
        }


@dataclass(frozen=True)
class WorkerReport:
    """Utilization of one worker in a merged pool trace.

    Attributes:
        worker: Merge label (``w00``, ``r1-w00``, ``main``).
        wall: Worker lifetime — its ``pool.worker`` span's wall, or
            the span of its items when no lifetime span survived.
        busy: Summed wall of the worker's work-unit spans.
        items: Work units the worker executed.
        longest_gap: Longest idle stretch between consecutive units,
            seconds (0 with fewer than two units).
    """

    worker: str
    wall: float
    busy: float
    items: int
    longest_gap: float

    @property
    def utilization(self) -> float:
        """Busy share of the worker's lifetime, in [0, 1]."""
        return self.busy / self.wall if self.wall > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "worker": self.worker,
            "wall_s": self.wall,
            "busy_s": self.busy,
            "items": self.items,
            "utilization": self.utilization,
            "longest_gap_s": self.longest_gap,
        }


@dataclass(frozen=True)
class UnitReport:
    """One work unit (for the straggler ranking).

    Attributes:
        label: The unit's ``label`` tag (or span name as fallback).
        group: Assembly-group tag, empty for pin-granularity units.
        worker: Merge label of the executing worker ("" when serial).
        wall: Unit wall seconds.
    """

    label: str
    group: str
    worker: str
    wall: float

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "group": self.group,
            "worker": self.worker,
            "wall_s": self.wall,
        }


@dataclass
class TraceAnalysis:
    """Everything ``repro trace analyze`` reports.

    Attributes:
        total_wall: Earliest start to latest end over all spans.
        accounted_wall: Summed self time over all spans (the phase
            denominators).
        span_count: Spans analyzed.
        phases: Per-phase attribution, largest first.
        workers: Per-worker utilization, worker order (empty for a
            serial trace).
        stragglers: Slowest work units, slowest first.
        critical: The worker bounding the pool wall clock, or None.
        waterfall: Largest spans in start order (for rendering).
    """

    total_wall: float = 0.0
    accounted_wall: float = 0.0
    span_count: int = 0
    phases: list[PhaseReport] = field(default_factory=list)
    workers: list[WorkerReport] = field(default_factory=list)
    stragglers: list[UnitReport] = field(default_factory=list)
    critical: WorkerReport | None = None
    waterfall: list[SpanRecord] = field(default_factory=list)

    def to_dict(self, *, top: int = 10) -> dict:
        """JSON view (``repro trace analyze --json``)."""
        return {
            "schema": "repro.trace_analysis/1",
            "total_wall_s": self.total_wall,
            "accounted_wall_s": self.accounted_wall,
            "span_count": self.span_count,
            "phases": [phase.to_dict() for phase in self.phases],
            "workers": [worker.to_dict() for worker in self.workers],
            "stragglers": [
                unit.to_dict() for unit in self.stragglers[:top]
            ],
            "critical_worker": (
                None if self.critical is None else self.critical.to_dict()
            ),
        }


def _self_times(spans: list[SpanRecord]) -> dict[int, float]:
    """Per-span self time: wall minus the direct children's wall.

    Clamped at zero — a child that outlives its parent (clock jitter,
    or a merged trace whose parent edge crossed a truncated tail)
    must not produce negative attribution.
    """
    child_wall: dict[int, float] = {}
    for span in spans:
        if span.parent_id is not None:
            child_wall[span.parent_id] = (
                child_wall.get(span.parent_id, 0.0) + span.wall
            )
    return {
        span.span_id: max(0.0, span.wall - child_wall.get(span.span_id, 0.0))
        for span in spans
    }


def _worker_of(span: SpanRecord) -> str:
    return str(span.tags.get("worker", ""))


def _unit_spans(spans: list[SpanRecord]) -> list[SpanRecord]:
    """The work-unit spans of a trace, preferring the finest kind.

    A merged pool trace has ``pool.item`` spans; a serial trace only
    has ``characterize.point`` (grid granularity) or
    ``characterize.arc``.  Only the first kind present is used, so a
    pool trace does not double-report the nested serial spans.
    """
    for name in ("pool.item", "characterize.point", "characterize.arc"):
        units = [span for span in spans if span.name == name]
        if units:
            return units
    return []


def _unit_label(span: SpanRecord) -> str:
    label = span.tags.get("label")
    if label:
        return str(label)
    parts = [
        str(span.tags[key])
        for key in ("cell", "pin", "transition", "slew_index", "load_index")
        if key in span.tags
    ]
    return "/".join(parts) if parts else span.name


def _worker_reports(spans: list[SpanRecord]) -> list[WorkerReport]:
    units = [
        span for span in _unit_spans(spans) if span.name == "pool.item"
    ]
    lifetimes: dict[str, float] = {}
    for span in spans:
        if span.name == "pool.worker":
            worker = _worker_of(span)
            lifetimes[worker] = max(
                lifetimes.get(worker, 0.0), span.wall
            )
    by_worker: dict[str, list[SpanRecord]] = {}
    for span in units:
        by_worker.setdefault(_worker_of(span), []).append(span)
    reports = []
    for worker in sorted(set(lifetimes) | set(by_worker)):
        mine = sorted(
            by_worker.get(worker, []), key=lambda span: span.start
        )
        busy = sum(span.wall for span in mine)
        longest_gap = 0.0
        for previous, current in zip(mine, mine[1:]):
            gap = current.start - (previous.start + previous.wall)
            longest_gap = max(longest_gap, gap)
        reports.append(
            WorkerReport(
                worker=worker,
                wall=lifetimes.get(worker, busy),
                busy=busy,
                items=len(mine),
                longest_gap=longest_gap,
            )
        )
    return reports


def analyze_trace(data: TraceData, *, top: int = 10) -> TraceAnalysis:
    """Analyze a parsed trace; see the module docs for the reports.

    Args:
        data: Output of
            :func:`~repro.runtime.telemetry.summarize.load_trace`.
        top: How many stragglers and waterfall rows to keep.
    """
    analysis = TraceAnalysis()
    spans = data.spans
    analysis.span_count = len(spans)
    if not spans:
        return analysis
    start = min(span.start for span in spans)
    end = max(span.start + span.wall for span in spans)
    analysis.total_wall = end - start

    self_times = _self_times(spans)
    phase_wall: dict[str, float] = {}
    phase_count: dict[str, int] = {}
    for span in spans:
        phase = phase_of(span.name)
        phase_wall[phase] = (
            phase_wall.get(phase, 0.0) + self_times[span.span_id]
        )
        phase_count[phase] = phase_count.get(phase, 0) + 1
    accounted = sum(phase_wall.values())
    analysis.accounted_wall = accounted
    analysis.phases = [
        PhaseReport(
            phase=phase,
            wall=wall,
            count=phase_count[phase],
            share=wall / accounted if accounted > 0 else 0.0,
        )
        for phase, wall in sorted(
            phase_wall.items(), key=lambda item: -item[1]
        )
    ]

    analysis.workers = _worker_reports(spans)
    if analysis.workers:
        analysis.critical = max(
            analysis.workers, key=lambda report: report.wall
        )

    units = _unit_spans(spans)
    analysis.stragglers = [
        UnitReport(
            label=_unit_label(span),
            group=str(span.tags.get("group", "")),
            worker=_worker_of(span),
            wall=span.wall,
        )
        for span in sorted(units, key=lambda span: -span.wall)[:top]
    ]

    analysis.waterfall = sorted(
        sorted(spans, key=lambda span: -span.wall)[:top],
        key=lambda span: span.start,
    )
    return analysis


_BAR_WIDTH = 40


def _waterfall_bar(
    span: SpanRecord, t0: float, total: float
) -> str:
    """One waterfall row's bar: offset dots, duration hashes."""
    if total <= 0:
        return "#" * _BAR_WIDTH
    lead = int((span.start - t0) / total * _BAR_WIDTH)
    lead = min(lead, _BAR_WIDTH - 1)
    body = max(1, round(span.wall / total * _BAR_WIDTH))
    body = min(body, _BAR_WIDTH - lead)
    return "." * lead + "#" * body + " " * (_BAR_WIDTH - lead - body)


def render_analysis(analysis: TraceAnalysis, *, top: int = 10) -> str:
    """Human-readable report (what ``repro trace analyze`` prints)."""
    lines: list[str] = []
    if analysis.span_count == 0:
        return "trace: no spans to analyze"
    lines.append(
        f"trace: {analysis.span_count} spans, "
        f"wall {analysis.total_wall:.4f}s, "
        f"accounted {analysis.accounted_wall:.4f}s"
    )
    lines.append("phases (self-time attribution):")
    for phase in analysis.phases:
        lines.append(
            f"  {phase.phase:<14s} {phase.wall:9.4f}s "
            f"{100.0 * phase.share:5.1f}%  spans={phase.count}"
        )
    if analysis.workers:
        lines.append("workers:")
        for report in analysis.workers:
            lines.append(
                f"  {report.worker:<14s} items={report.items:<4d} "
                f"busy={report.busy:8.4f}s of {report.wall:8.4f}s "
                f"({100.0 * report.utilization:5.1f}%) "
                f"longest_gap={report.longest_gap:.4f}s"
            )
        if analysis.critical is not None:
            lines.append(
                f"critical path: worker {analysis.critical.worker} "
                f"({analysis.critical.wall:.4f}s lifetime bounds the "
                "pool wall clock)"
            )
    if analysis.stragglers:
        lines.append(f"slowest work units (top {top}):")
        for unit in analysis.stragglers[:top]:
            where = f" [{unit.worker}]" if unit.worker else ""
            group = f" group={unit.group}" if unit.group else ""
            lines.append(
                f"  {unit.wall:9.4f}s  {unit.label}{group}{where}"
            )
    if analysis.waterfall:
        t0 = min(span.start for span in analysis.waterfall)
        span_end = max(
            span.start + span.wall for span in analysis.waterfall
        )
        total = span_end - t0
        lines.append(
            f"waterfall (top {top} spans by wall; offsets are "
            "per-worker-relative in merged traces):"
        )
        for span in analysis.waterfall[:top]:
            worker = _worker_of(span)
            tag = f" [{worker}]" if worker else ""
            lines.append(
                f"  {_waterfall_bar(span, t0, total)} "
                f"{span.name}{tag} {span.wall:.4f}s"
            )
    return "\n".join(lines)
