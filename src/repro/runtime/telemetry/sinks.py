"""Telemetry sinks: where span/metric/manifest records go.

A sink is anything with ``write(record: dict)`` (and optionally
``close()``); sessions fan every record out to all attached sinks.
The built-in :class:`JsonlSink` streams records to a JSON-lines file
— one self-describing object per line, distinguished by its ``type``
key (``span``, ``metrics``, ``manifest``) — which is what
``repro trace summarize`` reads back.  Embedders attach their own
sinks (a queue, a socket, an OpenTelemetry bridge) via
:class:`CallableSink` or any duck-typed equivalent.

Line writes are serialised under a lock and each line is written with
a single ``write`` call, so concurrent threads (and, on POSIX,
processes appending to the same file) cannot interleave partial lines.
"""

from __future__ import annotations

import json
import threading
from collections.abc import Callable, Iterator
from pathlib import Path

from repro.errors import ParameterError

__all__ = ["CallableSink", "JsonlSink", "read_jsonl"]


class JsonlSink:
    """Streams telemetry records to a JSON-lines file."""

    def __init__(self, path: str | Path, *, append: bool = False) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        try:
            self._handle = self.path.open("a" if append else "w")
        except OSError as error:
            raise ParameterError(
                f"cannot open trace file {self.path}: {error}"
            ) from error

    def write(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(line)

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()


class CallableSink:
    """Adapts a plain callable into a sink."""

    def __init__(self, fn: Callable[[dict], None]) -> None:
        self._fn = fn

    def write(self, record: dict) -> None:
        self._fn(record)

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass


def read_jsonl(path: str | Path) -> Iterator[dict]:
    """Yield records from a JSON-lines trace file.

    Blank lines are skipped; a malformed line raises
    :class:`ParameterError` naming its 1-based line number.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise ParameterError(
            f"cannot read trace file {path}: {error}"
        ) from error
    lines = text.splitlines()
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            # A malformed *final* line without a trailing newline is
            # the signature of a killed writer, not a corrupt file —
            # say so, it changes what the operator does next.
            if number == len(lines) and not text.endswith("\n"):
                raise ParameterError(
                    f"{path}:{number}: trace file is truncated "
                    "mid-record (writer killed?); re-run or trim the "
                    "partial last line"
                ) from error
            raise ParameterError(
                f"{path}:{number}: malformed trace line: {error}"
            ) from error
        if not isinstance(record, dict):
            raise ParameterError(
                f"{path}:{number}: trace records must be objects"
            )
        yield record
