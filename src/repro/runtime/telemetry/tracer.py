"""Hierarchical tracing: nested wall/CPU-time spans.

A :class:`Tracer` hands out ``with tracer.span("name", **tags)``
context managers; finished spans become immutable
:class:`SpanRecord` values carrying wall-clock and per-thread CPU
duration, the parent span (nesting is tracked per thread/context via
:mod:`contextvars`), and free-form scalar tags.

Two conventions give downstream aggregation its meaning:

- a ``stage="..."`` tag marks the span as a *stage boundary*
  (``sampling``, ``fitting``, ``export``, ``checkpoint`` ...); stage
  wall times are summed over boundary spans only — a nested span whose
  ancestor already carries a ``stage`` tag is not double-counted;
- span names are dotted paths (``mc.condition``, ``em.fit``) grouped
  by name in summaries.

The :class:`NullTracer` singleton is the disabled default: its
``span`` returns one shared re-entrant no-op context manager, so
instrumented hot paths cost a function call and a dict allocation when
telemetry is off.
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field

__all__ = ["NULL_TRACER", "NullTracer", "SpanRecord", "Tracer"]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span.

    Attributes:
        name: Dotted span name (``"mc.condition"``).
        span_id: Unique id within the tracer (1-based).
        parent_id: Enclosing span's id, ``None`` for roots.
        start: Start offset in seconds since the tracer was created.
        wall: Wall-clock duration in seconds.
        cpu: CPU time consumed by the calling thread, in seconds.
        tags: Scalar tags; ``stage`` marks a stage boundary.
        status: ``"ok"`` or ``"error:<ExceptionType>"``.
    """

    name: str
    span_id: int
    parent_id: int | None
    start: float
    wall: float
    cpu: float
    tags: dict = field(default_factory=dict)
    status: str = "ok"

    def to_dict(self) -> dict:
        """JSON-lines view (``type: "span"``)."""
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "wall": self.wall,
            "cpu": self.cpu,
            "tags": self.tags,
            "status": self.status,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "SpanRecord":
        """Inverse of :meth:`to_dict` (ignores the ``type`` key)."""
        return cls(
            name=record["name"],
            span_id=record["span_id"],
            parent_id=record.get("parent_id"),
            start=record.get("start", 0.0),
            wall=record.get("wall", 0.0),
            cpu=record.get("cpu", 0.0),
            tags=record.get("tags", {}),
            status=record.get("status", "ok"),
        )


class Tracer:
    """Collects hierarchical spans; thread-safe.

    Attributes:
        enabled: True for real tracers; :class:`NullTracer` overrides.
    """

    enabled = True

    def __init__(
        self, *, sink: Callable[[SpanRecord], None] | None = None
    ) -> None:
        self._sink = sink
        self._lock = threading.Lock()
        self._records: list[SpanRecord] = []
        self._ids = itertools.count(1)
        self._t0 = time.perf_counter()
        # Per-thread (and per-asyncio-task) span stack for nesting.
        self._stack: contextvars.ContextVar[tuple[int, ...]] = (
            contextvars.ContextVar(f"repro_span_stack_{id(self)}", default=())
        )

    @contextmanager
    def _span(self, name: str, tags: dict) -> Iterator[int]:
        span_id = next(self._ids)
        stack = self._stack.get()
        parent_id = stack[-1] if stack else None
        token = self._stack.set(stack + (span_id,))
        start_wall = time.perf_counter()
        start_cpu = time.thread_time()
        status = "ok"
        try:
            yield span_id
        except BaseException as error:
            status = f"error:{type(error).__name__}"
            raise
        finally:
            wall = time.perf_counter() - start_wall
            cpu = time.thread_time() - start_cpu
            self._stack.reset(token)
            record = SpanRecord(
                name=name,
                span_id=span_id,
                parent_id=parent_id,
                start=start_wall - self._t0,
                wall=wall,
                cpu=cpu,
                tags=tags,
                status=status,
            )
            with self._lock:
                self._records.append(record)
            if self._sink is not None:
                self._sink(record)

    def span(self, name: str, **tags: object):
        """Context manager timing one named span (yields its id)."""
        return self._span(name, tags)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def records(self) -> tuple[SpanRecord, ...]:
        """All finished spans in completion order."""
        with self._lock:
            return tuple(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def total_wall(self) -> float:
        """Wall span of the whole trace (earliest start to last end)."""
        records = self.records()
        if not records:
            return 0.0
        start = min(record.start for record in records)
        end = max(record.start + record.wall for record in records)
        return end - start

    def stage_totals(self) -> dict[str, float]:
        """Wall seconds per ``stage`` tag, stage-boundary spans only.

        A span counts toward its stage only when no ancestor span
        carries a ``stage`` tag, so nested re-tagging cannot double
        count (the boundary owns the whole subtree's time).
        """
        return stage_totals(self.records())

    def name_totals(self) -> dict[str, tuple[int, float]]:
        """Per span name: ``(count, summed wall seconds)``."""
        totals: dict[str, tuple[int, float]] = {}
        for record in self.records():
            count, wall = totals.get(record.name, (0, 0.0))
            totals[record.name] = (count + 1, wall + record.wall)
        return totals


def stage_totals(records) -> dict[str, float]:
    """Stage-boundary wall sums for any iterable of span records."""
    sequence = tuple(records)
    by_id = {record.span_id: record for record in sequence}
    totals: dict[str, float] = {}
    for record in sequence:
        stage = record.tags.get("stage")
        if stage is None:
            continue
        parent_id = record.parent_id
        shadowed = False
        while parent_id is not None:
            parent = by_id.get(parent_id)
            if parent is None:
                break
            if "stage" in parent.tags:
                shadowed = True
                break
            parent_id = parent.parent_id
        if not shadowed:
            totals[str(stage)] = totals.get(str(stage), 0.0) + record.wall
    return totals


#: Shared re-entrant no-op context manager (``nullcontext`` is
#: documented as reusable and re-entrant).
_NULL_SPAN = nullcontext()


class NullTracer(Tracer):
    """Disabled tracer: records nothing, costs almost nothing."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def span(self, name: str, **tags: object):
        return _NULL_SPAN


#: Process-wide disabled tracer used when no session is active.
NULL_TRACER = NullTracer()
