"""Telemetry sessions and the module-level instrumentation hooks.

A :class:`TelemetrySession` bundles one run's :class:`Tracer` and
:class:`MetricsRegistry` with any number of sinks.  Production code
never holds a session — it calls the module-level hooks
(:func:`span`, :func:`counter_inc`, :func:`observe`,
:func:`gauge_set`), which are cheap no-ops unless a session has been
activated with :func:`activate`, mirroring the fault-injection design
in :mod:`repro.runtime.faults`.

Activation is process-global (one run = one session); the tracer and
registry themselves are thread-safe, so parallel characterisation
workers inside the process share the session.  Cooperating *processes*
each build their own session and may append to a shared JSONL file —
span ids are only unique per process, so cross-process traces are
grouped by the session's ``run_id`` tag.

The session also assembles the end-of-run **run manifest**: config
hash, seed, per-stage wall times, degradation counts, output
checksums — the machine-readable summary a scheduler reads instead of
scraping progress logs.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from contextlib import contextmanager, nullcontext

from repro.errors import ParameterError
from repro.runtime.telemetry.metrics import MetricsRegistry
from repro.runtime.telemetry.sinks import CallableSink, JsonlSink
from repro.runtime.telemetry.tracer import NULL_TRACER, SpanRecord, Tracer

__all__ = [
    "MANIFEST_SCHEMA",
    "NEVER_SAMPLED",
    "TelemetrySession",
    "activate",
    "active_session",
    "checksum_text",
    "counter_inc",
    "gauge_set",
    "observe",
    "span",
]

#: Schema tag stamped into every run manifest.
MANIFEST_SCHEMA = "repro.run_manifest/1"

#: Span names exempt from sampling.  These are the low-frequency
#: structural spans (one per run / cell / arc / pin / worker) that
#: summaries, stage totals and the parallel smoke checks key off —
#: dropping any of them would silently skew ``repro trace summarize``
#: and the merged pool trace.  Only high-frequency leaf spans (e.g.
#: ``mc.condition``, one per grid point) are eligible for sampling;
#: error spans are never dropped regardless of name.
NEVER_SAMPLED = frozenset(
    {
        "characterize.run",
        "characterize.cell",
        "characterize.arc",
        "export.write",
        "liberty.tables",
        "pool.run",
        "pool.worker",
        "pool.item",
        "pool.assemble",
        "ssta.propagate",
        "experiment.table2",
        "yield.estimate",
    }
)


class TelemetrySession:
    """One run's tracer + metrics registry + sinks.

    Attributes:
        tracer: Hierarchical span collector.
        metrics: Counter/gauge/histogram registry.
        run_id: Short stable id tagging this session's records.
        sample: Sink-side span sampling rate in ``(0, 1]``.  At 1.0
            (default) every span record reaches the sinks.  Below 1.0,
            ``ok`` spans are downsampled **rate-adaptively per span
            name**: every name's first ``round(1/sample)`` occurrences
            always pass (so a rare span name is never thinned — only
            names frequent enough to fill a whole stride window get
            downsampled), after which every ``round(1/sample)``-th
            occurrence is kept.  Spans named in :data:`NEVER_SAMPLED`
            and spans whose status is not ``ok`` always pass.
            Sampling is sink-side only: the in-memory tracer keeps
            every span, so stage totals and manifests stay exact.
    """

    def __init__(
        self,
        *,
        trace_path: str | os.PathLike[str] | None = None,
        sinks=(),
        run_id: str | None = None,
        sample: float = 1.0,
    ) -> None:
        if not 0.0 < sample <= 1.0:
            raise ParameterError(
                f"trace sample rate must be in (0, 1], got {sample}"
            )
        self.sample = sample
        self._stride = max(1, round(1.0 / sample))
        self._span_counts: dict[str, int] = {}
        self._sample_lock = threading.Lock()
        self._sinks = [
            sink if hasattr(sink, "write") else CallableSink(sink)
            for sink in sinks
        ]
        if trace_path is not None:
            self._sinks.append(JsonlSink(trace_path))
        self.run_id = run_id or hashlib.sha256(
            f"{os.getpid()}|{time.time_ns()}".encode()
        ).hexdigest()[:12]
        self.tracer = Tracer(sink=self._emit_span)
        self.metrics = MetricsRegistry()
        self._started_at = time.time()
        self._closed = False

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _emit_span(self, record: SpanRecord) -> None:
        if self._stride > 1 and self._sampled_out(record):
            self.metrics.inc("telemetry.spans_sampled_out")
            return
        payload = record.to_dict()
        payload["run_id"] = self.run_id
        self.emit(payload)

    def _sampled_out(self, record: SpanRecord) -> bool:
        """True when this span record should be dropped by sampling."""
        if record.status != "ok" or record.name in NEVER_SAMPLED:
            return False
        with self._sample_lock:
            count = self._span_counts.get(record.name, 0)
            self._span_counts[record.name] = count + 1
        if count < self._stride:
            # Rate-adaptive grace window: a name must repeat beyond a
            # full stride before thinning starts, so span names too
            # rare to fill one window reach the sinks in full.
            return False
        return count % self._stride != 0

    def emit(self, record: dict) -> None:
        """Fan one record out to every sink."""
        for sink in self._sinks:
            sink.write(record)

    def add_sink(self, sink) -> None:
        """Attach another sink (object with ``write`` or a callable)."""
        self._sinks.append(
            sink if hasattr(sink, "write") else CallableSink(sink)
        )

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def manifest(self, **extra) -> dict:
        """Build the end-of-run manifest.

        Base keys: ``schema``, ``run_id``, ``started_at`` (epoch
        seconds), ``wall_total_s``, ``stages`` (per-stage wall
        seconds from stage-boundary spans), ``span_count`` and the
        full ``metrics`` snapshot.  Keyword arguments are merged on
        top (callers add ``config_hash``, ``seed``, ``library`` ...).
        """
        base = {
            "schema": MANIFEST_SCHEMA,
            "run_id": self.run_id,
            "started_at": self._started_at,
            "wall_total_s": self.tracer.total_wall(),
            "stages": self.tracer.stage_totals(),
            "span_count": len(self.tracer),
            "metrics": self.metrics.snapshot(),
        }
        base.update(extra)
        return base

    def write_manifest(self, manifest: dict) -> None:
        """Emit ``manifest`` as a ``type: "manifest"`` trace record."""
        record = {"type": "manifest"}
        record.update(manifest)
        self.emit(record)

    def close(self) -> None:
        """Emit the final metrics record and release the sinks."""
        if self._closed:
            return
        self._closed = True
        self.emit(
            {
                "type": "metrics",
                "run_id": self.run_id,
                "metrics": self.metrics.snapshot(),
            }
        )
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


# ----------------------------------------------------------------------
# Active-session hooks (the no-op-cheap instrumentation surface)
# ----------------------------------------------------------------------
_ACTIVE: TelemetrySession | None = None

#: Shared no-op context manager returned while no session is active.
_NULL_SPAN = nullcontext()


def active_session() -> TelemetrySession | None:
    """The currently activated session, if any."""
    return _ACTIVE


@contextmanager
def activate(session: TelemetrySession):
    """Make ``session`` the process-wide telemetry target."""
    # Deliberate process-local activation: each parallel worker opens
    # its own session and the traces are merged afterwards (DESIGN.md
    # "Parallel-readiness rules").
    global _ACTIVE  # repro-lint: disable=PAR003
    previous = _ACTIVE
    _ACTIVE = session
    try:
        yield session
    finally:
        _ACTIVE = previous


def span(name: str, **tags: object):
    """Context manager timing one span; no-op without a session."""
    session = _ACTIVE
    if session is None:
        return _NULL_SPAN
    return session.tracer.span(name, **tags)


def counter_inc(name: str, amount: int = 1) -> None:
    """Increment a counter; no-op without a session."""
    session = _ACTIVE
    if session is not None:
        session.metrics.inc(name, amount)


def observe(name: str, value: float) -> None:
    """Record a histogram observation; no-op without a session."""
    session = _ACTIVE
    if session is not None:
        session.metrics.observe(name, value)


def gauge_set(name: str, value: float) -> None:
    """Set a gauge; no-op without a session."""
    session = _ACTIVE
    if session is not None:
        session.metrics.set_gauge(name, value)


def checksum_text(text: str) -> dict:
    """Checksum block for manifest output entries (sha256 + size)."""
    data = text.encode()
    return {
        "sha256": hashlib.sha256(data).hexdigest(),
        "bytes": len(data),
    }
