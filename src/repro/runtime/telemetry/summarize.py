"""Trace-file summarisation: what ``repro trace summarize`` prints.

Reads a JSON-lines trace written by :class:`JsonlSink` back into span
records, the final metrics snapshot and the run manifest, then renders
an aggregated call-tree (span names grouped under their parent's name,
with counts and summed wall/CPU time), the per-stage wall totals, the
metrics table and the manifest highlights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.runtime.telemetry.sinks import read_jsonl
from repro.runtime.telemetry.tracer import SpanRecord, stage_totals

__all__ = [
    "TraceData",
    "format_metrics",
    "load_trace",
    "summarize_trace",
]


@dataclass
class TraceData:
    """Parsed content of one JSONL trace file.

    Attributes:
        spans: Every span record, file order.
        metrics: Last ``type: "metrics"`` snapshot (``{}`` if none).
        manifest: Last ``type: "manifest"`` record (``None`` if none).
        unknown: Count of records with an unrecognised ``type``.
    """

    spans: list[SpanRecord] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    manifest: dict | None = None
    unknown: int = 0


def load_trace(path: str | Path) -> TraceData:
    """Parse a JSONL trace file into :class:`TraceData`."""
    data = TraceData()
    for record in read_jsonl(path):
        kind = record.get("type")
        if kind == "span":
            data.spans.append(SpanRecord.from_dict(record))
        elif kind == "metrics":
            data.metrics = record.get("metrics", {})
        elif kind == "manifest":
            manifest = dict(record)
            manifest.pop("type", None)
            data.manifest = manifest
        else:
            data.unknown += 1
    return data


@dataclass
class _Node:
    """Aggregated spans sharing a name path under one parent node."""

    name: str
    count: int = 0
    wall: float = 0.0
    cpu: float = 0.0
    errors: int = 0
    children: dict[str, "_Node"] = field(default_factory=dict)


def _build_tree(spans: list[SpanRecord]) -> _Node:
    by_id = {span.span_id: span for span in spans}

    def name_path(span: SpanRecord) -> tuple[str, ...]:
        path = [span.name]
        parent_id = span.parent_id
        while parent_id is not None:
            parent = by_id.get(parent_id)
            if parent is None:
                break
            path.append(parent.name)
            parent_id = parent.parent_id
        return tuple(reversed(path))

    root = _Node(name="")
    for span in spans:
        node = root
        for name in name_path(span):
            node = node.children.setdefault(name, _Node(name=name))
        node.count += 1
        node.wall += span.wall
        node.cpu += span.cpu
        if span.status != "ok":
            node.errors += 1
    return root


def _render_tree(node: _Node, depth: int, lines: list[str]) -> None:
    children = sorted(
        node.children.values(), key=lambda child: -child.wall
    )
    for child in children:
        errors = f"  errors={child.errors}" if child.errors else ""
        lines.append(
            f"  {'  ' * depth}{child.name:<{max(1, 34 - 2 * depth)}s}"
            f" {child.count:>6d}x  wall={child.wall:9.4f}s"
            f"  cpu={child.cpu:9.4f}s{errors}"
        )
        _render_tree(child, depth + 1, lines)


def format_metrics(snapshot: dict) -> str:
    """Render a metrics snapshot as an aligned text block."""
    lines: list[str] = []
    for name, value in snapshot.get("counters", {}).items():
        lines.append(f"  counter   {name:<40s} {value}")
    for name, value in snapshot.get("gauges", {}).items():
        lines.append(f"  gauge     {name:<40s} {value}")
    for name, summary in snapshot.get("histograms", {}).items():
        if summary.get("count", 0) == 0:
            lines.append(f"  histogram {name:<40s} count=0")
            continue
        lines.append(
            f"  histogram {name:<40s} count={summary['count']}"
            f" mean={summary['mean']:.4g} p50={summary['p50']:.4g}"
            f" p90={summary['p90']:.4g} p99={summary['p99']:.4g}"
            f" max={summary['max']:.4g}"
        )
    return "\n".join(lines) if lines else "  (no metrics)"


def summarize_trace(data: TraceData) -> str:
    """Human-readable summary of a parsed trace."""
    lines: list[str] = []
    spans = data.spans
    if spans:
        start = min(span.start for span in spans)
        end = max(span.start + span.wall for span in spans)
        total = end - start
        lines.append(
            f"trace: {len(spans)} spans, wall total {total:.4f}s"
        )
        lines.append("spans (aggregated by call path):")
        _render_tree(_build_tree(spans), 0, lines)
        stages = stage_totals(spans)
        if stages:
            covered = sum(stages.values())
            share = 100.0 * covered / total if total > 0 else 0.0
            parts = "  ".join(
                f"{stage}={wall:.4f}s"
                for stage, wall in sorted(
                    stages.items(), key=lambda item: -item[1]
                )
            )
            lines.append(
                f"stages: {parts}  (covers {share:.1f}% of wall)"
            )
    else:
        lines.append("trace: no spans")
    if data.metrics:
        lines.append("metrics:")
        lines.append(format_metrics(data.metrics))
    if data.manifest is not None:
        lines.append("manifest:")
        for key in sorted(data.manifest):
            if key in ("metrics", "stages"):
                continue
            lines.append(f"  {key}: {data.manifest[key]}")
    if data.unknown:
        lines.append(f"({data.unknown} unrecognised records skipped)")
    return "\n".join(lines)
