"""Zero-dependency observability: spans, metrics, structured emission.

Three parts (see DESIGN.md §"Telemetry schema"):

- :mod:`repro.runtime.telemetry.tracer`  — hierarchical wall/CPU-time
  spans with tags; ``NullTracer`` is the disabled default;
- :mod:`repro.runtime.telemetry.metrics` — counters, gauges and
  histograms with percentile summaries;
- :mod:`repro.runtime.telemetry.session` / ``sinks`` / ``summarize``
  — the per-run session, JSON-lines emission, run manifests and the
  ``repro trace summarize`` reader.

Production code uses only the module-level hooks re-exported here::

    from repro.runtime import telemetry

    with telemetry.span("em.fit", n=data.size):
        ...
    telemetry.observe("em.iterations", result.n_iter)

Without an activated session every hook is a cheap no-op (one function
call plus a shared null context manager), so the instrumented paths
stay within the <3% disabled-overhead budget enforced by
``benchmarks/bench_telemetry_overhead.py``.  The package imports
nothing from the rest of :mod:`repro` except :mod:`repro.errors`, so
any layer (stats, liberty, ssta) may instrument itself without import
cycles.
"""

from repro.runtime.telemetry.analyze import (
    PHASES,
    PhaseReport,
    TraceAnalysis,
    UnitReport,
    WorkerReport,
    analyze_trace,
    phase_of,
    render_analysis,
)
from repro.runtime.telemetry.merge import (
    MERGE_SCHEMA,
    merge_trace_files,
    read_jsonl_lenient,
)
from repro.runtime.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from repro.runtime.telemetry.session import (
    MANIFEST_SCHEMA,
    NEVER_SAMPLED,
    TelemetrySession,
    activate,
    active_session,
    checksum_text,
    counter_inc,
    gauge_set,
    observe,
    span,
)
from repro.runtime.telemetry.sinks import CallableSink, JsonlSink, read_jsonl
from repro.runtime.telemetry.summarize import (
    TraceData,
    format_metrics,
    load_trace,
    summarize_trace,
)
from repro.runtime.telemetry.tracer import (
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    Tracer,
    stage_totals,
)

__all__ = [
    "CallableSink",
    "PHASES",
    "PhaseReport",
    "TraceAnalysis",
    "UnitReport",
    "WorkerReport",
    "analyze_trace",
    "phase_of",
    "render_analysis",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MANIFEST_SCHEMA",
    "MERGE_SCHEMA",
    "MetricsRegistry",
    "NEVER_SAMPLED",
    "NULL_TRACER",
    "NullTracer",
    "SpanRecord",
    "TelemetrySession",
    "TraceData",
    "Tracer",
    "activate",
    "active_session",
    "checksum_text",
    "counter_inc",
    "format_metrics",
    "gauge_set",
    "load_trace",
    "merge_trace_files",
    "observe",
    "percentile",
    "read_jsonl",
    "read_jsonl_lenient",
    "span",
    "stage_totals",
    "summarize_trace",
]
