"""Metrics registry: counters, gauges, histograms with percentiles.

Names are dotted paths (``em.iterations``, ``checkpoint.hit``); a name
is bound to one metric kind for the lifetime of the registry —
re-registering it as a different kind raises.  All operations are
thread-safe; histogram storage is bounded (old observations are
overwritten round-robin past the cap) so a million-condition run
cannot exhaust memory through telemetry.
"""

from __future__ import annotations

import threading

from repro.errors import ParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "percentile",
]

#: Histogram observation cap; beyond it, old values are overwritten.
_HISTOGRAM_CAP = 65_536


def percentile(values: list[float], q: float) -> float:
    """Linear-interpolated percentile (``q`` in [0, 100]) of a list."""
    if not values:
        raise ParameterError("percentile of an empty value list")
    data = sorted(values)
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    low = int(rank)
    high = min(low + 1, len(data) - 1)
    fraction = rank - low
    return data[low] * (1.0 - fraction) + data[high] * fraction


class Counter:
    """Monotonic event count."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def summary(self) -> int:
        return self._value


class Gauge:
    """Last-written value."""

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value: float | None = None

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float | None:
        return self._value

    def summary(self) -> float | None:
        return self._value


class Histogram:
    """Streaming distribution with percentile summaries.

    Keeps up to ``_HISTOGRAM_CAP`` raw observations (overwriting
    round-robin beyond that); count/sum/min/max stay exact regardless.
    """

    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._values: list[float] = []
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            if len(self._values) < _HISTOGRAM_CAP:
                self._values.append(value)
            else:
                self._values[self._count % _HISTOGRAM_CAP] = value
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        return self._count

    def summary(self) -> dict:
        """Count, mean, min/max and p50/p90/p99 of the observations."""
        with self._lock:
            values = list(self._values)
            count, total = self._count, self._sum
            low, high = self._min, self._max
        if count == 0:
            return {"count": 0}
        return {
            "count": count,
            "mean": total / count,
            "min": low,
            "max": high,
            "p50": percentile(values, 50.0),
            "p90": percentile(values, 90.0),
            "p99": percentile(values, 99.0),
        }


class MetricsRegistry:
    """Thread-safe name → metric registry."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name)
                self._metrics[name] = metric
        if not isinstance(metric, cls):
            raise ParameterError(
                f"metric {name!r} is a {metric.kind}, not a "
                f"{cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    # Convenience write paths (what instrumented code calls).
    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._metrics))

    def snapshot(self) -> dict:
        """JSON-serialisable view grouped by metric kind."""
        with self._lock:
            metrics = dict(self._metrics)
        out: dict[str, dict] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for name in sorted(metrics):
            metric = metrics[name]
            out[f"{metric.kind}s"][name] = metric.summary()
        return out
