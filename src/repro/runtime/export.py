"""Verified atomic text export.

A characterisation run's final act is writing the ``.lib`` file; a
truncated or unsynced write there silently poisons every downstream
STA consumer, which is worse than failing.  This module writes export
artifacts the safe way:

1. serialise to a temp file in the destination directory;
2. flush and ``fsync`` the data to stable storage;
3. verify the on-disk size matches the serialised payload;
4. atomically ``os.replace`` onto the destination.

The write and rename route through the :mod:`repro.runtime.fsfaults`
seam, so *transient* filesystem errors (``ENOSPC``/``EIO``/``ESTALE``
— injected or real) are retried with bounded deterministic backoff
before anything is declared a failure.  A *short* write, however, is
never retried: the size verification exists to catch silent torn
writes, and a torn final artifact must fail loudly with the previous
good library left untouched.

Any failure raises :class:`~repro.errors.LibertyWriteError` (exit
code 4 via the CLI's per-family mapping) and leaves the destination
untouched — a previous good library is never clobbered by a bad
write.  The fault-injection plan kinds ``export_truncate`` and
``export_fsync`` (see :mod:`repro.runtime.faults`) exercise both
failure paths deterministically in tests; the filesystem fault model
(:mod:`repro.runtime.fsfaults`) exercises the transient-error retry
path.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

from repro.errors import LibertyWriteError
from repro.runtime import faults, fsfaults, telemetry

__all__ = ["write_text_file"]


def write_text_file(
    path: str | os.PathLike[str], text: str, *, fsync: bool = True
) -> int:
    """Atomically write ``text`` to ``path``; returns bytes written.

    Args:
        path: Destination file; parent directories must exist.
        text: Full payload.
        fsync: Flush the payload to stable storage before the rename
            (disable only for throwaway scratch output).

    Raises:
        LibertyWriteError: On a short write, an fsync failure, or any
            OS-level write error that survives the transient-error
            retries.  The destination keeps its previous content.
    """
    destination = Path(path)
    data = text.encode()
    expected = len(data)
    truncate = faults.export_truncate_bytes()
    if truncate is not None:
        data = data[:truncate]
    with telemetry.span(
        "export.write", stage="export", path=str(destination)
    ):
        try:
            descriptor, tmp_name = tempfile.mkstemp(
                dir=destination.parent, suffix=".tmp"
            )
        except OSError as error:
            raise LibertyWriteError(
                f"cannot create temp file next to {destination}: {error}"
            ) from error
        os.close(descriptor)
        try:
            try:
                fsync_error = (
                    faults.export_fsync_error() if fsync else None
                )
                if fsync_error is not None:
                    raise OSError(fsync_error)
                fsfaults.write_bytes(
                    tmp_name, data, op="export.write", fsync=fsync
                )
            except OSError as error:
                raise LibertyWriteError(
                    f"writing {destination} failed: {error}"
                ) from error
            written = os.path.getsize(tmp_name)
            if written != expected:
                raise LibertyWriteError(
                    f"short write to {destination}: {written} of "
                    f"{expected} bytes reached disk"
                )
            try:
                fsfaults.replace(
                    tmp_name, destination, op="export.replace"
                )
            except OSError as error:
                raise LibertyWriteError(
                    f"publishing {destination} failed: {error}"
                ) from error
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    telemetry.counter_inc("export.files")
    telemetry.counter_inc("export.bytes", expected)
    return expected
