"""Deterministic fault injection for the fault-tolerance layer.

The degradation paths of the runtime layer (fallback ladder, per-arc
quarantine, checkpoint resume) must be *exercised* by tests, not just
claimed.  This module provides the injection points:

- ``nan_samples``  — corrupt a deterministic subset of the Monte-Carlo
  samples of matching arc-conditions with NaNs;
- ``em_failure``   — force the mixture rungs of the fallback ladder to
  fail on matching arc-conditions, as if EM had not converged;
- ``kill``         — raise :class:`InjectedKill` after N completed
  arcs, simulating a mid-run process death for resume tests;
- ``export_truncate`` — make the Liberty export write only the first
  ``truncate_bytes`` bytes, exercising the writer's post-write size
  verification;
- ``export_fsync`` — make the export's fsync fail, as if the disk
  went away under the run.

A :class:`FaultPlan` is activated with the :func:`inject` context
manager; production code paths call the module-level hooks
(:func:`corrupt_samples`, :func:`fit_should_fail`,
:func:`arc_completed`), which are no-ops when no plan is active.  All
randomness is derived from the arc-condition identity, so a plan
injects byte-identical faults on every run.

Filesystem-level faults (transient ``EIO``/``ESTALE``/``ENOSPC``,
torn writes, stale directory listings, clock-skewed mtimes) live in
the sibling module :mod:`repro.runtime.fsfaults`, which follows the
same plan/inject/hook pattern but fires inside the FS-access seam the
checkpoint, claim, journal and export layers route through.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ParameterError
from repro.runtime.report import FitContext

__all__ = [
    "FaultPlan",
    "FaultRule",
    "InjectedKill",
    "active_plan",
    "arc_completed",
    "corrupt_samples",
    "export_fsync_error",
    "export_truncate_bytes",
    "fit_should_fail",
    "inject",
]

_KINDS = (
    "nan_samples",
    "em_failure",
    "kill",
    "export_truncate",
    "export_fsync",
)


class InjectedKill(BaseException):
    """A simulated mid-run process death.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so the
    per-arc error isolation of the runtime layer can never swallow it:
    a killed run must stop, exactly like a real SIGKILL would stop it.
    """


@dataclass(frozen=True)
class FaultRule:
    """One injection rule; ``None`` selector fields match anything.

    Attributes:
        kind: ``"nan_samples"``, ``"em_failure"`` or ``"kill"``.
        cell: Cell instance name selector.
        pin: Input pin selector.
        transition: Output transition selector.
        quantity: ``"delay"`` / ``"transition"`` selector.
        slew_index: Grid row selector.
        load_index: Grid column selector.
        rungs: For ``em_failure``: ladder rungs forced to fail.
        after_arcs: For ``kill``: raise once this many arcs completed.
        nan_fraction: For ``nan_samples``: fraction of samples
            replaced by NaN (at least one sample).
        truncate_bytes: For ``export_truncate``: how many leading
            bytes of the export actually reach the file.
    """

    kind: str
    cell: str | None = None
    pin: str | None = None
    transition: str | None = None
    quantity: str | None = None
    slew_index: int | None = None
    load_index: int | None = None
    rungs: tuple[str, ...] = ("LVF2", "LVF2-reseed")
    after_arcs: int = 1
    nan_fraction: float = 0.05
    truncate_bytes: int = 64

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ParameterError(
                f"fault kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if not 0.0 < self.nan_fraction <= 1.0:
            raise ParameterError(
                f"nan_fraction must lie in (0, 1], got {self.nan_fraction}"
            )
        if self.after_arcs < 1:
            raise ParameterError(
                f"after_arcs must be >= 1, got {self.after_arcs}"
            )
        if self.truncate_bytes < 0:
            raise ParameterError(
                f"truncate_bytes must be >= 0, got {self.truncate_bytes}"
            )

    def matches(self, context: FitContext) -> bool:
        """Whether this rule selects the given arc-condition."""
        return (
            (self.cell is None or self.cell == context.cell)
            and (self.pin is None or self.pin == context.pin)
            and (
                self.transition is None
                or self.transition == context.transition
            )
            and (
                self.quantity is None
                or self.quantity == context.quantity
            )
            and (
                self.slew_index is None
                or self.slew_index == context.slew_index
            )
            and (
                self.load_index is None
                or self.load_index == context.load_index
            )
        )


@dataclass
class FaultPlan:
    """A set of rules plus the mutable state of one injected run."""

    rules: tuple[FaultRule, ...]
    arcs_completed: int = 0
    kills_fired: int = field(default=0)

    def __init__(self, rules: Sequence[FaultRule]) -> None:
        self.rules = tuple(rules)
        self.arcs_completed = 0
        self.kills_fired = 0

    def rules_of_kind(self, kind: str) -> tuple[FaultRule, ...]:
        return tuple(rule for rule in self.rules if rule.kind == kind)


_ACTIVE: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    """The currently injected plan, if any."""
    return _ACTIVE


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate ``plan`` for the duration of the ``with`` block."""
    # Deliberate process-local activation: each parallel worker must
    # activate its own plan (DESIGN.md "Parallel-readiness rules").
    global _ACTIVE  # repro-lint: disable=PAR003
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous


def _context_seed(context: FitContext) -> int:
    """Deterministic RNG seed derived from the arc-condition identity."""
    digest = hashlib.sha256(context.condition.encode()).digest()
    return int.from_bytes(digest[:8], "little")


def corrupt_samples(
    context: FitContext, samples: np.ndarray
) -> np.ndarray:
    """Apply matching ``nan_samples`` rules; returns samples unchanged
    when no plan is active or nothing matches."""
    plan = _ACTIVE
    if plan is None:
        return samples
    out = samples
    for rule in plan.rules_of_kind("nan_samples"):
        if not rule.matches(context):
            continue
        if out is samples:
            out = np.array(samples, dtype=float, copy=True)
        count = max(1, int(round(rule.nan_fraction * out.size)))
        rng = np.random.default_rng(_context_seed(context))
        indices = rng.choice(out.size, size=count, replace=False)
        out[indices] = np.nan
    return out


def fit_should_fail(
    context: FitContext | None, rung: str
) -> str | None:
    """Message when an ``em_failure`` rule forces ``rung`` to fail."""
    plan = _ACTIVE
    if plan is None or context is None:
        return None
    for rule in plan.rules_of_kind("em_failure"):
        if rule.matches(context) and rung in rule.rungs:
            return (
                f"injected EM non-convergence on {context.condition} "
                f"(rung {rung})"
            )
    return None


def export_truncate_bytes() -> int | None:
    """Byte cap when an ``export_truncate`` rule is active, else None.

    Export faults are file-level, not arc-level, so the arc-condition
    selectors of the rule are ignored.
    """
    plan = _ACTIVE
    if plan is None:
        return None
    for rule in plan.rules_of_kind("export_truncate"):
        return rule.truncate_bytes
    return None


def export_fsync_error() -> str | None:
    """Message when an ``export_fsync`` rule forces fsync to fail."""
    plan = _ACTIVE
    if plan is None:
        return None
    for rule in plan.rules_of_kind("export_fsync"):
        return "injected fsync failure on export"
    return None


def arc_completed() -> None:
    """Count one completed arc; raise :class:`InjectedKill` when a
    ``kill`` rule's threshold is reached."""
    plan = _ACTIVE
    if plan is None:
        return
    plan.arcs_completed += 1
    for rule in plan.rules_of_kind("kill"):
        if plan.arcs_completed == rule.after_arcs:
            plan.kills_fired += 1
            raise InjectedKill(
                f"injected kill after {plan.arcs_completed} arcs"
            )
