"""Logging-based progress reporting for long-running pipelines.

Characterisation and the experiment drivers used to announce progress
with bare ``print`` calls, which cannot be silenced, captured or routed
by embedding applications.  This module funnels all progress lines
through the ``repro.progress`` logger instead: libraries emit, the CLI
(or any host application) decides whether and where they appear.
"""

from __future__ import annotations

import logging
import sys
from typing import IO

__all__ = [
    "PROGRESS_LOGGER_NAME",
    "ProgressReporter",
    "configure_progress_logging",
    "progress_logger",
]

#: Name of the logger every progress line goes through.
PROGRESS_LOGGER_NAME = "repro.progress"

#: Marker attribute identifying handlers installed by this module, so
#: repeated CLI invocations do not stack duplicate handlers.
_HANDLER_MARK = "_repro_progress_handler"


def progress_logger() -> logging.Logger:
    """The shared progress logger."""
    return logging.getLogger(PROGRESS_LOGGER_NAME)


class ProgressReporter:
    """Emit progress lines through the shared progress logger.

    Attributes:
        enabled: When False every call is a no-op, mirroring the old
            ``progress=False`` behaviour without ``if`` guards at every
            call site.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        logger: logging.Logger | None = None,
    ) -> None:
        self.enabled = enabled
        self.logger = logger or progress_logger()

    def info(self, message: str, *args: object) -> None:
        """Report one progress line (printf-style lazy formatting)."""
        if self.enabled:
            self.logger.info(message, *args)

    @classmethod
    def from_flag(cls, progress: bool) -> "ProgressReporter":
        """Reporter matching a legacy ``progress: bool`` argument."""
        return cls(enabled=progress)


def configure_progress_logging(
    stream: IO[str] | None = None, level: int = logging.INFO
) -> logging.Handler:
    """Attach a plain-text handler to the progress logger.

    Idempotent: a handler installed by a previous call is reused, so
    CLI subcommands can call this unconditionally.

    Args:
        stream: Destination stream; defaults to ``sys.stderr`` so
            progress never interleaves with report output on stdout.
        level: Minimum level shown.

    Returns:
        The installed (or reused) handler.
    """
    logger = progress_logger()
    logger.setLevel(level)
    for handler in logger.handlers:
        if getattr(handler, _HANDLER_MARK, False):
            return handler
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter("%(message)s"))
    setattr(handler, _HANDLER_MARK, True)
    logger.addHandler(handler)
    logger.propagate = False
    return handler
