"""Pool worker: claim, compute, checkpoint, repeat.

A worker is a spawned process (``multiprocessing`` spawn context — no
inherited RNG state, no forked locks) that receives a picklable
:class:`WorkerSpec`, walks its content-key shard first, then steals
any still-incomplete items other workers have not claimed.  Each item
is executed at most once across the whole pool: the claim file is the
lock, the content-addressed checkpoint entry is the result, and the
pool journal records who actually computed what.

Per-worker randomness (the steal-order shuffle that decorrelates
workers racing on the same leftovers) comes from a dedicated stream
derived from ``(run seed, worker id)`` — never from OS entropy — so a
re-run schedules identically.  The shuffle is output-neutral: results
are content-addressed and assembled in serial order by the parent.

Exit codes carry the error family (the same codes the CLI uses, from
:data:`repro.errors.EXIT_CODES`), plus two pool-specific codes:
:data:`EXIT_KILLED` (75, ``EX_TEMPFAIL``) for an injected/simulated
kill — retryable, claims deliberately left behind — and
:data:`EXIT_CRASH` (70, ``EX_SOFTWARE``) for an unexpected exception.
"""

from __future__ import annotations

import os
import socket
import sys
import time
from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError, exit_code_for
from repro.runtime import faults, fsfaults, telemetry
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.faults import FaultPlan, InjectedKill
from repro.runtime.fsfaults import FsFaultPlan, RetryPolicy
from repro.runtime.pool.claims import (
    DEFAULT_CLAIM_TIMEOUT,
    DEFAULT_SKEW_TOLERANCE,
    ClaimStore,
)
from repro.runtime.pool.journal import PoolJournal
from repro.runtime.pool.scheduler import WorkItem, shard_of, shards
from repro.runtime.pool.status import DEFAULT_STATUS_INTERVAL, StatusWriter

__all__ = [
    "EXIT_CRASH",
    "EXIT_KILLED",
    "EXIT_OK",
    "WorkerSpec",
    "execute_item",
    "run_worker",
    "worker_main",
]

EXIT_OK = 0
#: Unexpected non-repro exception escaped the worker (EX_SOFTWARE).
EXIT_CRASH = 70
#: The worker died to an :class:`InjectedKill` (EX_TEMPFAIL —
#: retryable; its claims are deliberately left for reclamation).
EXIT_KILLED = 75


@dataclass(frozen=True)
class WorkerSpec:
    """Everything one spawned worker needs (must pickle).

    Attributes:
        worker_id: This worker's shard index in ``[0, n_workers)``.
        n_workers: Total shard count (the sharding modulus).
        store_dir: Shared checkpoint/claim directory.
        items: The *full* item list; the worker derives its own shard.
        claim_timeout: Claim staleness threshold in seconds.
        seed: Run seed; the worker RNG stream derives from
            ``(seed, worker_id)``.
        trace_path: Per-worker JSONL trace file (None disables
            telemetry in the worker).
        trace_sample: Span sampling rate forwarded to the worker's
            telemetry session.
        run_id: Pool run id; the worker session tags records with
            ``"<run_id>-wNN"``.
        fault_plan: Fault-injection plan activated inside the worker
            (tests target individual workers with this).
        claim_skew: Clock-skew tolerance forwarded to the worker's
            :class:`ClaimStore` staleness judgements.
        fs_plan: Filesystem fault plan activated inside the worker
            (chaos tests target individual workers with this).
        fs_retry: Transient-filesystem-error retry policy installed in
            the worker process (None keeps the process default).
        status_interval: Minimum seconds between live-status heartbeat
            rewrites (``pool-status-wNN.json``; see
            :mod:`repro.runtime.pool.status`).
    """

    worker_id: int
    n_workers: int
    store_dir: str
    items: tuple[WorkItem, ...]
    claim_timeout: float = DEFAULT_CLAIM_TIMEOUT
    seed: int = 0
    trace_path: str | None = None
    trace_sample: float = 1.0
    run_id: str | None = None
    fault_plan: FaultPlan | None = field(default=None)
    claim_skew: float = DEFAULT_SKEW_TOLERANCE
    fs_plan: FsFaultPlan | None = field(default=None)
    fs_retry: RetryPolicy | None = field(default=None)
    status_interval: float = DEFAULT_STATUS_INTERVAL


def execute_item(
    item: WorkItem,
    store: CheckpointStore,
    claims: ClaimStore,
    journal: PoolJournal,
    worker: str,
) -> bool:
    """Claim and compute one item; True when it is complete on disk.

    Returns False when a live foreign claim blocked the attempt.  On
    an :class:`InjectedKill` the claims are *not* released — the point
    of the injection is to leave the crash debris (stale claim, no
    payload) that reclamation is tested against, exactly as a real
    SIGKILL would.
    """
    if store.contains(item.token):
        return True
    if not claims.acquire(item.token, companions=item.companions):
        return False
    held = (item.token, *item.companions)
    try:
        with claims.hold(held):
            # Re-check after winning the claim: the previous owner may
            # have finished the payload before abandoning the claim.
            if not store.contains(item.token):
                tags: dict[str, object] = {"label": item.label}
                if item.group:
                    tags["group"] = item.group
                with telemetry.span("pool.item", **tags):
                    payload = item.task(store, *item.args)
                store.save(item.token, payload)
                record: dict[str, object] = {}
                if item.group:
                    record["group"] = item.group
                journal.append(
                    "task",
                    key=item.key,
                    label=item.label,
                    worker=worker,
                    host=socket.gethostname(),
                    pid=os.getpid(),
                    ts=time.time(),
                    **record,
                )
                telemetry.counter_inc("pool.items_computed")
    except InjectedKill:
        raise  # simulated hard death: leave the claims in place
    except BaseException:
        claims.release(held)
        raise
    claims.release(held)
    return True


def _drain(
    spec: WorkerSpec,
    store: CheckpointStore,
    claims: ClaimStore,
    journal: PoolJournal,
    rng: np.random.Generator,
    status: StatusWriter,
) -> ReproError | None:
    """Own shard first, then steal; returns the first terminal error.

    The loop exits when every item is complete, when a sweep makes no
    progress (everything left is live-claimed by someone else — their
    owner or the parent sweep will finish it), or on the first
    :class:`ReproError` (fail fast, like the serial path; the parent
    sweep re-raises it with full context).
    """
    mine = shards(spec.items, spec.n_workers)[spec.worker_id]
    others = [
        item
        for item in spec.items
        if shard_of(item, spec.n_workers) != spec.worker_id
    ]
    # Decorrelate racing stealers with the per-worker stream; the
    # completion *set* — not the visit order — determines the output.
    order = list(mine) + [
        others[index] for index in rng.permutation(len(others))
    ]
    incomplete = {item.token for item in order}
    worker = f"w{spec.worker_id:02d}"
    while incomplete:
        progressed = False
        for item in order:
            if item.token not in incomplete:
                continue
            status.update("working", item=item.label)
            try:
                done = execute_item(item, store, claims, journal, worker)
            except ReproError as error:
                telemetry.counter_inc("pool.item_errors")
                return error
            if done:
                status.advance()
                incomplete.discard(item.token)
                progressed = True
        if not progressed:
            break  # leftovers are live-claimed elsewhere
    return None


def run_worker(spec: WorkerSpec) -> int:
    """In-process worker body; returns the process exit code."""
    if spec.fs_retry is not None:
        fsfaults.set_retry_policy(spec.fs_retry)
    store = CheckpointStore(spec.store_dir, reuse=True)
    claims = ClaimStore(
        spec.store_dir,
        timeout=spec.claim_timeout,
        skew_tolerance=spec.claim_skew,
        owner=(
            f"{socket.gethostname()}:{os.getpid()}"
            f":w{spec.worker_id:02d}"
        ),
    )
    journal = PoolJournal(
        spec.store_dir,
        defaults={"run": spec.run_id} if spec.run_id else None,
    )
    status = StatusWriter(
        spec.store_dir,
        f"w{spec.worker_id:02d}",
        interval=spec.status_interval,
    )
    rng = np.random.default_rng(
        np.random.SeedSequence([spec.seed, spec.worker_id])
    )
    session = None
    if spec.trace_path:
        run_id = spec.run_id or "pool"
        session = telemetry.TelemetrySession(
            trace_path=spec.trace_path,
            run_id=f"{run_id}-w{spec.worker_id:02d}",
            sample=spec.trace_sample,
        )
    plan_context = (
        faults.inject(spec.fault_plan)
        if spec.fault_plan is not None
        else nullcontext()
    )
    fs_context = (
        fsfaults.inject_fs(spec.fs_plan)
        if spec.fs_plan is not None
        else nullcontext()
    )
    telemetry_context = (
        telemetry.activate(session)
        if session is not None
        else nullcontext()
    )
    error: ReproError | None = None
    try:
        with plan_context, fs_context, telemetry_context, telemetry.span(
            "pool.worker",
            worker=spec.worker_id,
            n_workers=spec.n_workers,
            n_items=len(spec.items),
        ):
            error = _drain(spec, store, claims, journal, rng, status)
    except InjectedKill:
        # A real SIGKILL would leave a truncated trace; flushing here
        # is a concession to inspectability — the *protocol* debris
        # (stale claims, missing payload) is identical either way.
        # The status file is deliberately NOT finalised: a killed
        # worker's last heartbeat stays "working" and goes stale,
        # which is exactly what `repro status` should show.
        if session is not None:
            session.close()
        return EXIT_KILLED
    except ReproError as terminal:
        status.close("error")
        if session is not None:
            session.close()
        return exit_code_for(terminal)
    except Exception:
        status.close("error")
        if session is not None:
            session.close()
        return EXIT_CRASH
    status.close("error" if error is not None else "done")
    if session is not None:
        session.close()
    if error is not None:
        return exit_code_for(error)
    return EXIT_OK


def worker_main(spec: WorkerSpec) -> None:
    """Spawn-process entry point."""
    sys.exit(run_worker(spec))
