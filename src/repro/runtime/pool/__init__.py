"""Parallel characterization pool: claims, sharding, workers.

Splits a characterization run across worker processes (and across
hosts sharing one checkpoint directory) without ever computing an item
twice or changing a single output byte relative to the serial run.

- :mod:`repro.runtime.pool.claims` — ``O_EXCL`` claim files with
  heartbeats and stale-claim reclamation (the cross-process mutex);
- :mod:`repro.runtime.pool.scheduler` — deterministic content-key
  sharding of :class:`WorkItem` lists;
- :mod:`repro.runtime.pool.journal` — append-only who-computed-what
  record backing the "never twice" invariant;
- :mod:`repro.runtime.pool.worker` — spawned worker lifecycle with
  per-error-family exit codes;
- :mod:`repro.runtime.pool.pool` — orchestration: spawn, respawn,
  parent sweep, trace merge;
- :mod:`repro.runtime.pool.status` — live run status: heartbeat
  files, run metadata, the ``repro status`` progress reader.

Submodules load lazily (PEP 562): importing the package costs nothing
until a name is touched, and ``pool.pool`` can lazily reach back into
:mod:`repro.runtime.checkpoint` without a cycle.
"""

from __future__ import annotations

from types import MappingProxyType

__all__ = [
    "ClaimInfo",
    "ClaimStore",
    "DEFAULT_CLAIM_TIMEOUT",
    "DEFAULT_STATUS_INTERVAL",
    "EXIT_CRASH",
    "EXIT_KILLED",
    "EXIT_OK",
    "JOURNAL_FILENAME",
    "META_FILENAME",
    "PoolConfig",
    "PoolJournal",
    "PoolResult",
    "PoolStatus",
    "StatusWriter",
    "WorkItem",
    "WorkerSpec",
    "WorkerStatus",
    "exit_family",
    "finalize_pool_meta",
    "read_pool_status",
    "render_status",
    "run_pool",
    "run_worker",
    "shard_of",
    "shards",
    "worker_main",
    "write_pool_meta",
]

#: Exported name -> defining submodule (read-only by construction).
_EXPORTS = MappingProxyType(
    {
        "ClaimInfo": "repro.runtime.pool.claims",
        "ClaimStore": "repro.runtime.pool.claims",
        "DEFAULT_CLAIM_TIMEOUT": "repro.runtime.pool.claims",
        "DEFAULT_STATUS_INTERVAL": "repro.runtime.pool.status",
        "EXIT_CRASH": "repro.runtime.pool.worker",
        "EXIT_KILLED": "repro.runtime.pool.worker",
        "EXIT_OK": "repro.runtime.pool.worker",
        "JOURNAL_FILENAME": "repro.runtime.pool.journal",
        "META_FILENAME": "repro.runtime.pool.status",
        "PoolConfig": "repro.runtime.pool.pool",
        "PoolJournal": "repro.runtime.pool.journal",
        "PoolResult": "repro.runtime.pool.pool",
        "PoolStatus": "repro.runtime.pool.status",
        "StatusWriter": "repro.runtime.pool.status",
        "WorkItem": "repro.runtime.pool.scheduler",
        "WorkerSpec": "repro.runtime.pool.worker",
        "WorkerStatus": "repro.runtime.pool.status",
        "exit_family": "repro.runtime.pool.pool",
        "finalize_pool_meta": "repro.runtime.pool.status",
        "read_pool_status": "repro.runtime.pool.status",
        "render_status": "repro.runtime.pool.status",
        "run_pool": "repro.runtime.pool.pool",
        "run_worker": "repro.runtime.pool.worker",
        "shard_of": "repro.runtime.pool.scheduler",
        "shards": "repro.runtime.pool.scheduler",
        "worker_main": "repro.runtime.pool.worker",
        "write_pool_meta": "repro.runtime.pool.status",
    }
)


def __getattr__(name: str) -> object:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(__all__)
