"""Pool orchestration: spawn workers, survive their deaths, finish.

:func:`run_pool` drives one parallel computation over a shared
checkpoint directory:

1. validate and shard the items by content key;
2. spawn ``n_workers`` processes (spawn context) that drain their
   shards and steal leftovers, coordinating only through claim files;
3. join them and aggregate their exit codes per error family;
4. if workers died retryably (injected kill, crash, signal) and items
   remain, respawn a fresh round **without** fault plans — the
   replacement workers reclaim the dead owners' claims;
5. run the *parent sweep*: the parent itself claims and computes
   anything still missing (the guarantee that a pool whose every
   worker died still terminates with a complete store), waiting out
   live foreign claims (another pool racing on the same directory)
   rather than duplicating their work;
6. optionally merge the per-worker JSONL traces into one worker-tagged
   trace file (the "automatic merge at pool shutdown").

Determinism: the pool's only output is the set of content-addressed
checkpoint entries, and every entry's bytes are a pure function of its
token (same code path as the serial run, per-condition seeds derived
from the run seed).  Scheduling, stealing, respawns and races change
*who* computes an entry, never *what* is computed — so a parallel run
is byte-identical to the serial run by construction.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import socket
import time
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from pathlib import Path
from types import MappingProxyType

from repro.errors import EXIT_CODES, ParameterError
from repro.runtime import faults, fsfaults, telemetry
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.faults import FaultPlan
from repro.runtime.fsfaults import FsFaultPlan, RetryPolicy
from repro.runtime.pool.claims import (
    DEFAULT_CLAIM_TIMEOUT,
    DEFAULT_SKEW_TOLERANCE,
    ClaimStore,
)
from repro.runtime.pool.journal import PoolJournal
from repro.runtime.pool.scheduler import WorkItem, shards
from repro.runtime.pool.status import (
    DEFAULT_STATUS_INTERVAL,
    StatusWriter,
    finalize_pool_meta,
    write_pool_meta,
)
from repro.runtime.pool.worker import (
    EXIT_CRASH,
    EXIT_KILLED,
    EXIT_OK,
    WorkerSpec,
    execute_item,
    worker_main,
)

__all__ = ["PoolConfig", "PoolResult", "run_pool"]

#: Exit code -> error-family label for aggregation (read-only).
_FAMILY_BY_CODE = MappingProxyType(
    {
        EXIT_OK: "ok",
        1: "ReproError",
        EXIT_CRASH: "crash",
        EXIT_KILLED: "injected-kill",
        **{code: klass.__name__ for klass, code in EXIT_CODES.items()},
    }
)

#: Exit codes worth respawning replacement workers for: the worker
#: died (not: the work itself fails deterministically).
_RETRYABLE_CODES = frozenset({EXIT_KILLED, EXIT_CRASH})


def exit_family(code: int) -> str:
    """Human label for one worker exit code."""
    if code < 0:
        return f"signal-{-code}"
    return _FAMILY_BY_CODE.get(code, f"exit-{code}")


@dataclass(frozen=True)
class PoolConfig:
    """Knobs of one pool run.

    Attributes:
        n_workers: Worker process count (>= 1).
        claim_timeout: Claim staleness threshold in seconds.
        seed: Run seed; per-worker RNG streams derive from it.
        run_id: Stable id for worker trace naming; derived from the
            parent pid/time when omitted.
        trace_dir: Directory for per-worker JSONL traces (None
            disables worker telemetry).
        trace_sample: Span sampling rate for worker sessions.
        fault_plans: Per-worker-id fault plans (tests kill *one*
            worker with ``{0: plan}``).  When None, the parent's
            active plan — if any — is forwarded to every worker.
        fs_fault_plans: Per-worker-id filesystem fault plans (the
            chaos harness storms *specific* workers).  When None, the
            parent's active fs plan — if any — is forwarded to every
            first-round worker; replacement rounds always run clean.
        fs_retry: Transient-filesystem-error retry policy installed
            in every worker.  When None, workers inherit the parent's
            process-wide policy at spawn time.
        claim_skew: Cross-host clock-skew tolerance (seconds) added
            to the claim timeout in every liveness judgement.
        respawn: How many replacement rounds to spawn when workers
            die retryably with items still missing.
        poll_interval: Parent-sweep wait between attempts on a live
            foreign claim, in seconds.
        merge_traces: Merge worker traces at shutdown into
            ``trace-<run_id>-merged.jsonl`` (callers that fold the
            worker traces into a bigger merge themselves turn this
            off).
        status_interval: Minimum seconds between a worker's live
            status-file rewrites (``repro status`` reads these; see
            :mod:`repro.runtime.pool.status`).
    """

    n_workers: int = 2
    claim_timeout: float = DEFAULT_CLAIM_TIMEOUT
    seed: int = 0
    run_id: str | None = None
    trace_dir: str | None = None
    trace_sample: float = 1.0
    fault_plans: Mapping[int, FaultPlan] | None = None
    fs_fault_plans: Mapping[int, FsFaultPlan] | None = None
    fs_retry: RetryPolicy | None = None
    claim_skew: float = DEFAULT_SKEW_TOLERANCE
    respawn: int = 1
    poll_interval: float = 0.05
    merge_traces: bool = True
    status_interval: float = DEFAULT_STATUS_INTERVAL


@dataclass
class PoolResult:
    """What one :func:`run_pool` call did.

    Attributes:
        run_id: The pool run id (worker traces embed it).
        n_items: Item count of the run.
        exit_codes: Worker exit codes, first round, worker order.
        respawn_exit_codes: Exit codes of replacement rounds.
        exit_families: ``family label -> count`` over all rounds.
        respawned: Replacement workers spawned.
        parent_computed: Items the parent sweep computed itself.
        invalidated: Entries dropped up front for a fresh
            (``reuse=False``) run.
        reclaimed: Stale/dead claims the parent sweep reclaimed.
        worker_traces: Per-worker trace files that exist on disk.
        merged_trace: Path of the auto-merged worker trace, if made.
    """

    run_id: str
    n_items: int
    exit_codes: tuple[int, ...] = ()
    respawn_exit_codes: tuple[int, ...] = ()
    exit_families: dict[str, int] = field(default_factory=dict)
    respawned: int = 0
    parent_computed: int = 0
    invalidated: int = 0
    reclaimed: int = 0
    worker_traces: tuple[str, ...] = ()
    merged_trace: str | None = None


def _spawn_round(
    items: tuple[WorkItem, ...],
    store_dir: str,
    config: PoolConfig,
    run_id: str,
    round_index: int,
) -> tuple[tuple[int, ...], tuple[str, ...]]:
    """Spawn one round of workers over ``items``; join them all."""
    context = multiprocessing.get_context("spawn")
    specs = []
    for worker_id in range(config.n_workers):
        trace_path = None
        if config.trace_dir is not None:
            suffix = f"-r{round_index}" if round_index else ""
            trace_path = str(
                Path(config.trace_dir)
                / f"trace-{run_id}{suffix}-w{worker_id:02d}.jsonl"
            )
        plan = None
        fs_plan = None
        if round_index == 0:
            # Replacement rounds run clean: the plan already did its
            # damage and a retry is supposed to recover from it.
            if config.fault_plans is not None:
                plan = config.fault_plans.get(worker_id)
            else:
                plan = faults.active_plan()
            if config.fs_fault_plans is not None:
                fs_plan = config.fs_fault_plans.get(worker_id)
            else:
                fs_plan = fsfaults.active_fs_plan()
        specs.append(
            WorkerSpec(
                worker_id=worker_id,
                n_workers=config.n_workers,
                store_dir=store_dir,
                items=items,
                claim_timeout=config.claim_timeout,
                claim_skew=config.claim_skew,
                seed=config.seed,
                trace_path=trace_path,
                trace_sample=config.trace_sample,
                run_id=run_id,
                fault_plan=plan,
                fs_plan=fs_plan,
                fs_retry=config.fs_retry or fsfaults.retry_policy(),
                status_interval=config.status_interval,
            )
        )
    processes = [
        context.Process(
            target=worker_main,
            args=(spec,),
            name=f"repro-pool-w{spec.worker_id:02d}",
        )
        for spec in specs
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join()
    exit_codes = tuple(
        process.exitcode if process.exitcode is not None else EXIT_CRASH
        for process in processes
    )
    traces = tuple(
        spec.trace_path
        for spec in specs
        if spec.trace_path and os.path.exists(spec.trace_path)
    )
    return exit_codes, traces


def _parent_sweep(
    items: tuple[WorkItem, ...],
    pool_store: CheckpointStore,
    config: PoolConfig,
    journal: PoolJournal,
) -> tuple[int, int]:
    """Finish whatever the workers left; returns (computed, reclaimed).

    Items live-claimed by a foreign owner (a racing pool) are waited
    out — either their payload appears or their claim goes stale and
    the parent takes it — so the sweep terminates with every item's
    payload on disk, whoever produced it.
    """
    claims = ClaimStore(
        pool_store.directory,
        timeout=config.claim_timeout,
        skew_tolerance=config.claim_skew,
        owner=f"{socket.gethostname()}:{os.getpid()}:parent",
    )
    status = StatusWriter(
        pool_store.directory, "parent", interval=config.status_interval
    )
    writes_before = pool_store.writes
    for item in items:
        status.update("sweeping", item=item.label)
        while True:
            if execute_item(item, pool_store, claims, journal, "parent"):
                break
            time.sleep(config.poll_interval)
        status.advance()
    status.close("done")
    return pool_store.writes - writes_before, claims.reclaimed


def run_pool(
    items: Iterable[WorkItem],
    store: CheckpointStore,
    config: PoolConfig,
) -> PoolResult:
    """Compute every item's payload into ``store``; see module docs.

    Raises:
        ParameterError: On invalid configuration or duplicate tokens.
        ReproError: Whatever a deterministically failing item raises —
            re-raised from the parent or repair sweep with serial
            semantics.
    """
    sequence = tuple(items)
    if config.n_workers < 1:
        raise ParameterError(
            f"pool needs n_workers >= 1, got {config.n_workers}"
        )
    for label, plans in (
        ("fault_plans", config.fault_plans),
        ("fs_fault_plans", config.fs_fault_plans),
    ):
        if plans is None:
            continue
        unknown = [
            worker_id
            for worker_id in plans
            if not 0 <= worker_id < config.n_workers
        ]
        if unknown:
            raise ParameterError(
                f"{label} target unknown worker ids {unknown}"
            )
    run_id = config.run_id or hashlib.sha256(
        f"{os.getpid()}|{time.time_ns()}".encode()
    ).hexdigest()[:12]
    result = PoolResult(run_id=run_id, n_items=len(sequence))
    if not sequence:
        return result
    shards(sequence, config.n_workers)  # validates duplicate tokens
    # The pool always *reads* existing entries (content-addressed ==
    # identical bytes); fresh-run semantics are honoured by dropping
    # this run's entries up front instead.
    pool_store = (
        store
        if store.reuse
        else CheckpointStore(store.directory, reuse=True)
    )
    if not store.reuse:
        result.invalidated = pool_store.invalidate(
            token
            for item in sequence
            for token in (item.token, *item.companions)
        )
    journal = PoolJournal(
        pool_store.directory, defaults={"run": run_id}
    )
    store_dir = str(pool_store.directory)
    try:
        write_pool_meta(
            store_dir,
            run_id=run_id,
            n_items=len(sequence),
            n_workers=config.n_workers,
            seed=config.seed,
        )
    except OSError:
        # Metadata is observability; a flaky mount losing it costs
        # `repro status` its denominator, never the run.
        telemetry.counter_inc("pool.status_write_errors")

    with telemetry.span(
        "pool.run",
        stage="pool",
        n_items=len(sequence),
        n_workers=config.n_workers,
    ):
        exit_codes, traces = _spawn_round(
            sequence, store_dir, config, run_id, round_index=0
        )
        result.exit_codes = exit_codes
        all_codes = list(exit_codes)
        all_traces = list(traces)
        round_index = 0
        while (
            round_index < config.respawn
            and any(
                code in _RETRYABLE_CODES or code < 0
                for code in all_codes
            )
            and pool_store.missing(
                item.token for item in sequence
            )
        ):
            round_index += 1
            respawn_codes, respawn_traces = _spawn_round(
                sequence, store_dir, config, run_id, round_index
            )
            result.respawn_exit_codes += respawn_codes
            result.respawned += config.n_workers
            all_codes.extend(respawn_codes)
            all_traces.extend(respawn_traces)
        computed, reclaimed = _parent_sweep(
            sequence, pool_store, config, journal
        )
        result.parent_computed = computed
        result.reclaimed = reclaimed
    # Post-sweep integrity pass.  The sweep guarantees every item was
    # *executed*, but a hostile filesystem can still leave an entry
    # torn (checksum-quarantined on load) or temporarily invisible
    # (NFS close-to-open).  Only a failed *load* convicts an entry —
    # a bare existence probe lies both ways on a stale mount — and a
    # convicted item is recomputed in-parent: a corrupt cache entry
    # costs a recompute, never the run.  An item that is genuinely
    # uncomputable raises its own ReproError out of the repair sweep,
    # with the same serial semantics as the main sweep.
    invalid = tuple(
        item
        for item in sequence
        if pool_store.load(item.token) is None
    )
    if invalid:
        repaired, reclaimed = _parent_sweep(
            invalid, pool_store, config, journal
        )
        result.parent_computed += repaired
        result.reclaimed += reclaimed
        telemetry.counter_inc("pool.repaired", len(invalid))
    families: dict[str, int] = {}
    for code in all_codes:
        label = exit_family(code)
        families[label] = families.get(label, 0) + 1
    result.exit_families = families
    result.worker_traces = tuple(all_traces)
    try:
        finalize_pool_meta(store_dir)
    except OSError:
        telemetry.counter_inc("pool.status_write_errors")

    telemetry.gauge_set("pool.workers", config.n_workers)
    groups = {item.group for item in sequence if item.group}
    if groups:
        telemetry.gauge_set("pool.groups", len(groups))
    telemetry.counter_inc("pool.items", len(sequence))
    telemetry.counter_inc("pool.parent_computed", computed)
    telemetry.counter_inc("pool.reclaimed", reclaimed)
    if result.respawned:
        telemetry.counter_inc("pool.respawned", result.respawned)
    for label, count in sorted(families.items()):
        telemetry.counter_inc(f"pool.worker_exit.{label}", count)

    if config.merge_traces and result.worker_traces:
        from repro.runtime.telemetry.merge import merge_trace_files

        merged = str(
            Path(config.trace_dir or store_dir)
            / f"trace-{run_id}-merged.jsonl"
        )
        merge_trace_files(result.worker_traces, merged)
        result.merged_trace = merged
    return result
