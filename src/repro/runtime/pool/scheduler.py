"""Deterministic work scheduling for the characterisation pool.

A :class:`WorkItem` names one unit of pool work: a content token (the
claim lock and the checkpoint key its payload lands under), a picklable
task callable, and any companion tokens the task writes along the way.

Sharding is by *content key*, not by list position or worker count
alone: ``shard_of`` hashes are stable across runs, hosts and Python
processes because the key is the checkpoint store's sha256 of the
token.  The assignment therefore never depends on arrival order, and —
more importantly — the *output* never depends on the assignment at
all: every payload is content-addressed, so whichever worker computes
an item produces the byte-identical entry a serial run would have
produced, and the parent assembles results in serial order regardless
of who computed what.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

from repro.errors import ParameterError
from repro.runtime.checkpoint import CheckpointStore

__all__ = ["WorkItem", "shard_of", "shards"]


@dataclass(frozen=True)
class WorkItem:
    """One claimable unit of pool work.

    Attributes:
        token: Content token; its store key is both the claim-file
            name and the checkpoint key of the task's payload.
        label: Human-readable label (``"INV_X1/A"``) for journals,
            spans and progress lines.
        task: Top-level picklable callable executed as
            ``task(store, *args)``; its return value is saved under
            ``token``.  Must be importable in a spawned worker.
        args: Positional arguments (must pickle under spawn).
        companions: Additional tokens the task writes (e.g. per-arc
            Monte-Carlo checkpoints); claimed alongside ``token``.
        group: Assembly-group label for sub-pin work units — the
            per-pin LUT a grid-point payload folds into during the
            parent's two-level assembly.  Empty when the item is its
            own assembly unit (pin granularity).  Scheduling ignores
            it; journals and spans record it so a merged trace can be
            grouped back into pins.
    """

    token: str
    label: str
    task: Callable[..., object]
    args: tuple = ()
    companions: tuple[str, ...] = field(default=())
    group: str = ""

    @property
    def key(self) -> str:
        """Content-addressed store key of this item's payload."""
        return CheckpointStore.key_of(self.token)


def shard_of(item: WorkItem, n_workers: int) -> int:
    """Stable worker index for ``item`` among ``n_workers`` shards."""
    if n_workers < 1:
        raise ParameterError(
            f"n_workers must be >= 1, got {n_workers}"
        )
    return int(item.key[:16], 16) % n_workers


def shards(
    items: Sequence[WorkItem] | Iterable[WorkItem], n_workers: int
) -> tuple[tuple[WorkItem, ...], ...]:
    """Partition items into per-worker shards by content key.

    Raises:
        ParameterError: On duplicate content keys — two items mapping
            to the same checkpoint key would race each other's claim
            and payload.  (Keys are sha256 of the token, so in
            practice this means duplicate tokens.)
    """
    sequence = tuple(items)
    seen: dict[str, str] = {}
    for item in sequence:
        other = seen.get(item.key)
        if other is not None:
            raise ParameterError(
                f"duplicate work-item content key: {item.label!r} "
                f"collides with {other!r}"
            )
        seen[item.key] = item.label
    buckets: list[list[WorkItem]] = [[] for _ in range(n_workers)]
    for item in sequence:
        buckets[shard_of(item, n_workers)].append(item)
    return tuple(tuple(bucket) for bucket in buckets)
