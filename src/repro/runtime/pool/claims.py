"""Claim-file protocol: advisory per-item locks on a checkpoint store.

Parallel characterisation workers coordinate through the shared
checkpoint directory alone — no sockets, no manager process — so a
pool can span processes and (over a shared filesystem) hosts.  The
unit of coordination is a *claim file* next to the checkpoint entry it
protects: ``<key>.claim`` for the store's ``<key>.ckpt``.

The protocol:

- **Acquire** creates the claim with ``os.open(O_CREAT|O_EXCL)`` — the
  one filesystem primitive that is atomic on local filesystems and on
  NFS (v3+) alike, which is why the pool's multi-host story requires a
  locally-mounted or NFS-with-``O_EXCL`` directory.  The file body
  records the owner (host, pid, label) as JSON.
- **Heartbeat** touches the claim's mtime while the owner is working
  (:meth:`ClaimStore.hold` runs a daemon thread doing this), so a
  long-running fit does not look abandoned.
- **Liveness**: a claim is live while its mtime is younger than the
  store timeout; a same-host claim whose pid no longer exists is dead
  immediately (``os.kill(pid, 0)``), so a crashed worker's items are
  reclaimed without waiting out the timeout.
- **Reclaim**: acquiring over a stale/dead claim unlinks it and
  retries the ``O_EXCL`` race — when two reclaimers collide, exactly
  one wins the re-create.

Claims are advisory: the checkpoint store itself never requires them,
but :meth:`CheckpointStore.gc` respects them (a live claim protects
its entry from eviction) and the worker pool never simulates an item
whose claim it could not take.

Shared-mount hardening: all claim reads, stats, listings and the
``O_EXCL`` create route through the :mod:`repro.runtime.fsfaults`
seam, so transient ``EIO``/``ESTALE``/``ENOSPC`` are retried with
bounded backoff instead of mis-reading a live claim as dead.
Staleness judgements add a configurable ``skew_tolerance`` on top of
the timeout, because raw ``time.time() - mtime`` deltas lie when the
heartbeating host's clock drifts from ours (NFS stores the *server's*
idea of mtime).  In the worst case a duplicated claim only costs
duplicated work: payloads are content-addressed, so two owners
computing the same item write byte-identical entries.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from collections.abc import Iterable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ParameterError
from repro.runtime import fsfaults
from repro.runtime.checkpoint import CheckpointStore

__all__ = [
    "DEFAULT_CLAIM_TIMEOUT",
    "DEFAULT_SKEW_TOLERANCE",
    "ClaimInfo",
    "ClaimStore",
]

#: Seconds without a heartbeat after which a claim is presumed
#: abandoned.  Generous: a claim's owner refreshes the mtime several
#: times per timeout window, so only a hard-killed (or unreachable)
#: owner ever lets a claim go stale.
DEFAULT_CLAIM_TIMEOUT = 600.0

#: Extra seconds of cross-host clock skew tolerated on top of the
#: claim timeout before a claim is judged stale.  NTP-disciplined
#: hosts drift well under this; the cost of being generous is a
#: slightly slower reclaim of a genuinely dead foreign claim.
DEFAULT_SKEW_TOLERANCE = 5.0


@dataclass(frozen=True)
class ClaimInfo:
    """Decoded owner record of one claim file.

    Attributes:
        key: Content-addressed key the claim protects.
        host: Owner's hostname at acquire time.
        pid: Owner's process id.
        owner: Free-form owner label (``"host:pid"`` or worker tag).
        mtime: Last heartbeat (file mtime, epoch seconds).
    """

    key: str
    host: str
    pid: int
    owner: str
    mtime: float


class ClaimStore:
    """Claim files over a checkpoint directory.

    Attributes:
        directory: The shared store root (same as the checkpoint
            store's).
        timeout: Staleness threshold in seconds.
        skew_tolerance: Extra seconds of cross-host clock skew
            tolerated before a claim is judged stale.
        owner: Label written into claims this store acquires.
        acquired: Claims successfully taken by this store.
        contested: Acquire attempts lost to a live foreign claim.
        reclaimed: Stale/dead claims unlinked on the way to acquiring.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        *,
        timeout: float = DEFAULT_CLAIM_TIMEOUT,
        skew_tolerance: float = DEFAULT_SKEW_TOLERANCE,
        owner: str | None = None,
    ) -> None:
        if timeout <= 0:
            raise ParameterError(
                f"claim timeout must be > 0 seconds, got {timeout}"
            )
        if skew_tolerance < 0:
            raise ParameterError(
                f"claim skew tolerance must be >= 0 seconds, "
                f"got {skew_tolerance}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.timeout = float(timeout)
        self.skew_tolerance = float(skew_tolerance)
        self.owner = owner or f"{socket.gethostname()}:{os.getpid()}"
        self.acquired = 0
        self.contested = 0
        self.reclaimed = 0

    # ------------------------------------------------------------------
    # Paths and inspection
    # ------------------------------------------------------------------
    def path_for(self, token: str) -> Path:
        """Claim-file path for a request token."""
        return self.key_path(CheckpointStore.key_of(token))

    def key_path(self, key: str) -> Path:
        """Claim-file path for an already-hashed store key."""
        return self.directory / f"{key}.claim"

    def _read_path(self, path: Path) -> ClaimInfo | None:
        try:
            mtime = fsfaults.stat_mtime(path, op="claim.stat")
            body = json.loads(
                fsfaults.read_text(path, op="claim.read")
            )
        except (OSError, ValueError):
            # Absent, unreadable past the transient-error retries, or
            # a torn/garbage body (foreign files, editor droppings):
            # no decodable claim here.
            return None
        if not isinstance(body, dict):
            return None
        return ClaimInfo(
            key=path.stem,
            host=str(body.get("host", "")),
            pid=int(body.get("pid", 0) or 0),
            owner=str(body.get("owner", "")),
            mtime=mtime,
        )

    def read(self, token: str) -> ClaimInfo | None:
        """Decode the claim for ``token``; None when absent/unreadable."""
        return self._read_path(self.path_for(token))

    def is_live(self, info: ClaimInfo | None) -> bool:
        """Whether a claim still protects its entry.

        Stale mtime (older than the timeout plus the skew tolerance)
        means dead; a same-host claim whose pid no longer exists is
        dead regardless of mtime.  An unreadable/absent claim
        (``None``) is dead.  An mtime *ahead* of our clock (the
        heartbeating host runs fast) is trivially within the window —
        future mtimes never mark a claim dead.
        """
        if info is None:
            return False
        if time.time() - info.mtime > self.timeout + self.skew_tolerance:
            return False
        if info.pid and info.host == socket.gethostname():
            try:
                os.kill(info.pid, 0)
            except ProcessLookupError:
                return False
            except (PermissionError, OSError):
                pass  # exists but not ours — alive
        return True

    def live_claim_for_key(self, key: str) -> ClaimInfo | None:
        """The live claim protecting store key ``key``, if any."""
        info = self._read_path(self.key_path(key))
        return info if self.is_live(info) else None

    def scan(self, *, live_only: bool = False) -> tuple[ClaimInfo, ...]:
        """Decode every claim file in the directory, sorted by key.

        With ``live_only`` the stale/dead ones are filtered out —
        tests and post-run audits use this to assert that a completed
        pool left no claim debris behind (beyond deliberately injected
        kills).
        """
        infos = []
        for path in fsfaults.listdir(
            self.directory, "*.claim", op="claim.list"
        ):
            info = self._read_path(path)
            if info is None:
                continue
            if live_only and not self.is_live(info):
                continue
            infos.append(info)
        return tuple(infos)

    # ------------------------------------------------------------------
    # Acquire / heartbeat / release
    # ------------------------------------------------------------------
    def _acquire_one(self, path: Path) -> bool:
        """Take one claim file; reclaims a stale/dead previous owner."""
        # Two rounds: lose the first O_EXCL to an existing file, judge
        # it dead, unlink, and race the re-create once.  Losing the
        # second round means another reclaimer won — back off.
        body = json.dumps(
            {
                "host": socket.gethostname(),
                "pid": os.getpid(),
                "owner": self.owner,
                "acquired_at": time.time(),
            },
            sort_keys=True,
        )
        for _ in range(2):
            try:
                created = fsfaults.create_exclusive(
                    path, body.encode(), op="claim.create"
                )
            except OSError as error:
                raise ParameterError(
                    f"cannot create claim file {path}: {error}"
                ) from error
            if created:
                self.acquired += 1
                return True
            info = self._read_path(path)
            if self.is_live(info):
                self.contested += 1
                return False
            try:
                path.unlink()
            except OSError:
                pass
            self.reclaimed += 1
        self.contested += 1
        return False

    def acquire(
        self, token: str, companions: Iterable[str] = ()
    ) -> bool:
        """Claim ``token`` (the lock) plus its companion tokens.

        The primary token decides ownership; companions (e.g. the
        rise/fall Monte-Carlo tokens a fitted-pin payload depends on)
        are claimed alongside so gc cannot evict them mid-flight.  A
        live foreign claim on any of them rolls the whole acquisition
        back and returns False.
        """
        if not self._acquire_one(self.path_for(token)):
            return False
        taken = [token]
        for companion in companions:
            if not self._acquire_one(self.path_for(companion)):
                self.release(taken)
                return False
            taken.append(companion)
        return True

    def heartbeat(self, tokens: Iterable[str]) -> None:
        """Refresh the mtime of claims this owner holds."""
        for token in tokens:
            try:
                fsfaults.touch(
                    self.path_for(token), op="claim.heartbeat"
                )
            except OSError:
                pass

    def release(self, tokens: Iterable[str]) -> int:
        """Unlink claims; returns how many existed."""
        released = 0
        for token in tokens:
            try:
                self.path_for(token).unlink()
            except OSError:
                continue
            released += 1
        return released

    @contextmanager
    def hold(self, tokens: tuple[str, ...]) -> Iterator[None]:
        """Heartbeat the given claims for the duration of the block.

        A daemon thread touches the claim files every quarter timeout,
        so a fit that takes longer than the claim timeout still looks
        live to other workers.  The thread dies with the process — a
        killed worker stops heartbeating, which is exactly what lets
        survivors reclaim its items.
        """
        interval = max(self.timeout / 4.0, 0.05)
        stop = threading.Event()

        def _beat() -> None:
            while not stop.wait(interval):
                self.heartbeat(tokens)

        thread = threading.Thread(
            target=_beat, name="repro-claim-heartbeat", daemon=True
        )
        thread.start()
        try:
            yield
        finally:
            stop.set()
            thread.join(timeout=interval + 1.0)
