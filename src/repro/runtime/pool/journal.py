"""Append-only pool journal: who actually computed what.

One ``pool-journal.jsonl`` per store directory records every item a
worker (or the parent sweep) *executed* — cache hits and steals that
found the payload already present are not journalled.  The journal is
therefore the ground truth for the claim protocol's core invariant:
**no item is simulated twice**, even with several pools racing on the
same directory.  Tests assert exactly that; operators read it to see
how work spread across workers and hosts.

Writes go through ``os.open(O_APPEND)`` with a single ``os.write`` per
record, so concurrent processes appending to the same journal cannot
interleave partial lines (POSIX guarantees atomic small appends).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.runtime.telemetry.sinks import read_jsonl

__all__ = ["JOURNAL_FILENAME", "PoolJournal"]

#: Journal file name inside the shared store directory.
JOURNAL_FILENAME = "pool-journal.jsonl"


class PoolJournal:
    """Cross-process append-only event log in a store directory."""

    def __init__(self, directory: str | os.PathLike[str]) -> None:
        self.path = Path(directory) / JOURNAL_FILENAME

    def append(self, event: str, **fields: object) -> None:
        """Append one event record (atomic single-line write)."""
        record: dict[str, object] = {"event": event}
        record.update(fields)
        line = (json.dumps(record, sort_keys=True) + "\n").encode()
        descriptor = os.open(
            self.path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644
        )
        try:
            os.write(descriptor, line)
        finally:
            os.close(descriptor)

    def records(self) -> tuple[dict, ...]:
        """All journal records in append order (empty when absent)."""
        if not self.path.exists():
            return ()
        return tuple(read_jsonl(self.path))

    def events(self, event: str) -> tuple[dict, ...]:
        """Records of one event kind (``"task"``, ``"reclaim"`` ...)."""
        return tuple(
            record
            for record in self.records()
            if record.get("event") == event
        )
