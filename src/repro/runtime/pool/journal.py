"""Append-only pool journal: who actually computed what.

One ``pool-journal.jsonl`` per store directory records every item a
worker (or the parent sweep) *executed* — cache hits and steals that
found the payload already present are not journalled.  The journal is
therefore the ground truth for the claim protocol's core invariant:
**no item is simulated twice**, even with several pools racing on the
same directory.  Tests assert exactly that; operators read it to see
how work spread across workers and hosts.

Writes go through ``os.open(O_APPEND)`` with a single ``os.write`` per
record (via the :mod:`repro.runtime.fsfaults` seam, which retries
transient ``ENOSPC``/``EIO``), so concurrent processes appending to
the same journal cannot interleave partial lines (POSIX guarantees
atomic small appends).  A *crashed* writer can still leave a
truncated trailing line — and under flaky-filesystem torn-write
faults, a truncated line mid-file — so :meth:`PoolJournal.records`
reads leniently, matching the trace-merge reader: undecodable lines
are skipped and counted (``skipped`` attribute), never fatal.  The
journal is observability, not a correctness input; a skipped line
loses one audit record, nothing else.
"""

from __future__ import annotations

import json
import os
from collections.abc import Mapping
from pathlib import Path

from repro.runtime import fsfaults

__all__ = ["JOURNAL_FILENAME", "PoolJournal"]

#: Journal file name inside the shared store directory.
JOURNAL_FILENAME = "pool-journal.jsonl"


class PoolJournal:
    """Cross-process append-only event log in a store directory.

    Attributes:
        path: The journal file inside the store directory.
        skipped: Undecodable lines skipped by the last
            :meth:`records` call (torn appends left by killed or
            fault-injected writers).
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        *,
        defaults: Mapping[str, object] | None = None,
    ) -> None:
        self.path = Path(directory) / JOURNAL_FILENAME
        self.skipped = 0
        # Stamped into every record this instance appends (e.g. the
        # pool run id, so `repro status` can scope progress to a run).
        self.defaults = dict(defaults or {})

    def append(self, event: str, **fields: object) -> None:
        """Append one event record (atomic single-line write)."""
        record: dict[str, object] = {"event": event}
        record.update(self.defaults)
        record.update(fields)
        line = (json.dumps(record, sort_keys=True) + "\n").encode()
        fsfaults.append_line(self.path, line, op="journal.append")

    def records(self) -> tuple[dict, ...]:
        """All decodable journal records in append order.

        Empty when the journal is absent.  Lines that fail to decode
        — a truncated trailing line from a killed writer, or a torn
        append injected by the filesystem fault model — are skipped
        and counted in :attr:`skipped`.
        """
        try:
            text = fsfaults.read_text(self.path, op="journal.read")
        except FileNotFoundError:
            self.skipped = 0
            return ()
        records: list[dict] = []
        skipped = 0
        for line in text.split("\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if isinstance(record, dict):
                records.append(record)
            else:
                skipped += 1
        self.skipped = skipped
        return tuple(records)

    def events(self, event: str) -> tuple[dict, ...]:
        """Records of one event kind (``"task"``, ``"reclaim"`` ...)."""
        return tuple(
            record
            for record in self.records()
            if record.get("event") == event
        )
