"""Live pool status: heartbeat files, run metadata, progress reader.

The claim protocol makes a pool *correct* without a coordinator, but
it also makes a running pool opaque: claims are hashed filenames and
the journal only shows finished work.  This module adds the cheap,
observability-grade live layer the ``repro status`` command (and the
future characterization-service front-end) reads:

- **run metadata** (``pool-meta.json``): written once by the parent
  at pool start — run id, item total, worker count, start time — and
  finalised with ``completed_at`` when the run finishes.  This is how
  a reader knows the denominator of "done/total";
- **worker status files** (``pool-status-<worker>.json``): each
  worker (and the parent sweep) rewrites its own small JSON file at
  work-unit boundaries, rate-limited to one write per
  :data:`DEFAULT_STATUS_INTERVAL` seconds, recording its state, the
  unit it is working on and its personal done-count.  Writes are
  atomic (temp file + rename through the :mod:`~repro.runtime.fsfaults`
  seam) so a reader never sees a torn record, and *best-effort*: a
  failed status write is counted (``pool.status_write_errors``) and
  swallowed — status is observability, never a correctness input;
- **the reader** (:func:`read_pool_status`): combines metadata,
  status heartbeats, live claims and the journal into one
  :class:`PoolStatus` — units done/total, per-worker state with
  heartbeat age, throughput and ETA.

Progress semantics: "done" counts units *journalled by this run*
(distinct content keys of ``task`` events carrying the run id), which
is exactly the work this run computed; units satisfied from a resumed
checkpoint store never appear in the journal and are reported through
the shrinking remainder instead.  The throughput/ETA figures derive
from journal timestamps, so they survive a reader restart.

None of this participates in the byte-identity story: status and
metadata files live alongside the claims, are ignored by the
checkpoint store and gc, and carry no data any computation reads
back.  The ``status.write`` seam op is deliberately *not* in
:data:`~repro.runtime.telemetry.session.NEVER_SAMPLED` — status
traffic is high-frequency background noise a sampled trace is free
to thin.
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ParameterError
from repro.runtime import fsfaults, telemetry
from repro.runtime.pool.claims import DEFAULT_CLAIM_TIMEOUT, ClaimStore
from repro.runtime.pool.journal import PoolJournal

__all__ = [
    "DEFAULT_STATUS_INTERVAL",
    "META_FILENAME",
    "META_SCHEMA",
    "PoolStatus",
    "STATUS_SCHEMA",
    "StatusWriter",
    "WorkerStatus",
    "finalize_pool_meta",
    "read_pool_status",
    "render_status",
    "write_pool_meta",
]

#: Minimum seconds between two status-file rewrites by one writer
#: (state changes always write).  One small JSON write per second per
#: worker is far below the fs noise floor of the pool itself.
DEFAULT_STATUS_INTERVAL = 1.0

#: Run-metadata file name inside the shared store directory.
META_FILENAME = "pool-meta.json"

#: Schema tags stamped into the metadata / status files.
META_SCHEMA = "repro.pool_meta/1"
STATUS_SCHEMA = "repro.pool_status/1"

_STATUS_PREFIX = "pool-status-"


def _write_json_atomic(path: Path, payload: dict) -> None:
    """Stage-and-rename a small JSON file through the fsfaults seam."""
    staging = path.with_name(path.name + ".tmp")
    data = (json.dumps(payload, sort_keys=True) + "\n").encode()
    fsfaults.write_bytes(staging, data, op="status.write")
    fsfaults.replace(staging, path, op="status.write")


def write_pool_meta(
    directory: str | os.PathLike[str],
    *,
    run_id: str,
    n_items: int,
    n_workers: int,
    seed: int = 0,
) -> Path:
    """Record one pool run's metadata; returns the file written."""
    path = Path(directory) / META_FILENAME
    _write_json_atomic(
        path,
        {
            "schema": META_SCHEMA,
            "run_id": run_id,
            "n_items": int(n_items),
            "n_workers": int(n_workers),
            "seed": int(seed),
            "host": socket.gethostname(),
            "pid": os.getpid(),
            "started_at": time.time(),
        },
    )
    return path


def finalize_pool_meta(directory: str | os.PathLike[str]) -> None:
    """Stamp ``completed_at`` into an existing run-metadata file."""
    path = Path(directory) / META_FILENAME
    meta = _read_json(path)
    if meta is None:
        return
    meta["completed_at"] = time.time()
    _write_json_atomic(path, meta)


def _read_json(path: Path) -> dict | None:
    """Best-effort JSON read; None on absence, torn or foreign data."""
    try:
        body = json.loads(fsfaults.read_text(path, op="status.read"))
    except (OSError, ValueError):
        return None
    return body if isinstance(body, dict) else None


class StatusWriter:
    """Rate-limited atomic writer of one worker's status file.

    Every public method is safe to call on the hot path: writes are
    skipped while the interval has not elapsed (unless the state
    changed or ``force`` is set), and any filesystem failure is
    swallowed after counting it — a flaky mount may lose a heartbeat,
    never a run.

    Attributes:
        path: This writer's status file.
        worker: Worker label recorded in every status record.
        interval: Minimum seconds between rewrites.
        items_done: Units this writer has marked finished.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        worker: str,
        *,
        interval: float = DEFAULT_STATUS_INTERVAL,
    ) -> None:
        if interval < 0:
            raise ParameterError(
                f"status interval must be >= 0 seconds, got {interval}"
            )
        self.path = Path(directory) / f"{_STATUS_PREFIX}{worker}.json"
        self.worker = worker
        self.interval = float(interval)
        self.items_done = 0
        self._state = ""
        self._item = ""
        self._last_write = float("-inf")

    def update(
        self, state: str, *, item: str = "", force: bool = False
    ) -> bool:
        """Record the worker's state; returns True when written.

        Args:
            state: Free-form state label (``"working"``, ``"idle"``,
                ``"done"``, ``"error"``).
            item: Label of the unit being worked on ("" when none).
            force: Write even within the rate-limit window.
        """
        changed = state != self._state
        self._state = state
        self._item = item
        now = time.monotonic()
        if (
            not force
            and not changed
            and now - self._last_write < self.interval
        ):
            return False
        self._last_write = now
        payload = {
            "schema": STATUS_SCHEMA,
            "worker": self.worker,
            "host": socket.gethostname(),
            "pid": os.getpid(),
            "state": state,
            "item": item,
            "items_done": self.items_done,
            "updated_at": time.time(),
        }
        try:
            _write_json_atomic(self.path, payload)
        except OSError:
            telemetry.counter_inc("pool.status_write_errors")
            return False
        telemetry.counter_inc("pool.status_writes")
        return True

    def advance(self) -> None:
        """Count one finished unit (next ``update`` reports it)."""
        self.items_done += 1

    def close(self, state: str = "done") -> None:
        """Write the final state unconditionally."""
        self.update(state, force=True)


@dataclass(frozen=True)
class WorkerStatus:
    """Decoded status heartbeat of one worker.

    Attributes:
        worker: Worker label (``w00``, ``parent``).
        host: Hostname at the last write.
        pid: Writer's process id.
        state: Last reported state label.
        item: Unit the worker last reported working on.
        items_done: Units the worker has finished.
        age: Seconds since the last heartbeat (reader's clock).
        stale: Whether ``age`` exceeds the staleness threshold while
            the worker still claims to be working.
    """

    worker: str
    host: str
    pid: int
    state: str
    item: str
    items_done: int
    age: float
    stale: bool

    def to_dict(self) -> dict:
        return {
            "worker": self.worker,
            "host": self.host,
            "pid": self.pid,
            "state": self.state,
            "item": self.item,
            "items_done": self.items_done,
            "age_s": self.age,
            "stale": self.stale,
        }


@dataclass
class PoolStatus:
    """Live progress of one pool checkpoint directory.

    Attributes:
        directory: The store directory read.
        run_id: Run id from the metadata ("" when absent).
        total: Unit total from the metadata (None when unknown).
        done: Units journalled as computed by this run.
        live_claims: Claim files currently live (work in flight).
        workers: Per-worker heartbeats, label order.
        started_at: Run start (epoch seconds; None without metadata).
        completed_at: Run completion stamp, if the run finished.
        elapsed: Seconds since start (0 without metadata).
        rate: Units per second over the journalled window (0 when
            unknown).
        eta: Estimated seconds to completion (None when unknowable).
    """

    directory: str
    run_id: str = ""
    total: int | None = None
    done: int = 0
    live_claims: int = 0
    workers: list[WorkerStatus] = field(default_factory=list)
    started_at: float | None = None
    completed_at: float | None = None
    elapsed: float = 0.0
    rate: float = 0.0
    eta: float | None = None

    @property
    def complete(self) -> bool:
        """Whether the run has finished (stamp or full count)."""
        if self.completed_at is not None:
            return True
        return self.total is not None and self.done >= self.total

    def to_dict(self) -> dict:
        """JSON view (``repro status --json``)."""
        return {
            "schema": "repro.pool_status_report/1",
            "directory": self.directory,
            "run_id": self.run_id,
            "total": self.total,
            "done": self.done,
            "live_claims": self.live_claims,
            "complete": self.complete,
            "started_at": self.started_at,
            "completed_at": self.completed_at,
            "elapsed_s": self.elapsed,
            "rate_units_per_s": self.rate,
            "eta_s": self.eta,
            "workers": [worker.to_dict() for worker in self.workers],
        }


def read_pool_status(
    directory: str | os.PathLike[str],
    *,
    claim_timeout: float = DEFAULT_CLAIM_TIMEOUT,
    stale_after: float = 30.0,
) -> PoolStatus:
    """Read the live status of a pool checkpoint directory.

    Args:
        directory: The shared store directory of the run.
        claim_timeout: Liveness threshold for the claim scan.
        stale_after: Heartbeat age past which a "working" worker is
            flagged stale (its process may be gone; its claims will
            be judged by the much longer ``claim_timeout``).

    Raises:
        ParameterError: When the directory carries no trace of a pool
            run (no metadata, no journal, no status files).
    """
    root = Path(directory)
    meta = _read_json(root / META_FILENAME)
    journal = PoolJournal(root)
    tasks = journal.events("task")
    status_paths = fsfaults.listdir(
        root, f"{_STATUS_PREFIX}*.json", op="status.list"
    )
    if meta is None and not tasks and not status_paths:
        raise ParameterError(
            f"{root} has no pool run to report: no {META_FILENAME}, "
            "no pool journal, no status files (is this a pool "
            "checkpoint directory?)"
        )

    status = PoolStatus(directory=str(root))
    if meta is not None:
        status.run_id = str(meta.get("run_id", ""))
        if meta.get("n_items") is not None:
            status.total = int(meta["n_items"])
        started = meta.get("started_at")
        status.started_at = float(started) if started else None
        completed = meta.get("completed_at")
        status.completed_at = float(completed) if completed else None

    run_tasks = [
        record
        for record in tasks
        if not status.run_id
        or record.get("run") in (None, "", status.run_id)
    ]
    status.done = len(
        {record.get("key") for record in run_tasks if record.get("key")}
    )

    now = time.time()
    if status.started_at is not None:
        end = status.completed_at if status.completed_at else now
        status.elapsed = max(0.0, end - status.started_at)
    timestamps = sorted(
        float(record["ts"]) for record in run_tasks if record.get("ts")
    )
    if timestamps and status.done:
        window_start = (
            status.started_at
            if status.started_at is not None
            else timestamps[0]
        )
        window = timestamps[-1] - window_start
        if window <= 0.0:
            window = status.elapsed
        if window > 0.0:
            status.rate = status.done / window
    if (
        status.total is not None
        and status.rate > 0
        and not status.complete
    ):
        status.eta = max(0.0, (status.total - status.done) / status.rate)

    claims = ClaimStore(root, timeout=claim_timeout)
    status.live_claims = len(claims.scan(live_only=True))

    for path in status_paths:
        body = _read_json(path)
        if body is None:
            continue
        updated = float(body.get("updated_at", 0.0) or 0.0)
        age = max(0.0, now - updated)
        state = str(body.get("state", ""))
        status.workers.append(
            WorkerStatus(
                worker=str(body.get("worker", path.stem)),
                host=str(body.get("host", "")),
                pid=int(body.get("pid", 0) or 0),
                state=state,
                item=str(body.get("item", "")),
                items_done=int(body.get("items_done", 0) or 0),
                age=age,
                stale=state == "working" and age > stale_after,
            )
        )
    status.workers.sort(key=lambda worker: worker.worker)
    return status


def _format_eta(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


def render_status(status: PoolStatus) -> str:
    """Human-readable status block (what ``repro status`` prints)."""
    lines: list[str] = []
    total = "?" if status.total is None else str(status.total)
    share = ""
    if status.total:
        share = f" ({100.0 * status.done / status.total:.1f}%)"
    run = f"run {status.run_id}" if status.run_id else "run"
    state = "complete" if status.complete else "in flight"
    lines.append(
        f"{run}: {status.done}/{total} units{share}, {state}, "
        f"elapsed {status.elapsed:.1f}s, "
        f"{status.rate:.2f} units/s"
        + (
            f", ETA {_format_eta(status.eta)}"
            if status.eta is not None
            else ""
        )
    )
    if status.live_claims:
        lines.append(f"  {status.live_claims} claim(s) in flight")
    for worker in status.workers:
        marker = " STALE" if worker.stale else ""
        item = f"  {worker.item}" if worker.item else ""
        lines.append(
            f"  {worker.worker:<8s} {worker.state:<8s} "
            f"done={worker.items_done:<5d} "
            f"heartbeat {worker.age:.1f}s ago{marker}{item}"
        )
    if not status.workers:
        lines.append("  (no worker status files)")
    return "\n".join(lines)
