"""FitPolicy: the model-fitting fallback ladder.

A single degenerate EM fit (collapsed component, NaN samples,
non-convergence) used to abort an entire library characterisation.  The
ladder makes every fit land somewhere useful instead:

1. ``LVF2``         — the paper's two-skew-normal EM fit;
2. ``LVF2-reseed``  — the same fit retried from reseeded k-means
   restarts (EM is a local optimiser: a different basin often
   converges where the default seeding collapsed);
3. ``Norm2``        — two-Gaussian mixture, recast as a zero-skew LVF2;
4. ``LVF``          — single skew-normal (the paper's own λ=0 fallback,
   Eq. 10: LVF2 degrades *exactly* to LVF);
5. ``Gaussian``     — moment-matched normal, recast as zero-skew LVF;
6. ``degenerate``   — a floor-width Gaussian placeholder for data that
   no model can represent (e.g. constant samples), so a single dead
   grid point cannot sink a 25-cell library run.

Every rung returns an :class:`~repro.models.lvf2.LVF2Model`, so the
Liberty export path downstream never needs to care which rung fired;
the :class:`~repro.runtime.report.FitReport` records which one did.

Non-finite samples are dropped (and counted) before fitting — injected
or simulated NaNs degrade the fit rather than poisoning it.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import FittingError
from repro.models.gaussian import GaussianModel
from repro.models.lvf import LVFModel
from repro.models.lvf2 import LVF2Model
from repro.models.norm2 import Norm2Model
from repro.runtime import faults, telemetry
from repro.runtime.report import FitAttempt, FitContext, FitOutcome
from repro.stats.em import EMConfig

__all__ = ["DEFAULT_RUNGS", "FitPolicy"]

#: Sentinel distinguishing "no precomputed first-rung result" from a
#: legitimately captured ``None``/exception.
_UNSET = object()

#: Ladder rungs in degradation order.
DEFAULT_RUNGS = (
    "LVF2",
    "LVF2-reseed",
    "Norm2",
    "LVF",
    "Gaussian",
    "degenerate",
)

#: Exceptions a rung may leak from numerical code; converted to ladder
#: steps instead of aborting the run.
_NUMERICAL_ERRORS = (
    FittingError,
    ValueError,
    ArithmeticError,
    np.linalg.LinAlgError,
)


def _lvf2_from_norm2(model: Norm2Model) -> LVF2Model:
    """Recast a two-Gaussian fit as an LVF2 with zero-skew components."""
    first = LVFModel(model.component1.mu, model.component1.sigma, 0.0)
    if model.component2 is None:
        return LVF2Model(0.0, first, None)
    second = LVFModel(model.component2.mu, model.component2.sigma, 0.0)
    return LVF2Model(model.weight, first, second)


@dataclass(frozen=True)
class FitPolicy:
    """Configuration of the fallback ladder.

    Attributes:
        reseed_seeds: k-means seeds tried on the ``LVF2-reseed`` rung.
        reseed_restarts: k-means restarts per reseeded attempt.
        sigma_floor: Relative width of the ``degenerate`` placeholder
            (scaled by ``max(1, |mean|)``).
        allow_degenerate: Disable the final placeholder rung to make
            truly unfittable data raise :class:`FittingError` instead.
        rungs: Ladder order; must be a subsequence of
            :data:`DEFAULT_RUNGS`.
    """

    reseed_seeds: tuple[int, ...] = (1013, 2027)
    reseed_restarts: int = 8
    sigma_floor: float = 1e-9
    allow_degenerate: bool = True
    rungs: tuple[str, ...] = DEFAULT_RUNGS

    def __post_init__(self) -> None:
        unknown = set(self.rungs) - set(DEFAULT_RUNGS)
        if unknown:
            raise FittingError(
                f"unknown ladder rungs: {sorted(unknown)}"
            )
        if not self.rungs:
            raise FittingError("the ladder needs at least one rung")

    # ------------------------------------------------------------------
    # Rung implementations (samples arrive finite and 1-D)
    # ------------------------------------------------------------------
    def _fit_lvf2(self, samples: np.ndarray) -> LVF2Model:
        return LVF2Model.fit(samples)

    def _fit_lvf2_reseed(self, samples: np.ndarray) -> LVF2Model:
        last: FittingError | None = None
        for seed in self.reseed_seeds:
            config = EMConfig(
                kmeans_restarts=self.reseed_restarts, seed=seed
            )
            try:
                return LVF2Model.fit(samples, config=config)
            except _NUMERICAL_ERRORS as error:
                last = (
                    error
                    if isinstance(error, FittingError)
                    else FittingError(str(error))
                )
        raise last or FittingError("no reseed attempts configured")

    def _fit_norm2(self, samples: np.ndarray) -> LVF2Model:
        return _lvf2_from_norm2(Norm2Model.fit(samples))

    def _fit_lvf(self, samples: np.ndarray) -> LVF2Model:
        return LVF2Model.from_lvf(LVFModel.fit(samples))

    def _fit_gaussian(self, samples: np.ndarray) -> LVF2Model:
        gaussian = GaussianModel.fit(samples)
        return LVF2Model.from_lvf(
            LVFModel(gaussian.mu, gaussian.sigma, 0.0)
        )

    def _fit_degenerate(self, samples: np.ndarray) -> LVF2Model:
        if not self.allow_degenerate:
            raise FittingError("degenerate placeholder rung disabled")
        mean = float(samples.mean())
        floor = self.sigma_floor * max(1.0, abs(mean))
        sigma = max(float(samples.std()), floor)
        return LVF2Model.from_lvf(LVFModel(mean, sigma, 0.0))

    def _rung_fitter(self, rung: str):
        return {
            "LVF2": self._fit_lvf2,
            "LVF2-reseed": self._fit_lvf2_reseed,
            "Norm2": self._fit_norm2,
            "LVF": self._fit_lvf,
            "Gaussian": self._fit_gaussian,
            "degenerate": self._fit_degenerate,
        }[rung]

    # ------------------------------------------------------------------
    # The ladder
    # ------------------------------------------------------------------
    def fit(
        self,
        samples: np.ndarray,
        context: FitContext | None = None,
    ) -> FitOutcome:
        """Walk the ladder until a rung produces a model.

        Args:
            samples: Raw Monte-Carlo samples; non-finite entries are
                dropped (and counted) first.
            context: Arc-condition identity, used by the fault
                injection hooks and recorded in reports.

        Returns:
            The first successful rung's model with its provenance.

        Raises:
            FittingError: Only when *every* rung fails (e.g. no finite
                samples at all, or the placeholder rung is disabled).
        """
        with telemetry.span(
            "fit.ladder",
            stage="fitting",
            condition=context.condition if context else "",
        ):
            outcome = self._walk_ladder(samples, context)
        self._record_outcome(outcome)
        return outcome

    def fit_batch_iter(
        self,
        samples_list: Sequence[np.ndarray],
        contexts: Sequence[FitContext | None] | None = None,
    ) -> Iterator[FitOutcome]:
        """Walk the ladder for many grid points, batching the first rung.

        When the first rung is ``LVF2``, all points are fitted up front
        by :meth:`LVF2Model.fit_batch` — the vectorized multi-start EM
        that is bit-identical to the serial fit — grouped by finite
        sample count so NaN-dropped points still batch together.  The
        generator then replays the ladder per point in serial order:
        fault-injection hooks fire exactly once per (point, rung) in
        the order a serial loop would consult them, the precomputed
        first-rung result (model or captured exception) substitutes for
        the serial first-rung call, and every later rung runs serially.
        Outcomes are yielded one point at a time so a mid-grid failure
        leaves exactly the serial loop's partial progress behind.

        Args:
            samples_list: Raw per-point Monte-Carlo samples.
            contexts: Optional per-point arc identities, same length.

        Yields:
            One :class:`FitOutcome` per point, in input order.
        """
        items = [
            np.asarray(samples, dtype=float).ravel()
            for samples in samples_list
        ]
        if contexts is None:
            context_list: list[FitContext | None] = [None] * len(items)
        else:
            context_list = list(contexts)
            if len(context_list) != len(items):
                raise FittingError(
                    f"contexts length {len(context_list)} does not "
                    f"match {len(items)} sample sets"
                )
        prefits: dict[int, LVF2Model | Exception] = {}
        if self.rungs[0] == "LVF2" and items:
            groups: dict[int, list[int]] = {}
            finite_rows: dict[int, np.ndarray] = {}
            for index, raw in enumerate(items):
                finite = raw[np.isfinite(raw)]
                if finite.size:
                    finite_rows[index] = finite
                    groups.setdefault(finite.size, []).append(index)
            with telemetry.span(
                "fit.prefit_batch", stage="fitting", n_points=len(items)
            ):
                for members in groups.values():
                    batch = LVF2Model.fit_batch(
                        np.stack([finite_rows[i] for i in members]),
                        errors="capture",
                    )
                    for index, outcome in zip(members, batch):
                        prefits[index] = outcome
        for index, raw in enumerate(items):
            context = context_list[index]
            with telemetry.span(
                "fit.ladder",
                stage="fitting",
                condition=context.condition if context else "",
            ):
                outcome = self._walk_ladder(
                    raw, context, prefit=prefits.get(index, _UNSET)
                )
            self._record_outcome(outcome)
            yield outcome

    def _record_outcome(self, outcome: FitOutcome) -> None:
        telemetry.observe(
            "fit.fallback_rung", self.rungs.index(outcome.rung)
        )
        telemetry.counter_inc(f"fit.rung.{outcome.rung}")
        if outcome.degraded:
            telemetry.counter_inc("fit.degraded")
        if outcome.n_dropped:
            telemetry.counter_inc(
                "fit.dropped_samples", outcome.n_dropped
            )

    def _walk_ladder(
        self,
        samples: np.ndarray,
        context: FitContext | None,
        prefit: object = _UNSET,
    ) -> FitOutcome:
        raw = np.asarray(samples, dtype=float).ravel()
        finite = raw[np.isfinite(raw)]
        n_dropped = int(raw.size - finite.size)
        attempts: list[FitAttempt] = []
        if finite.size == 0:
            raise FittingError(
                "no finite samples to fit"
                + (f" ({n_dropped} non-finite dropped)" if n_dropped else "")
            )
        for position, rung in enumerate(self.rungs):
            injected = faults.fit_should_fail(context, rung)
            if injected is not None:
                attempts.append(FitAttempt(rung, injected))
                continue
            if position == 0 and prefit is not _UNSET:
                # Precomputed first-rung result from the batched fit:
                # a captured numerical error degrades exactly like the
                # serial catch below; other errors propagate as the
                # serial call would raise them.
                if isinstance(prefit, Exception):
                    if isinstance(prefit, _NUMERICAL_ERRORS):
                        attempts.append(
                            FitAttempt(
                                rung,
                                f"{type(prefit).__name__}: {prefit}",
                            )
                        )
                        continue
                    raise prefit
                model = prefit
            else:
                try:
                    model = self._rung_fitter(rung)(finite)
                except _NUMERICAL_ERRORS as error:
                    attempts.append(
                        FitAttempt(
                            rung, f"{type(error).__name__}: {error}"
                        )
                    )
                    continue
            return FitOutcome(
                model=model,
                rung=rung,
                degraded=rung != self.rungs[0],
                attempts=tuple(attempts),
                n_dropped=n_dropped,
            )
        trail = "; ".join(f"{a.rung}: {a.error}" for a in attempts)
        where = f" for {context.condition}" if context else ""
        raise FittingError(
            f"every ladder rung failed{where}: {trail}"
        )
