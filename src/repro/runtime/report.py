"""Structured degradation reporting for fault-tolerant runs.

Every fit performed through the :class:`~repro.runtime.policy.FitPolicy`
ladder lands in a :class:`FitReport`: which arc-condition it was, which
rung of the ladder finally produced a model, and what failed on the way
down.  Arcs that could not be characterised at all are *quarantined*
into the same report instead of aborting the library run.

The report is the contract behind the acceptance criteria of the
fault-tolerance layer: after a run with injected failures it names
exactly the degraded arc-conditions and the fallback rung each one
landed on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "FitAttempt",
    "FitContext",
    "FitOutcome",
    "FitRecord",
    "FitReport",
    "QuarantineRecord",
]


@dataclass(frozen=True)
class FitContext:
    """Identifies one fit: which arc-condition's samples are being fit.

    Attributes:
        cell: Cell instance name (``"INV_X1"``).
        pin: Arc input pin.
        transition: Output transition, ``rise`` or ``fall``.
        quantity: ``"delay"`` or ``"transition"`` (empty when the fit
            is not tied to a characterisation quantity).
        slew_index: Row in the slew-load grid (-1 when not applicable).
        load_index: Column in the slew-load grid (-1 when not
            applicable).
    """

    cell: str
    pin: str
    transition: str
    quantity: str = ""
    slew_index: int = -1
    load_index: int = -1

    @property
    def arc(self) -> str:
        """Stable arc label, ``cell/pin/transition``."""
        return f"{self.cell}/{self.pin}/{self.transition}"

    @property
    def condition(self) -> str:
        """Stable arc-condition label including grid point and quantity."""
        label = self.arc
        if self.slew_index >= 0 or self.load_index >= 0:
            label += f"[{self.slew_index},{self.load_index}]"
        if self.quantity:
            label += f":{self.quantity}"
        return label


@dataclass(frozen=True)
class FitAttempt:
    """One failed rung on the way down the ladder.

    Attributes:
        rung: Ladder rung name (``"LVF2"``, ``"Norm2"``, ...).
        error: One-line description of why the rung failed.
    """

    rung: str
    error: str


@dataclass(frozen=True)
class FitOutcome:
    """Result of one walk down the fallback ladder.

    Attributes:
        model: The fitted model (always usable for Liberty export).
        rung: Name of the rung that produced ``model``.
        degraded: True when ``rung`` is not the primary (LVF2) rung.
        attempts: Rungs that failed before ``rung`` succeeded.
        n_dropped: Non-finite samples discarded before fitting.
    """

    model: object
    rung: str
    degraded: bool
    attempts: tuple[FitAttempt, ...] = ()
    n_dropped: int = 0


@dataclass(frozen=True)
class FitRecord:
    """One report entry: a context plus the outcome it received."""

    context: FitContext
    rung: str
    degraded: bool
    attempts: tuple[FitAttempt, ...] = ()
    n_dropped: int = 0


@dataclass(frozen=True)
class QuarantineRecord:
    """An arc excluded from the output instead of aborting the run.

    Attributes:
        arc: Arc label (``cell/pin/transition`` or ``cell/pin``).
        stage: Pipeline stage that failed (``"simulate"``, ``"fit"``).
        error: One-line description of the terminal failure.
    """

    arc: str
    stage: str
    error: str


@dataclass
class FitReport:
    """Accumulates fit outcomes and quarantined arcs for one run."""

    records: list[FitRecord] = field(default_factory=list)
    quarantined: list[QuarantineRecord] = field(default_factory=list)

    def record_fit(self, context: FitContext, outcome: FitOutcome) -> None:
        """Record the ladder outcome for one arc-condition."""
        self.records.append(
            FitRecord(
                context=context,
                rung=outcome.rung,
                degraded=outcome.degraded,
                attempts=outcome.attempts,
                n_dropped=outcome.n_dropped,
            )
        )

    def quarantine(self, arc: str, stage: str, error: str) -> None:
        """Record an arc that was dropped from the output entirely."""
        self.quarantined.append(
            QuarantineRecord(arc=arc, stage=stage, error=error)
        )

    def merge(self, other: "FitReport") -> None:
        """Fold another report's records into this one, in order.

        Parallel characterisation fits each pin in its own local
        report (possibly in another process); the parent merges them
        in serial pin order, so the assembled report lists records
        exactly as a serial run would have.
        """
        self.records.extend(other.records)
        self.quarantined.extend(other.quarantined)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_fits(self) -> int:
        return len(self.records)

    def degraded_records(self) -> list[FitRecord]:
        """All records that did not land on the primary rung."""
        return [record for record in self.records if record.degraded]

    def degraded_conditions(self) -> dict[str, str]:
        """Map each degraded arc-condition label to its fallback rung."""
        return {
            record.context.condition: record.rung
            for record in self.degraded_records()
        }

    def degraded_arcs(self) -> tuple[str, ...]:
        """Sorted arc labels with at least one degraded condition."""
        return tuple(
            sorted({r.context.arc for r in self.degraded_records()})
        )

    def rung_counts(self) -> dict[str, int]:
        """How many fits landed on each rung."""
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.rung] = counts.get(record.rung, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Human-readable degradation summary (one block of lines)."""
        degraded = self.degraded_records()
        lines = [
            f"fit report: {self.n_fits} fits, "
            f"{len(degraded)} degraded, "
            f"{len(self.quarantined)} arcs quarantined"
        ]
        counts = self.rung_counts()
        if counts:
            rungs = "  ".join(
                f"{rung}={count}" for rung, count in sorted(counts.items())
            )
            lines.append(f"  rungs: {rungs}")
        for record in degraded:
            reasons = "; ".join(
                f"{attempt.rung}: {attempt.error}"
                for attempt in record.attempts
            )
            suffix = f" ({reasons})" if reasons else ""
            lines.append(
                f"  degraded {record.context.condition} -> "
                f"{record.rung}{suffix}"
            )
        for entry in self.quarantined:
            lines.append(
                f"  quarantined {entry.arc} at {entry.stage}: {entry.error}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serialisable view of the report."""
        return {
            "n_fits": self.n_fits,
            "rung_counts": self.rung_counts(),
            "degraded": [
                {
                    "condition": record.context.condition,
                    "rung": record.rung,
                    "n_dropped": record.n_dropped,
                    "attempts": [
                        {"rung": a.rung, "error": a.error}
                        for a in record.attempts
                    ],
                }
                for record in self.degraded_records()
            ],
            "quarantined": [
                {
                    "arc": entry.arc,
                    "stage": entry.stage,
                    "error": entry.error,
                }
                for entry in self.quarantined
            ],
        }
