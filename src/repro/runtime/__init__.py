"""Fault-tolerant runtime layer for long-running pipelines.

This package makes library-scale characterisation and the experiment
drivers survivable, observable and testable under failure:

- :mod:`repro.runtime.policy`     — the FitPolicy fallback ladder
  (LVF2 → reseeded LVF2 → Norm2 → LVF → Gaussian → placeholder);
- :mod:`repro.runtime.report`     — structured :class:`FitReport` of
  which rung every arc-condition landed on plus quarantined arcs;
- :mod:`repro.runtime.checkpoint` — content-addressed per-arc
  checkpoints with atomic writes, resume and garbage collection;
- :mod:`repro.runtime.faults`     — deterministic fault injection
  (NaN samples, forced EM non-convergence, mid-run kills, truncated
  or fsync-failing Liberty exports);
- :mod:`repro.runtime.fsfaults`   — flaky-filesystem fault model and
  the retrying FS-access seam the checkpoint/claim/journal/export
  layers route through (transient EIO/ESTALE/ENOSPC, torn writes,
  stale listings, clock-skewed mtimes);
- :mod:`repro.runtime.export`     — verified atomic text export;
- :mod:`repro.runtime.progress`   — logging-based progress reporting;
- :mod:`repro.runtime.telemetry`  — hierarchical tracing, metrics
  registry and structured run manifests;
- :mod:`repro.runtime.pool`       — parallel characterisation worker
  pool: claim-file coordination over the checkpoint directory,
  deterministic content-key sharding, per-worker traces merged at
  shutdown.

The layering is strictly below :mod:`repro.circuits` and
:mod:`repro.experiments`: those packages import the runtime, never the
reverse.  Exports are resolved lazily (PEP 562) so low-level packages
(:mod:`repro.stats`, :mod:`repro.liberty`) can import
:mod:`repro.runtime.telemetry` for instrumentation without pulling the
policy ladder — which imports the model registry and the stats core —
back in underneath them.
"""

from __future__ import annotations

from importlib import import_module
from types import MappingProxyType

#: Exported name -> defining submodule (resolved on first access).
#: Read-only so parallel workers can never diverge on the export map.
_EXPORTS = MappingProxyType({
    "CheckpointStore": "repro.runtime.checkpoint",
    "ClaimStore": "repro.runtime.pool.claims",
    "PoolConfig": "repro.runtime.pool.pool",
    "PoolResult": "repro.runtime.pool.pool",
    "WorkItem": "repro.runtime.pool.scheduler",
    "run_pool": "repro.runtime.pool.pool",
    "merge_trace_files": "repro.runtime.telemetry.merge",
    "FaultPlan": "repro.runtime.faults",
    "FaultRule": "repro.runtime.faults",
    "InjectedKill": "repro.runtime.faults",
    "inject": "repro.runtime.faults",
    "FsFaultPlan": "repro.runtime.fsfaults",
    "FsFaultRule": "repro.runtime.fsfaults",
    "RetryPolicy": "repro.runtime.fsfaults",
    "inject_fs": "repro.runtime.fsfaults",
    "DEFAULT_RUNGS": "repro.runtime.policy",
    "FitPolicy": "repro.runtime.policy",
    "ProgressReporter": "repro.runtime.progress",
    "configure_progress_logging": "repro.runtime.progress",
    "FitAttempt": "repro.runtime.report",
    "FitContext": "repro.runtime.report",
    "FitOutcome": "repro.runtime.report",
    "FitRecord": "repro.runtime.report",
    "FitReport": "repro.runtime.report",
    "QuarantineRecord": "repro.runtime.report",
    "write_text_file": "repro.runtime.export",
    "TelemetrySession": "repro.runtime.telemetry",
    "telemetry": "repro.runtime",
})

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    if name == "telemetry":
        return import_module("repro.runtime.telemetry")
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    return getattr(import_module(module_name), name)


def __dir__() -> list[str]:
    return __all__
