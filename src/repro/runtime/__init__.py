"""Fault-tolerant runtime layer for long-running pipelines.

This package makes library-scale characterisation and the experiment
drivers survivable and testable under failure:

- :mod:`repro.runtime.policy`     — the FitPolicy fallback ladder
  (LVF2 → reseeded LVF2 → Norm2 → LVF → Gaussian → placeholder);
- :mod:`repro.runtime.report`     — structured :class:`FitReport` of
  which rung every arc-condition landed on plus quarantined arcs;
- :mod:`repro.runtime.checkpoint` — content-addressed per-arc
  checkpoints with atomic writes for kill-and-resume runs;
- :mod:`repro.runtime.faults`     — deterministic fault injection
  (NaN samples, forced EM non-convergence, mid-run kills);
- :mod:`repro.runtime.progress`   — logging-based progress reporting.

The layering is strictly below :mod:`repro.circuits` and
:mod:`repro.experiments`: those packages import the runtime, never the
reverse.
"""

from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.faults import FaultPlan, FaultRule, InjectedKill, inject
from repro.runtime.policy import DEFAULT_RUNGS, FitPolicy
from repro.runtime.progress import (
    ProgressReporter,
    configure_progress_logging,
)
from repro.runtime.report import (
    FitAttempt,
    FitContext,
    FitOutcome,
    FitRecord,
    FitReport,
    QuarantineRecord,
)

__all__ = [
    "CheckpointStore",
    "DEFAULT_RUNGS",
    "FaultPlan",
    "FaultRule",
    "FitAttempt",
    "FitContext",
    "FitOutcome",
    "FitPolicy",
    "FitRecord",
    "FitReport",
    "InjectedKill",
    "ProgressReporter",
    "QuarantineRecord",
    "configure_progress_logging",
    "inject",
]
