"""FO4 (fanout-of-4) delay normalisation.

The paper reports path depths in FO4 units — the delay of an inverter
driving four copies of itself, the classic technology-independent
yardstick ([17]: optimal logic depth is 6-8 FO4 per pipeline stage).
"""

from __future__ import annotations

from repro.circuits.cells import build_cell
from repro.circuits.gate import GateTimingEngine

__all__ = ["fo4_delay", "fo4_condition"]


def fo4_condition(
    engine: GateTimingEngine, *, drive: float = 1.0, iterations: int = 4
) -> tuple[float, float]:
    """Self-consistent (slew, load) of an FO4 inverter stage.

    The input slew of an FO4 stage is the output transition of an
    identical FO4 stage; a few fixed-point iterations converge it.

    Returns:
        ``(slew_ns, load_pf)`` of the FO4 operating point.
    """
    inverter = build_cell("INV", drive)
    arc = inverter.arc("A", "fall")
    load = 4.0 * inverter.input_capacitance("A")
    slew = 0.01
    for _ in range(iterations):
        result = engine.simulate_arc(arc, slew, load, 1, rng=0)
        slew = result.nominal_transition
    return (slew, load)


def fo4_delay(
    engine: GateTimingEngine, *, drive: float = 1.0
) -> float:
    """Nominal FO4 inverter delay in ns (average of both edges)."""
    inverter = build_cell("INV", drive)
    slew, load = fo4_condition(engine, drive=drive)
    total = 0.0
    for transition in ("rise", "fall"):
        result = engine.simulate_arc(
            inverter.arc("A", transition), slew, load, 1, rng=0
        )
        total += result.nominal_delay
    return total / 2.0
