"""Benchmark critical paths (paper §4.4).

Two benchmarks validate the models under SSTA propagation:

- a **16-bit carry adder** whose critical path is the carry chain —
  about 30 FO4 of depth with mixed-stack full-adder stages;
- a **6-stage H-tree** clock spine — each stage two buffer cells plus
  a Pi-model wire, about 95 FO4 of depth, slower CLT convergence
  because the buffer stages are structurally identical.

A path is a list of :class:`PathStage`; the golden distribution is the
per-sample sum of independently Monte-Carlo-simulated stages (local
mismatch is independent across cells), plus deterministic Elmore wire
delays.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.circuits.cells import CellDefinition, build_cell
from repro.circuits.gate import GateTimingEngine
from repro.circuits.wire import PiWire
from repro.errors import SSTAError

__all__ = [
    "PathStage",
    "StageSimulation",
    "build_carry_adder_path",
    "build_htree_path",
    "simulate_path_stages",
]


@dataclass(frozen=True)
class PathStage:
    """One cell traversal on a critical path.

    Attributes:
        name: Stage label for reports.
        cell: Cell definition.
        input_pin: Arc input pin.
        transition: Output transition of the arc.
        load: Output load in pF (receiver gate + wire).
        wire: Optional Pi wire between this stage and the next;
            contributes a deterministic Elmore delay.
    """

    name: str
    cell: CellDefinition
    input_pin: str
    transition: str
    load: float
    wire: PiWire | None = None

    def wire_delay(self) -> float:
        """Elmore delay of the attached wire into this stage's load."""
        if self.wire is None:
            return 0.0
        return self.wire.elmore_delay(self.load)


@dataclass(frozen=True)
class StageSimulation:
    """Monte-Carlo result of one stage.

    Attributes:
        stage: The simulated stage.
        delay: Per-sample stage delay (cell + wire) in ns.
        nominal: Variation-free stage delay in ns.
        slew_in: Input slew used (from the previous stage's nominal
            output transition).
    """

    stage: PathStage
    delay: np.ndarray
    nominal: float
    slew_in: float


def build_carry_adder_path(
    bits: int = 16, *, drive: float = 1.0
) -> list[PathStage]:
    """Critical path of a ripple-carry adder: the carry chain.

    Bit 0 generates the carry through the half-adder-style AND stage;
    every further bit propagates it through the full-adder carry
    network (pass stages), terminating in the sum XOR of the last bit.
    """
    if bits < 2:
        raise SSTAError(f"adder needs >= 2 bits, got {bits}")
    full_adder = build_cell("FA", drive)
    xor2 = build_cell("XOR2", drive)
    and2 = build_cell("AND2", drive)
    fa_load = full_adder.input_capacitance("CI") * 1.5
    stages: list[PathStage] = [
        PathStage(
            name="b0:generate",
            cell=and2,
            input_pin="A",
            transition="rise",
            load=fa_load,
        )
    ]
    for bit in range(1, bits - 1):
        transition = "rise" if bit % 2 else "fall"
        stages.append(
            PathStage(
                name=f"b{bit}:carry",
                cell=full_adder,
                input_pin="CI",
                transition=transition,
                load=fa_load,
            )
        )
    stages.append(
        PathStage(
            name=f"b{bits - 1}:sum",
            cell=xor2,
            input_pin="B",
            transition="rise",
            load=4.0 * xor2.input_capacitance("A"),
        )
    )
    return stages


def build_htree_path(
    levels: int = 6,
    *,
    drive: float = 2.0,
    wire_resistance: float = 0.9,
    wire_capacitance: float = 0.055,
) -> list[PathStage]:
    """Root-to-leaf path of an H-tree clock spine.

    Each level: two buffer cells and a Pi-model wire (paper §4.4).
    Wire lengths halve at each level of an H-tree, so R and C shrink
    geometrically toward the leaves.
    """
    if levels < 1:
        raise SSTAError(f"H-tree needs >= 1 level, got {levels}")
    buffer_cell = build_cell("BUFF", drive)
    buffer_cap = buffer_cell.input_capacitance("A")
    stages: list[PathStage] = []
    for level in range(levels):
        scale = 0.62**level
        wire = PiWire(
            wire_resistance * scale, wire_capacitance * scale
        )
        # First buffer drives the second through a short branch stub.
        stages.append(
            PathStage(
                name=f"L{level}:buf0",
                cell=buffer_cell,
                input_pin="A",
                transition="rise" if level % 2 == 0 else "fall",
                load=buffer_cap + 0.1 * wire.capacitance,
            )
        )
        # Second buffer drives the level's wire into the next level.
        stages.append(
            PathStage(
                name=f"L{level}:buf1",
                cell=buffer_cell,
                input_pin="A",
                transition="fall" if level % 2 == 0 else "rise",
                load=wire.driver_load(buffer_cap),
                wire=wire,
            )
        )
    return stages


def _stage_seed(seed: int, stage: PathStage, index: int) -> int:
    digest = hashlib.sha256(
        f"{seed}|{index}|{stage.name}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "little")


def simulate_path_stages(
    engine: GateTimingEngine,
    stages: list[PathStage],
    n_samples: int,
    *,
    seed: int = 0,
    initial_slew: float = 0.01,
) -> list[StageSimulation]:
    """Monte-Carlo simulate every stage of a path.

    Stage input slews are chained through nominal output transitions
    (the standard single-scenario STA simplification); local mismatch
    is sampled independently per stage, so the golden path delay is
    the per-sample sum of stage delays plus wire constants.
    """
    if not stages:
        raise SSTAError("path has no stages")
    results: list[StageSimulation] = []
    slew = initial_slew
    for index, stage in enumerate(stages):
        topology = stage.cell.arc(stage.input_pin, stage.transition)
        simulated = engine.simulate_arc(
            topology,
            slew,
            stage.load,
            n_samples,
            rng=_stage_seed(seed, stage, index),
        )
        wire_delay = stage.wire_delay()
        results.append(
            StageSimulation(
                stage=stage,
                delay=simulated.delay + wire_delay,
                nominal=simulated.nominal_delay + wire_delay,
                slew_in=slew,
            )
        )
        slew = simulated.nominal_transition
    return results
