"""Path-level SSTA comparison driver (paper Fig. 5).

For each timing model: fit every stage's Monte-Carlo samples, propagate
the fitted distributions along the path with the block-based SUM
operator, and score the propagated distribution against the golden
per-sample partial sums at every stage.  The output is the Fig. 5
series — binning error reduction versus path depth (in FO4) per model.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.binning.metrics import binning_error, error_reduction
from repro.errors import SSTAError
from repro.models.base import get_model
from repro.runtime import telemetry
from repro.ssta.ops import sum_models
from repro.ssta.paths import StageSimulation
from repro.stats.empirical import EmpiricalDistribution

__all__ = ["PathPropagationResult", "propagate_path"]


@dataclass(frozen=True)
class PathPropagationResult:
    """Per-stage scores of all models along one path.

    Attributes:
        stage_names: Stage labels in path order.
        cumulative_nominal: Nominal partial path delay per stage (ns).
        fo4_depths: Partial depth in FO4 units per stage.
        golden: Empirical partial-sum distribution per stage.
        binning_errors: ``{model: [error per stage]}``.
        reductions: ``{model: [error reduction vs baseline per stage]}``.
    """

    stage_names: tuple[str, ...]
    cumulative_nominal: tuple[float, ...]
    fo4_depths: tuple[float, ...]
    golden: tuple[EmpiricalDistribution, ...]
    binning_errors: dict[str, tuple[float, ...]]
    reductions: dict[str, tuple[float, ...]]

    def final_reduction(self, model: str) -> float:
        """Error reduction of ``model`` at the path end."""
        return self.reductions[model][-1]

    def reduction_at_depth(self, model: str, fo4: float) -> float:
        """Error reduction at the first stage deeper than ``fo4``."""
        for depth, value in zip(self.fo4_depths, self.reductions[model]):
            if depth >= fo4:
                return value
        return self.reductions[model][-1]


#: Stage-fit keyword overrides per model.  LESN stages are fitted in
#: the linear domain so its *propagated* moments start unbiased — the
#: §4.4 error accumulation then isolates the re-materialisation step.
DEFAULT_FIT_KWARGS: dict[str, dict] = {"LESN": {"method": "linear"}}


def propagate_path(
    simulations: Sequence[StageSimulation],
    model_names: Sequence[str] = ("LVF2", "Norm2", "LESN", "LVF"),
    *,
    baseline: str = "LVF",
    fo4: float | None = None,
    fit_kwargs: dict[str, dict] | None = None,
) -> PathPropagationResult:
    """Run block-based SSTA for every model along a simulated path.

    Args:
        simulations: Per-stage Monte-Carlo results
            (:func:`repro.ssta.paths.simulate_path_stages`).
        model_names: Registry names of the models to propagate.
        baseline: Eq. 12 baseline model name.
        fo4: FO4 delay (ns) for depth normalisation; ``None`` reports
            raw nominal ns as "depth".
        fit_kwargs: Per-model stage-fit keyword overrides; defaults to
            :data:`DEFAULT_FIT_KWARGS`.

    Raises:
        SSTAError: For empty paths or a missing baseline model.
    """
    if not simulations:
        raise SSTAError("no stage simulations given")
    if baseline not in model_names:
        raise SSTAError(
            f"baseline {baseline!r} not among models {model_names}"
        )

    # Golden: exact per-sample partial sums.
    partial = np.zeros_like(simulations[0].delay)
    goldens: list[EmpiricalDistribution] = []
    nominals: list[float] = []
    running_nominal = 0.0
    for simulation in simulations:
        partial = partial + simulation.delay
        goldens.append(EmpiricalDistribution(partial.copy()))
        running_nominal += simulation.nominal
        nominals.append(running_nominal)

    overrides = (
        DEFAULT_FIT_KWARGS if fit_kwargs is None else fit_kwargs
    )
    binning_errors: dict[str, list[float]] = {
        name: [] for name in model_names
    }
    with telemetry.span(
        "ssta.propagate", n_stages=len(simulations)
    ):
        for name in model_names:
            model_cls = get_model(name)
            kwargs = overrides.get(name, {})
            accumulated = None
            with telemetry.span("ssta.model", model=name):
                for simulation, golden in zip(simulations, goldens):
                    stage_model = model_cls.fit(
                        simulation.delay, **kwargs
                    )
                    if accumulated is None:
                        accumulated = stage_model
                    else:
                        accumulated = sum_models(
                            accumulated, stage_model
                        )
                    telemetry.counter_inc("ssta.stages_propagated")
                    binning_errors[name].append(
                        binning_error(accumulated, golden)
                    )

    reductions: dict[str, tuple[float, ...]] = {}
    base_errors = binning_errors[baseline]
    for name in model_names:
        reductions[name] = tuple(
            error_reduction(base_error, model_error)
            for base_error, model_error in zip(
                base_errors, binning_errors[name]
            )
        )

    depths = tuple(
        value / fo4 if fo4 else value for value in nominals
    )
    return PathPropagationResult(
        stage_names=tuple(s.stage.name for s in simulations),
        cumulative_nominal=tuple(nominals),
        fo4_depths=depths,
        golden=tuple(goldens),
        binning_errors={
            name: tuple(values)
            for name, values in binning_errors.items()
        },
        reductions=reductions,
    )
