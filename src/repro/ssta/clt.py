"""Central-limit-theorem analysis tools (paper §3.4).

Quantifies how fast a summed stage-delay distribution becomes Gaussian:

- :func:`berry_esseen_bound` — Theorem 1's uniform CDF bound
  ``sup |F_n - Phi| <= C rho / sqrt(n)``;
- :func:`normalized_sup_distance` — the empirical left-hand side for a
  concrete stage distribution, demonstrating Corollaries 2 and 3 (the
  ``O(1/sqrt(n))`` rate, dominated by the third absolute moment).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.special import ndtr

from repro.errors import SSTAError

__all__ = [
    "BERRY_ESSEEN_CONSTANT",
    "CLTConvergenceRow",
    "berry_esseen_bound",
    "convergence_table",
    "normalized_sup_distance",
    "third_absolute_moment",
]

#: Best published universal constant (Shevtsova 2011).
BERRY_ESSEEN_CONSTANT = 0.4748


def third_absolute_moment(samples: np.ndarray) -> float:
    """``rho = E[|Y|^3]`` of the standardised samples."""
    data = np.asarray(samples, dtype=float).ravel()
    std = data.std()
    if std == 0.0:
        raise SSTAError("third absolute moment of constant samples")
    standardized = (data - data.mean()) / std
    return float(np.mean(np.abs(standardized) ** 3))


def berry_esseen_bound(rho: float, n_stages: int) -> float:
    """Theorem 1: ``C * rho / sqrt(n)``.

    Args:
        rho: Third absolute moment of a standardised stage delay.
        n_stages: Number of summed i.i.d. stages.
    """
    if rho < 1.0:
        # Jensen: E|Y|^3 >= (E Y^2)^{3/2} = 1 for standardised Y.
        raise SSTAError(f"rho must be >= 1 for standardised data, got {rho}")
    if n_stages < 1:
        raise SSTAError(f"n_stages must be >= 1, got {n_stages}")
    return BERRY_ESSEEN_CONSTANT * rho / math.sqrt(n_stages)


def normalized_sup_distance(path_samples: np.ndarray) -> float:
    """Empirical ``sup_x |F_n(x) - Phi(x)|`` of standardised samples.

    Args:
        path_samples: Per-sample summed path delays.

    Returns:
        The Kolmogorov distance between the standardised empirical
        distribution and the standard normal.
    """
    data = np.sort(np.asarray(path_samples, dtype=float).ravel())
    std = data.std()
    if std == 0.0:
        raise SSTAError("sup distance of constant samples")
    standardized = (data - data.mean()) / std
    n = standardized.size
    gaussian_cdf = ndtr(standardized)
    upper = np.max(np.arange(1, n + 1) / n - gaussian_cdf)
    lower = np.max(gaussian_cdf - np.arange(0, n) / n)
    return float(max(upper, lower))


@dataclass(frozen=True)
class CLTConvergenceRow:
    """One depth of the convergence experiment.

    Attributes:
        n_stages: Path depth in stages.
        sup_distance: Empirical Kolmogorov distance to Gaussian.
        bound: Berry-Esseen upper bound at this depth.
    """

    n_stages: int
    sup_distance: float
    bound: float


def convergence_table(
    stage_sampler,
    depths: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
    *,
    n_samples: int = 50_000,
    rng: np.random.Generator | int | None = 0,
) -> list[CLTConvergenceRow]:
    """Corollary 2 demonstration: sup-distance vs depth.

    Args:
        stage_sampler: ``f(n_samples, rng) -> samples`` drawing one
            i.i.d. stage-delay population.
        depths: Stage counts to evaluate.
        n_samples: Monte-Carlo population per depth.
        rng: Seed or generator.

    Returns:
        One row per depth; ``sup_distance`` should decay ~ 1/sqrt(n)
        and stay below ``bound`` (up to Monte-Carlo noise).
    """
    generator = (
        rng
        if isinstance(rng, np.random.Generator)
        else np.random.default_rng(rng)
    )
    reference = stage_sampler(n_samples, generator)
    rho = third_absolute_moment(reference)
    rows = []
    for depth in depths:
        total = np.zeros(n_samples)
        for _ in range(depth):
            total = total + stage_sampler(n_samples, generator)
        rows.append(
            CLTConvergenceRow(
                n_stages=depth,
                sup_distance=normalized_sup_distance(total),
                bound=berry_esseen_bound(rho, depth),
            )
        )
    return rows
