"""Gate-level netlists and full block-based SSTA (beyond chains).

The Fig. 5 experiment propagates along critical *paths* (pure SUM).
Real block-based SSTA [20] also merges reconvergent fan-in with the
statistical MAX.  This module provides the missing piece: a gate-level
netlist abstraction, a random layered-DAG generator for benchmarks, a
per-sample Monte-Carlo golden propagation (exact joint handling of the
max), and model-based propagation of all four timing models through
the same graph — so the models' MAX approximations can be scored
against golden at every primary output.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.circuits.cells import CellDefinition, build_cell
from repro.circuits.gate import GateTimingEngine
from repro.errors import SSTAError
from repro.models.base import TimingModel, get_model
from repro.ssta.graph import TimingGraph
from repro.ssta.ops import statistical_max, sum_models

__all__ = [
    "GateInstance",
    "Netlist",
    "NetlistSSTAResult",
    "random_netlist",
    "run_netlist_ssta",
]


@dataclass(frozen=True)
class GateInstance:
    """One placed gate: cell, input nets (pin order), output net."""

    name: str
    cell: CellDefinition
    input_nets: tuple[str, ...]
    output_net: str

    def __post_init__(self) -> None:
        if len(self.input_nets) != len(self.cell.inputs):
            raise SSTAError(
                f"{self.name}: {self.cell.name} has "
                f"{len(self.cell.inputs)} inputs, got "
                f"{len(self.input_nets)} nets"
            )


@dataclass
class Netlist:
    """A combinational gate-level netlist (DAG by construction).

    Attributes:
        instances: Gates in topological order.
        primary_inputs: Source net names.
    """

    instances: list[GateInstance] = field(default_factory=list)
    primary_inputs: list[str] = field(default_factory=list)

    @property
    def nets(self) -> list[str]:
        names = list(self.primary_inputs)
        names.extend(g.output_net for g in self.instances)
        return names

    @property
    def primary_outputs(self) -> list[str]:
        """Nets that drive no gate input."""
        used = {
            net
            for instance in self.instances
            for net in instance.input_nets
        }
        return [
            instance.output_net
            for instance in self.instances
            if instance.output_net not in used
        ]

    def fanout_load(self, net: str) -> float:
        """Capacitive load on ``net``: sum of receiver pin caps (pF)."""
        load = 0.0
        for instance in self.instances:
            for pin, pin_net in zip(
                instance.cell.inputs, instance.input_nets
            ):
                if pin_net == net:
                    load += instance.cell.input_capacitance(pin)
        # Primary outputs drive a default external load.
        return load if load > 0.0 else 0.005

    def validate(self) -> None:
        """Check the netlist is a well-formed DAG in list order.

        Raises:
            SSTAError: On dangling input nets or redefined outputs.
        """
        defined = set(self.primary_inputs)
        for instance in self.instances:
            for net in instance.input_nets:
                if net not in defined:
                    raise SSTAError(
                        f"{instance.name}: input net {net!r} is not "
                        "defined before use"
                    )
            if instance.output_net in defined:
                raise SSTAError(
                    f"{instance.name}: net {instance.output_net!r} "
                    "redefined"
                )
            defined.add(instance.output_net)


#: Cell families used by the random generator (2-input logic + buffers).
_RANDOM_CELLS = ("NAND2", "NOR2", "AND2", "OR2", "XOR2", "XNOR2", "INV")


def random_netlist(
    n_gates: int = 20,
    *,
    n_inputs: int = 4,
    seed: int = 0,
    cell_types: Sequence[str] = _RANDOM_CELLS,
) -> Netlist:
    """Generate a random layered combinational DAG.

    Each gate draws its input nets uniformly from already-defined nets,
    which guarantees acyclicity and creates reconvergent fan-in (the
    structure that exercises the statistical MAX).
    """
    if n_gates < 1 or n_inputs < 1:
        raise SSTAError("need at least one gate and one primary input")
    rng = np.random.default_rng(seed)
    netlist = Netlist(
        primary_inputs=[f"in{i}" for i in range(n_inputs)]
    )
    available = list(netlist.primary_inputs)
    for index in range(n_gates):
        cell = build_cell(str(rng.choice(list(cell_types))))
        chosen = rng.choice(
            len(available),
            size=len(cell.inputs),
            replace=len(available) < len(cell.inputs),
        )
        instance = GateInstance(
            name=f"g{index}",
            cell=cell,
            input_nets=tuple(available[i] for i in chosen),
            output_net=f"n{index}",
        )
        netlist.instances.append(instance)
        available.append(instance.output_net)
    netlist.validate()
    return netlist


def _arc_seed(seed: int, instance: str, pin: str) -> int:
    digest = hashlib.sha256(f"{seed}|{instance}|{pin}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass(frozen=True)
class NetlistSSTAResult:
    """Golden and model arrival distributions at the primary outputs.

    Attributes:
        netlist: The analysed netlist.
        golden: Per-sample arrival arrays per primary output.
        model_arrivals: ``{model: {net: fitted distribution}}``.
    """

    netlist: Netlist
    golden: dict[str, np.ndarray]
    model_arrivals: dict[str, dict[str, TimingModel]]

    def binning_error_reduction(
        self, net: str, model: str, baseline: str = "LVF"
    ) -> float:
        """Eq. 12 binning-error reduction at one output net."""
        from repro.binning.metrics import binning_error, error_reduction
        from repro.stats.empirical import EmpiricalDistribution

        golden = EmpiricalDistribution(self.golden[net])
        return error_reduction(
            binning_error(self.model_arrivals[baseline][net], golden),
            binning_error(self.model_arrivals[model][net], golden),
        )


def run_netlist_ssta(
    engine: GateTimingEngine,
    netlist: Netlist,
    n_samples: int = 5000,
    *,
    model_names: Sequence[str] = ("LVF2", "Norm2", "LESN", "LVF"),
    seed: int = 0,
    input_slew: float = 0.01,
) -> NetlistSSTAResult:
    """Full block-based SSTA on a netlist, golden + all models.

    Per (instance, input pin) arc: Monte-Carlo simulate the arc delay
    at its (nominal slew, fan-out load) condition; golden arrivals are
    exact per-sample propagations (sum + max on sample arrays), model
    arrivals use the per-family SUM and the numeric MAX.
    """
    netlist.validate()
    # Pass 1: nominal slews per net (single-scenario STA convention).
    slews: dict[str, float] = {
        net: input_slew for net in netlist.primary_inputs
    }
    arc_samples: dict[tuple[str, str], np.ndarray] = {}
    for instance in netlist.instances:
        load = netlist.fanout_load(instance.output_net)
        worst_transition = 0.0
        for pin, net in zip(instance.cell.inputs, instance.input_nets):
            topology = instance.cell.arc(pin, "fall")
            result = engine.simulate_arc(
                topology,
                slews[net],
                load,
                n_samples,
                rng=_arc_seed(seed, instance.name, pin),
            )
            arc_samples[(instance.name, pin)] = result.delay
            worst_transition = max(
                worst_transition, result.nominal_transition
            )
        slews[instance.output_net] = worst_transition

    # Pass 2: golden per-sample block-based propagation.
    golden_graph = TimingGraph()
    for instance in netlist.instances:
        for pin, net in zip(instance.cell.inputs, instance.input_nets):
            golden_graph.add_arc(
                net,
                instance.output_net,
                arc_samples[(instance.name, pin)],
            )
    golden_arrivals = golden_graph.arrival_times(
        lambda a, d: a + d, np.maximum
    )

    # Pass 3: per-model propagation through the same graph.
    model_arrivals: dict[str, dict[str, TimingModel]] = {}
    for model_name in model_names:
        model_cls = get_model(model_name)
        graph = TimingGraph()
        for instance in netlist.instances:
            for pin, net in zip(
                instance.cell.inputs, instance.input_nets
            ):
                graph.add_arc(
                    net,
                    instance.output_net,
                    model_cls.fit(arc_samples[(instance.name, pin)]),
                )
        model_arrivals[model_name] = graph.arrival_times(
            sum_models, statistical_max
        )

    outputs = netlist.primary_outputs
    return NetlistSSTAResult(
        netlist=netlist,
        golden={net: golden_arrivals[net] for net in outputs},
        model_arrivals={
            name: {net: arrivals[net] for net in outputs}
            for name, arrivals in model_arrivals.items()
        },
    )
