"""Block-based statistical static timing analysis (paper §3.4, §4.4)."""

from repro.ssta.clt import (
    BERRY_ESSEEN_CONSTANT,
    CLTConvergenceRow,
    berry_esseen_bound,
    convergence_table,
    normalized_sup_distance,
    third_absolute_moment,
)
from repro.ssta.fo4 import fo4_condition, fo4_delay
from repro.ssta.graph import TimingGraph, golden_operators, model_operators
from repro.ssta.netlist import (
    GateInstance,
    Netlist,
    NetlistSSTAResult,
    random_netlist,
    run_netlist_ssta,
)
from repro.ssta.ops import (
    clark_max,
    shift_model,
    statistical_max,
    sum_models,
    summed_moments,
)
from repro.ssta.paths import (
    PathStage,
    StageSimulation,
    build_carry_adder_path,
    build_htree_path,
    simulate_path_stages,
)
from repro.ssta.propagate import PathPropagationResult, propagate_path

__all__ = [
    "BERRY_ESSEEN_CONSTANT",
    "CLTConvergenceRow",
    "GateInstance",
    "Netlist",
    "NetlistSSTAResult",
    "PathPropagationResult",
    "PathStage",
    "StageSimulation",
    "TimingGraph",
    "berry_esseen_bound",
    "build_carry_adder_path",
    "build_htree_path",
    "clark_max",
    "convergence_table",
    "fo4_condition",
    "fo4_delay",
    "golden_operators",
    "model_operators",
    "normalized_sup_distance",
    "propagate_path",
    "random_netlist",
    "run_netlist_ssta",
    "shift_model",
    "simulate_path_stages",
    "statistical_max",
    "sum_models",
    "summed_moments",
]
