"""Statistical sum / max operators for block-based SSTA (paper §4.4).

Block-based SSTA [20] propagates arrival-time distributions through a
timing graph with two operations:

- ``SUM`` for an arc traversal (arrival + arc delay): implemented per
  model family by *cumulant addition* — cumulants of independent sums
  add exactly, and each family re-materialises a distribution from the
  cumulants it can represent (3 for SN, 4 for LESN, component-wise for
  mixtures).  This is exactly the propagation scheme whose accumulated
  matching error the paper discusses.

- ``MAX`` for a fan-in merge: a generic independence-based numeric
  operator (``F_max = F_a * F_b`` on a grid, re-fitted into the model
  family through deterministic quantile samples), with the classic
  Clark moment approximation available for Gaussians.

Mixture models stay mixtures under SUM: the pairwise component sums
give ``k*k`` components, which are reduced back to 2 by
moment-preserving largest-gap clustering so LVF2 stays the
seven-parameter format along an arbitrarily deep path.
"""

from __future__ import annotations

import math
from functools import singledispatch

import numpy as np

from repro.errors import FittingError, SSTAError
from repro.models.base import TimingModel
from repro.runtime import telemetry
from repro.runtime.report import FitAttempt, FitContext, FitOutcome
from repro.models.gaussian import GaussianModel
from repro.models.lesn import LESNModel
from repro.models.lvf import LVFModel
from repro.models.lvf2 import LVF2Model
from repro.models.norm2 import Norm2Model
from repro.stats.mixtures import mixture_moments
from repro.stats.moments import MomentSummary

__all__ = [
    "sum_models",
    "shift_model",
    "statistical_max",
    "clark_max",
    "summed_moments",
]


def summed_moments(a: MomentSummary, b: MomentSummary) -> MomentSummary:
    """Four-moment summary of an independent sum (cumulants add)."""
    mean = a.mean + b.mean
    variance = a.variance + b.variance
    third = a.skewness * a.std**3 + b.skewness * b.std**3
    fourth_cum = a.kurtosis * a.std**4 + b.kurtosis * b.std**4
    std = math.sqrt(variance)
    return MomentSummary(
        mean,
        std,
        third / std**3,
        fourth_cum / std**4,
        count=0,
    )


# ----------------------------------------------------------------------
# SUM
# ----------------------------------------------------------------------
@singledispatch
def sum_models(a: TimingModel, b: TimingModel) -> TimingModel:
    """Distribution of the independent sum ``A + B``, family of ``a``.

    Raises:
        SSTAError: When no propagation rule exists for the family of
            ``a``.
    """
    raise SSTAError(
        f"no SUM rule for model family {type(a).__name__}"
    )


@sum_models.register
def _sum_gaussian(a: GaussianModel, b: TimingModel) -> GaussianModel:
    summary = summed_moments(a.moments(), b.moments())
    return GaussianModel(summary.mean, summary.std)


@sum_models.register
def _sum_lvf(a: LVFModel, b: TimingModel) -> LVFModel:
    """Three-cumulant propagation; the classic SN block-based rule."""
    summary = summed_moments(a.moments(), b.moments())
    return LVFModel(summary.mean, summary.std, summary.skewness)


@sum_models.register
def _sum_lesn(a: LESNModel, b: TimingModel) -> LESNModel:
    """Four-cumulant propagation + LESN re-materialisation.

    The re-materialisation (moment matching) step is where the §4.4
    "error introduced during moment matching, which accumulates during
    propagation" enters.
    """
    summary = summed_moments(a.moments(), b.moments())
    return LESNModel.from_linear_moments(summary)


def _pairwise_mixture_sum(
    a_weights,
    a_components,
    b_weights,
    b_components,
    combine,
) -> tuple[list[float], list]:
    weights: list[float] = []
    components: list = []
    for wa, ca in zip(a_weights, a_components):
        for wb, cb in zip(b_weights, b_components):
            weight = wa * wb
            if weight <= 0.0:
                continue
            weights.append(weight)
            components.append(combine(ca, cb))
    return weights, components


def _largest_gap_reduction(
    weights: list[float],
    components: list,
    materialize,
) -> tuple[list[float], list]:
    """Reduce a >2-component mixture to 2 by largest-gap clustering.

    Components are sorted by mean and split at the widest gap between
    neighbouring means — the natural grouping for the ``2 x 2``
    pairwise-sum structure, where the larger-separation parent mixture
    dominates the mode layout.  Each group is collapsed to one
    component matching the group's exact sub-mixture moments, so the
    reduced mixture preserves the full mixture's mean and variance
    exactly (and skewness up to family representability).
    """
    order = np.argsort([c.moments().mean for c in components])
    weights = [weights[i] for i in order]
    components = [components[i] for i in order]
    means = [c.moments().mean for c in components]
    gaps = np.diff(means)
    split = int(np.argmax(gaps)) + 1
    reduced_weights: list[float] = []
    reduced_components: list = []
    for group in (slice(0, split), slice(split, None)):
        group_weights = weights[group]
        group_components = components[group]
        total = sum(group_weights)
        if total <= 0.0:
            continue
        if len(group_components) == 1:
            reduced_weights.append(total)
            reduced_components.append(group_components[0])
            continue
        summary = mixture_moments(
            [w / total for w in group_weights],
            [c.moments() for c in group_components],
        )
        reduced_weights.append(total)
        reduced_components.append(materialize(summary))
    return reduced_weights, reduced_components


def _sum_mixture(a, b, component_sum, model_cls, collapse, materialize):
    """Shared mixture SUM: exact pairwise sum + largest-gap reduction.

    The pairwise sum of a ``k``- and an ``l``-component mixture is an
    exact ``k*l``-component mixture (each pair summed in-family by
    cumulant addition).  When that exceeds the format's two
    components, the mixture is reduced by moment-preserving
    largest-gap clustering, keeping the propagated mean/variance exact
    along arbitrarily deep paths.
    """
    b_weights, b_components = _as_mixture(b)
    weights, components = _pairwise_mixture_sum(
        a.mixture.weights,
        a.mixture.components,
        b_weights,
        b_components,
        component_sum,
    )
    if len(components) > 2:
        weights, components = _largest_gap_reduction(
            weights, components, materialize
        )
    order = np.argsort([c.moments().mean for c in components])
    components = [components[i] for i in order]
    weights = [weights[i] for i in order]
    if len(components) == 1:
        return collapse(components[0])
    total = sum(weights)
    return model_cls(weights[1] / total, components[0], components[1])


@sum_models.register
def _sum_norm2(a: Norm2Model, b: TimingModel) -> Norm2Model:
    return _sum_mixture(
        a,
        b,
        lambda ca, cb: GaussianModel(
            *_gaussian_params(summed_moments(ca.moments(), cb.moments()))
        ),
        Norm2Model,
        lambda component: Norm2Model(0.0, component, None),
        lambda summary: GaussianModel(summary.mean, summary.std),
    )


@sum_models.register
def _sum_lvf2(a: LVF2Model, b: TimingModel) -> LVF2Model:
    return _sum_mixture(
        a,
        b,
        lambda ca, cb: _lvf_from_summary(
            summed_moments(ca.moments(), cb.moments())
        ),
        LVF2Model,
        lambda component: LVF2Model(0.0, component, None),
        _lvf_from_summary,
    )


def _lvf_from_summary(summary: MomentSummary) -> LVFModel:
    return LVFModel(summary.mean, summary.std, summary.skewness)


def _gaussian_params(summary: MomentSummary) -> tuple[float, float]:
    return (summary.mean, summary.std)


def _as_mixture(model: TimingModel) -> tuple[tuple, tuple]:
    """View any model as a (weights, components) mixture."""
    if isinstance(model, (Norm2Model, LVF2Model)):
        return (model.mixture.weights, model.mixture.components)
    return ((1.0,), (model,))


# ----------------------------------------------------------------------
# Shift (deterministic offset, e.g. Elmore wire delay)
# ----------------------------------------------------------------------
def shift_model(model: TimingModel, offset: float) -> TimingModel:
    """Distribution of ``X + offset`` in the same family."""
    if isinstance(model, GaussianModel):
        return GaussianModel(model.mu + offset, model.sigma)
    if isinstance(model, LVFModel):
        return LVFModel(
            model.mu + offset, model.sigma, model.gamma,
            nominal=model.nominal,
        )
    if isinstance(model, Norm2Model):
        second = model.component2
        return Norm2Model(
            model.weight,
            GaussianModel(
                model.component1.mu + offset, model.component1.sigma
            ),
            None
            if second is None
            else GaussianModel(second.mu + offset, second.sigma),
        )
    if isinstance(model, LVF2Model):
        second = model.component2
        return LVF2Model(
            model.weight,
            shift_model(model.component1, offset),
            None if second is None else shift_model(second, offset),
            nominal=model.nominal,
        )
    if isinstance(model, LESNModel):
        summary = model.moments()
        return LESNModel.from_linear_moments(
            MomentSummary(
                summary.mean + offset,
                summary.std,
                summary.skewness,
                summary.kurtosis,
            )
        )
    raise SSTAError(
        f"no SHIFT rule for model family {type(model).__name__}"
    )


# ----------------------------------------------------------------------
# MAX
# ----------------------------------------------------------------------
def clark_max(a: GaussianModel, b: GaussianModel) -> GaussianModel:
    """Clark's two-moment Gaussian max approximation (independent)."""
    theta = math.sqrt(a.sigma**2 + b.sigma**2)
    if theta == 0.0:
        return GaussianModel(max(a.mu, b.mu), max(a.sigma, b.sigma))
    from scipy.special import ndtr

    alpha = (a.mu - b.mu) / theta
    phi = math.exp(-0.5 * alpha * alpha) / math.sqrt(2.0 * math.pi)
    big_phi = float(ndtr(alpha))
    mean = a.mu * big_phi + b.mu * (1.0 - big_phi) + theta * phi
    second = (
        (a.mu**2 + a.sigma**2) * big_phi
        + (b.mu**2 + b.sigma**2) * (1.0 - big_phi)
        + (a.mu + b.mu) * theta * phi
    )
    variance = max(second - mean * mean, 1e-18)
    return GaussianModel(mean, math.sqrt(variance))


def _gaussian_max_fallback(
    a: TimingModel,
    b: TimingModel,
    error: BaseException | str,
    report,
) -> GaussianModel:
    """Degraded MAX rung: Clark max of moment-matched Gaussians.

    Always well-defined (Clark needs only the first two moments, which
    every family exposes), at the cost of the family's shape detail —
    the same trade the FitPolicy ladder makes when it falls back to its
    Gaussian rung.  The degradation is recorded like any other ladder
    outcome so an SSTA run's report names exactly which MAX operations
    lost their family.
    """
    telemetry.counter_inc("ssta.max_op.degraded")
    moments_a = a.moments()
    moments_b = b.moments()
    result = clark_max(
        GaussianModel(moments_a.mean, moments_a.std),
        GaussianModel(moments_b.mean, moments_b.std),
    )
    if report is not None:
        report.record_fit(
            FitContext(
                cell="ssta",
                pin="max",
                transition=type(a).__name__,
                quantity="max",
            ),
            FitOutcome(
                model=result,
                rung="Gaussian-max",
                degraded=True,
                attempts=(
                    FitAttempt(
                        rung=type(a).__name__, error=str(error)
                    ),
                ),
            ),
        )
    return result


def statistical_max(
    a: TimingModel,
    b: TimingModel,
    *,
    n_grid: int = 2048,
    n_quantiles: int = 4096,
    fallback: bool = True,
    report=None,
) -> TimingModel:
    """Distribution of ``max(A, B)`` (independent), family of ``a``.

    Numeric and family-agnostic: the max CDF is the product of CDFs;
    the result is re-fitted into ``a``'s family from deterministic
    quantile pseudo-samples of that CDF.

    When that re-fit (the moment-matching step) fails and ``fallback``
    is True (default), the operator degrades to the Gaussian-max
    approximation instead of raising: Clark's max over moment-matched
    Gaussians of ``a`` and ``b``.  The degradation is counted
    (``ssta.max_op.degraded``, next to the existing
    ``ssta.max_op.moment_match_failures``) and — when a
    :class:`~repro.runtime.report.FitReport` is passed — recorded as a
    ``Gaussian-max`` rung outcome.  With ``fallback=False`` the
    original error propagates.

    Raises:
        SSTAError: ``fallback=False`` and the max CDF vanished on the
            evaluation grid.
        FittingError: ``fallback=False`` and the family re-fit failed.
    """
    telemetry.counter_inc("ssta.max_op.calls")
    with telemetry.span("ssta.max", family=type(a).__name__):
        moments_a = a.moments()
        moments_b = b.moments()
        lo = min(
            moments_a.sigma_point(-8.0), moments_b.sigma_point(-8.0)
        )
        hi = max(moments_a.sigma_point(8.0), moments_b.sigma_point(8.0))
        grid = np.linspace(lo, hi, n_grid)
        cdf = np.asarray(a.cdf(grid)) * np.asarray(b.cdf(grid))
        cdf = np.clip(cdf, 0.0, 1.0)
        cdf = np.maximum.accumulate(cdf)
        if cdf[-1] <= 0.0:
            telemetry.counter_inc("ssta.max_op.moment_match_failures")
            if fallback:
                return _gaussian_max_fallback(
                    a,
                    b,
                    "max CDF vanished on the evaluation grid",
                    report,
                )
            raise SSTAError("max CDF vanished on the evaluation grid")
        cdf = cdf / cdf[-1]
        probabilities = (np.arange(n_quantiles) + 0.5) / n_quantiles
        pseudo_samples = np.interp(probabilities, cdf, grid)
        try:
            return type(a).fit(pseudo_samples)
        except (FittingError, ValueError, ArithmeticError) as error:
            # Re-materialising max(A, B) back into a's family is the
            # moment-matching step that can fail for degenerate
            # inputs; count it so SSTA runs expose how often the MAX
            # operator degrades before the caller sees the error.
            telemetry.counter_inc("ssta.max_op.moment_match_failures")
            if fallback:
                return _gaussian_max_fallback(a, b, error, report)
            raise
