"""Timing graph and block-based propagation.

A thin DAG layer over :mod:`networkx`: nodes are circuit pins/nets,
edges carry *delay objects* (golden sample arrays or fitted timing
models — anything the supplied operators understand).  Propagation is
the classic block-based scheme [20]: topological order, arrival =
MAX over fan-in of (arrival + edge delay).

The operators are injected so one graph serves every model family and
the Monte-Carlo golden:

- golden:   ``sum = a + d`` on sample arrays, ``max = np.maximum``
- models:   :func:`repro.ssta.ops.sum_models`,
            :func:`repro.ssta.ops.statistical_max`
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable
from dataclasses import dataclass, field
from typing import Any

import networkx as nx

from repro.errors import SSTAError

__all__ = ["TimingGraph", "golden_operators", "model_operators"]

SumOp = Callable[[Any, Any], Any]
MaxOp = Callable[[Any, Any], Any]


def golden_operators() -> tuple[SumOp, MaxOp]:
    """Sum/max operators for per-sample golden arrays."""
    import numpy as np

    return (lambda a, d: a + d, np.maximum)


def model_operators() -> tuple[SumOp, MaxOp]:
    """Sum/max operators for fitted timing models."""
    from repro.ssta.ops import statistical_max, sum_models

    return (sum_models, statistical_max)


@dataclass
class TimingGraph:
    """A DAG of timing arcs with pluggable delay algebra."""

    _graph: nx.DiGraph = field(default_factory=nx.DiGraph)

    def add_arc(
        self, source: Hashable, target: Hashable, delay: Any
    ) -> None:
        """Add a timing arc carrying ``delay``.

        Raises:
            SSTAError: If the arc would create a cycle.
        """
        self._graph.add_edge(source, target, delay=delay)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(source, target)
            raise SSTAError(
                f"arc {source!r} -> {target!r} would create a cycle"
            )

    @property
    def n_nodes(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def n_arcs(self) -> int:
        return self._graph.number_of_edges()

    def sources(self) -> list[Hashable]:
        """Primary inputs: nodes with no fan-in."""
        return [
            node
            for node in self._graph.nodes
            if self._graph.in_degree(node) == 0
        ]

    def sinks(self) -> list[Hashable]:
        """Primary outputs: nodes with no fan-out."""
        return [
            node
            for node in self._graph.nodes
            if self._graph.out_degree(node) == 0
        ]

    def delay(self, source: Hashable, target: Hashable) -> Any:
        try:
            return self._graph.edges[source, target]["delay"]
        except KeyError:
            raise SSTAError(
                f"no arc {source!r} -> {target!r}"
            ) from None

    # ------------------------------------------------------------------
    def arrival_times(
        self,
        sum_op: SumOp,
        max_op: MaxOp,
        *,
        source_arrivals: dict[Hashable, Any] | None = None,
    ) -> dict[Hashable, Any]:
        """Block-based forward propagation.

        Args:
            sum_op: ``arrival (+) arc delay``.
            max_op: Fan-in merge.
            source_arrivals: Optional initial arrival objects for
                primary inputs; inputs not listed start at "zero"
                (i.e. the first arc delay passes through unchanged).

        Returns:
            Arrival object per reachable node.  A source with no
            explicit arrival maps to ``None``.
        """
        if self._graph.number_of_nodes() == 0:
            raise SSTAError("cannot propagate through an empty graph")
        arrivals: dict[Hashable, Any] = dict(source_arrivals or {})
        for node in self.sources():
            arrivals.setdefault(node, None)
        for node in nx.topological_sort(self._graph):
            candidates = []
            for predecessor in self._graph.predecessors(node):
                delay = self._graph.edges[predecessor, node]["delay"]
                upstream = arrivals.get(predecessor)
                if upstream is None:
                    candidates.append(delay)
                else:
                    candidates.append(sum_op(upstream, delay))
            if not candidates:
                continue  # source node, arrival already set
            merged = candidates[0]
            for candidate in candidates[1:]:
                merged = max_op(merged, candidate)
            arrivals[node] = merged
        return arrivals

    def arrival_at(
        self,
        node: Hashable,
        sum_op: SumOp,
        max_op: MaxOp,
        **kwargs: Any,
    ) -> Any:
        """Arrival object at a single node.

        Raises:
            SSTAError: When the node was never reached.
        """
        arrivals = self.arrival_times(sum_op, max_op, **kwargs)
        if node not in arrivals or arrivals[node] is None:
            raise SSTAError(f"node {node!r} has no arrival time")
        return arrivals[node]

    @classmethod
    def chain(cls, delays: Iterable[Any]) -> "TimingGraph":
        """Build a simple path graph ``n0 -> n1 -> ...`` from delays."""
        graph = cls()
        for index, delay in enumerate(delays):
            graph.add_arc(f"n{index}", f"n{index + 1}", delay)
        if graph.n_arcs == 0:
            raise SSTAError("chain needs at least one delay")
        return graph
