"""Interprocedural flow lint: determinism provenance + pool FS races.

The third lint engine.  Where :mod:`repro.analysis.python_lint` judges
one line at a time and :mod:`repro.analysis.liberty_lint` judges one
library at a time, this package follows *values* — RNG objects,
wall-clock reads, ``os.environ`` lookups, pool-protocol paths —
across call, return and attribute boundaries through the whole linted
tree, and flags them only when they reach a sink that the repo's
determinism or pool-protocol contracts care about:

- ``FLOW001`` — a nondeterministically seeded RNG reaches an LHS/EM/
  k-means/SSTA sampling API;
- ``FLOW002``/``FLOW003`` — wall-clock/entropy (resp. environment)
  values reach content-key, fingerprint, seed-derivation or shard
  computation;
- ``POOL001``–``POOL003`` — checkpoint/claim/journal/status paths are
  mutated outside the sanctioned idioms (fsfaults seam, O_EXCL claim
  birth, temp-file+rename payload staging).

Entry points: :func:`lint_flow_paths` / :func:`lint_flow_sources`;
architecture and soundness limits are documented in DESIGN.md §12.
"""

from repro.analysis.flow.engine import lint_flow_paths, lint_flow_sources
from repro.analysis.flow.symbols import (
    SymbolTable,
    build_symbol_table,
    module_name_for,
)
from repro.analysis.flow.taint import FlowConfig

__all__ = [
    "FlowConfig",
    "SymbolTable",
    "build_symbol_table",
    "lint_flow_paths",
    "lint_flow_sources",
    "module_name_for",
]
