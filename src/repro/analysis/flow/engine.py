"""Whole-tree fixpoint driver and entry points for the flow pass.

The pass runs in two phases over the :class:`~repro.analysis.flow.
symbols.SymbolTable` of every linted file:

1. **Summary fixpoint.**  Each round first abstract-interprets every
   module body (so module constants like ``SUFFIX = ".claim"`` seed
   path taint into the module namespace), then every function in
   qualname order, joining the new :class:`~repro.analysis.flow.
   taint.Summary` into the old one.  Summaries, class-attribute taint
   and module namespaces only ever grow, so the iteration is monotone
   over finite label sets and terminates; ``max_rounds`` is a
   belt-and-braces cap, sized generously above the deepest
   return-chain in the tree.
2. **Report pass.**  One more sweep with reporting enabled: sink hits
   whose trigger labels are concrete become findings; everything
   symbolic was already lifted into caller summaries during phase 1
   and fires at the call site that supplies the concrete value.

Findings are deduplicated on ``(file, line, rule, message)`` — the
may-call join can reach the same sink through several candidate
callees — and returned in the stable :meth:`Finding.sort_key` order
the other engines use, so the reporters and the suppression/baseline
machinery treat all three engines identically.
"""

from __future__ import annotations

from repro.analysis.findings import Finding
from repro.analysis.flow.symbols import SymbolTable, build_symbol_table
from repro.analysis.flow.taint import FlowConfig, FunctionAnalyzer, Summary
from repro.analysis.python_lint import collect_python_files

__all__ = [
    "lint_flow_paths",
    "lint_flow_sources",
]


def _join(old: Summary | None, new: Summary) -> Summary:
    if old is None:
        return new
    return Summary(
        returns=old.returns | new.returns,
        param_sinks=old.param_sinks | new.param_sinks,
    )


def _sweep(
    config: FlowConfig,
    table: SymbolTable,
    summaries: dict[str, Summary],
    class_attrs: dict,
    module_envs: dict,
    lines_by_file: dict[str, list[str]],
    report: list[Finding] | None,
) -> bool:
    """One whole-program round; True when any summary grew."""
    changed = False
    for name in sorted(table.modules):
        module = table.modules[name]
        FunctionAnalyzer(
            config,
            table,
            module,
            None,
            summaries,
            class_attrs,
            module_envs,
            lines_by_file[module.file],
            report=report,
        ).run()
    for info in table.functions():
        module = table.modules[info.module]
        fresh = FunctionAnalyzer(
            config,
            table,
            module,
            info,
            summaries,
            class_attrs,
            module_envs,
            lines_by_file[info.file],
            report=report,
        ).run()
        merged = _join(summaries.get(info.qualname), fresh)
        if merged != summaries.get(info.qualname):
            summaries[info.qualname] = merged
            changed = True
    return changed


def lint_flow_sources(
    sources: dict[str, str],
    config: FlowConfig | None = None,
) -> list[Finding]:
    """Run the interprocedural pass over ``path → source text``.

    Returns findings for the FLOW0xx/POOL0xx rules, sorted; inline
    suppressions and baselines are the caller's concern (the CLI
    applies :func:`repro.analysis.suppressions.apply_suppressions`
    exactly as it does for the per-file engines).
    """
    config = config or FlowConfig()
    table = build_symbol_table(sources)
    lines_by_file = {
        path: text.splitlines() for path, text in sources.items()
    }
    summaries: dict[str, Summary] = {}
    class_attrs: dict = {}
    module_envs: dict = {}
    for _ in range(config.max_rounds):
        if not _sweep(
            config,
            table,
            summaries,
            class_attrs,
            module_envs,
            lines_by_file,
            report=None,
        ):
            break
    report: list[Finding] = []
    _sweep(
        config,
        table,
        summaries,
        class_attrs,
        module_envs,
        lines_by_file,
        report=report,
    )
    unique = {
        (f.file, f.line, f.rule_id, f.message): f for f in report
    }
    return sorted(unique.values(), key=Finding.sort_key)


def lint_flow_paths(
    paths: list[str],
    config: FlowConfig | None = None,
) -> tuple[list[Finding], dict[str, str]]:
    """Flow-lint files/trees; returns ``(findings, sources)``.

    Mirrors :func:`repro.analysis.python_lint.lint_paths` so the CLI
    can feed the same ``sources`` map into the suppression scanner.
    """
    files = collect_python_files(paths)
    sources: dict[str, str] = {}
    for path in files:
        sources[str(path)] = path.read_text(encoding="utf-8")
    return lint_flow_sources(sources, config), sources
