"""Module-level symbol resolution for the interprocedural flow engine.

The flow pass (:mod:`repro.analysis.flow.engine`) needs to answer one
question the per-file linters never ask: *which function does this
call land in?*  This module builds the whole-program index that makes
that answer cheap:

- every linted file becomes a :class:`ModuleInfo` with its dotted
  module name (``src/repro/runtime/pool/claims.py`` →
  ``repro.runtime.pool.claims``), its import alias map, its top-level
  constants, and its functions/methods;
- every function/method becomes a :class:`FunctionInfo` keyed by
  qualified name (``repro.runtime.checkpoint.CheckpointStore.save``);
- :meth:`SymbolTable.resolve` maps a dotted call expression, as
  written at a call site, to the candidate :class:`FunctionInfo`
  targets — through import aliases, ``self.``-method dispatch,
  same-module names, class constructors, and (for attribute calls on
  values of unknown type) a join over every method sharing the
  terminal name.

Resolution is deliberately *may-call*: when the receiver type is
unknown, all same-named methods are candidates and the taint engine
joins their summaries.  That over-approximates data flow (documented
in DESIGN.md §12 with the other soundness limits) but never invents a
concrete taint source, so it widens coverage without manufacturing
false positives.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import PurePosixPath

from repro.errors import ParameterError

__all__ = [
    "FunctionInfo",
    "ModuleInfo",
    "SymbolTable",
    "build_symbol_table",
    "module_name_for",
]


def _posix(path: str) -> str:
    return path.replace("\\", "/")


def module_name_for(path: str, root: str | None = None) -> str:
    """Dotted module name for a source path.

    Files inside a ``repro`` package directory get their canonical
    package name (so aliases resolve identically no matter where the
    checkout lives); anything else is named relative to ``root`` (the
    common parent of the linted files), which is what makes small
    fixture trees in a tmp directory resolve their own imports.
    """
    pure = PurePosixPath(_posix(path)).with_suffix("")
    parts = list(pure.parts)
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[anchor:]
    elif root is not None:
        root_parts = PurePosixPath(_posix(root)).parts
        if tuple(parts[: len(root_parts)]) == root_parts:
            parts = parts[len(root_parts):]
        else:
            parts = parts[-1:]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part) or pure.stem


@dataclass
class FunctionInfo:
    """One analyzable function or method.

    Attributes:
        qualname: Fully qualified name, e.g.
            ``repro.runtime.pool.claims.ClaimStore.key_path``.
        module: Dotted name of the defining module.
        cls: Qualified name of the enclosing class, or None.
        name: Terminal (unqualified) name.
        file: Source path as given to the engine.
        node: The function's AST.
        params: Positional parameter names in order (including
            ``self``/``cls`` for instance/class methods).
        kwonly: Keyword-only parameter names.
        is_method: Whether calls in attribute form bind a receiver
            (False for plain functions and ``@staticmethod``).
    """

    qualname: str
    module: str
    cls: str | None
    name: str
    file: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: tuple[str, ...]
    kwonly: tuple[str, ...]
    is_method: bool

    @property
    def display(self) -> str:
        """Short human name for finding messages."""
        if self.cls is not None:
            return f"{self.cls.rsplit('.', 1)[-1]}.{self.name}"
        return self.name


@dataclass
class ModuleInfo:
    """One parsed module and its import-time namespace.

    Attributes:
        name: Dotted module name.
        file: Source path as given to the engine.
        tree: Parsed AST of the whole module.
        imports: Local alias → qualified dotted prefix.
        constants: Top-level simple-assignment expressions by name
            (taint-evaluated by the engine each round, so a module
            constant like ``SUFFIX = ".claim"`` seeds path taint).
        classes: Class name → method-name set, for constructor and
            ``ClassName.method`` resolution.
    """

    name: str
    file: str
    tree: ast.Module
    imports: dict[str, str] = field(default_factory=dict)
    constants: dict[str, ast.expr] = field(default_factory=dict)
    classes: dict[str, set[str]] = field(default_factory=dict)


#: Method names shared with builtin containers/strings/files.  The
#: unknown-receiver fallback in :meth:`SymbolTable.resolve` never
#: joins these — a plain ``list.append`` or ``dict.update`` call site
#: would otherwise inherit the summaries of every linted method that
#: happens to reuse the name.
_BUILTIN_METHODS = frozenset(
    {
        "append",
        "add",
        "extend",
        "insert",
        "remove",
        "discard",
        "pop",
        "popitem",
        "clear",
        "copy",
        "count",
        "index",
        "sort",
        "reverse",
        "update",
        "get",
        "setdefault",
        "keys",
        "values",
        "items",
        "join",
        "split",
        "rsplit",
        "splitlines",
        "strip",
        "lstrip",
        "rstrip",
        "format",
        "replace",
        "startswith",
        "endswith",
        "encode",
        "decode",
        "lower",
        "upper",
        "read",
        "readline",
        "readlines",
        "write",
        "close",
        "flush",
        "seek",
        "tell",
    }
)


def _is_static(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return any(
        isinstance(dec, ast.Name) and dec.id == "staticmethod"
        for dec in node.decorator_list
    )


def _param_names(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    positional = tuple(
        arg.arg for arg in node.args.posonlyargs + node.args.args
    )
    kwonly = tuple(arg.arg for arg in node.args.kwonlyargs)
    return positional, kwonly


class SymbolTable:
    """Whole-program function index over the linted files."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.by_file: dict[str, ModuleInfo] = {}
        self.by_qualname: dict[str, FunctionInfo] = {}
        self._by_terminal: dict[str, list[FunctionInfo]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_module(self, path: str, tree: ast.Module, root: str | None) -> ModuleInfo:
        name = module_name_for(path, root)
        module = ModuleInfo(name=name, file=path, tree=tree)
        self._index_imports(module)
        self._index_body(module)
        self.modules[name] = module
        self.by_file[path] = module
        return module

    def _index_imports(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = (
                        alias.name
                        if alias.asname
                        else alias.name.split(".")[0]
                    )
                    module.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    # Relative import: one level strips the module
                    # itself, further levels strip enclosing packages.
                    parts = module.name.split(".")
                    parts = parts[: max(len(parts) - node.level, 0)]
                    if node.module:
                        parts.append(node.module)
                    base = ".".join(parts)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    module.imports[local] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )

    def _register(self, info: FunctionInfo) -> None:
        self.by_qualname[info.qualname] = info
        self._by_terminal.setdefault(info.name, []).append(info)

    def _index_function(
        self,
        module: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: str | None,
    ) -> None:
        params, kwonly = _param_names(node)
        qual = (
            f"{cls}.{node.name}" if cls else f"{module.name}.{node.name}"
        )
        self._register(
            FunctionInfo(
                qualname=qual,
                module=module.name,
                cls=cls,
                name=node.name,
                file=module.file,
                node=node,
                params=params,
                kwonly=kwonly,
                is_method=cls is not None and not _is_static(node),
            )
        )

    def _index_body(self, module: ModuleInfo) -> None:
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(module, stmt, cls=None)
            elif isinstance(stmt, ast.ClassDef):
                cls_qual = f"{module.name}.{stmt.name}"
                methods: set[str] = set()
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        methods.add(sub.name)
                        self._index_function(module, sub, cls=cls_qual)
                module.classes[stmt.name] = methods
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        module.constants[target.id] = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                    module.constants[stmt.target.id] = stmt.value

    # ------------------------------------------------------------------
    # Call resolution
    # ------------------------------------------------------------------
    def functions(self) -> list[FunctionInfo]:
        """All indexed functions in a stable (qualname) order."""
        return [
            self.by_qualname[key] for key in sorted(self.by_qualname)
        ]

    def resolve(
        self,
        module: ModuleInfo,
        cls: str | None,
        dotted: tuple[str, ...],
    ) -> list[tuple[FunctionInfo, int]]:
        """Candidate ``(target, receiver_offset)`` pairs for a call.

        ``receiver_offset`` is 1 when the call's positional arguments
        bind from the target's second parameter on (instance-style
        dispatch where ``self`` is the receiver), 0 when they bind
        from the first.
        """
        if not dotted:
            return []
        if dotted[0] == "self" and cls is not None and len(dotted) == 2:
            info = self.by_qualname.get(f"{cls}.{dotted[1]}")
            if info is not None:
                return [(info, 1 if info.is_method else 0)]
        head = dotted[0]
        qual: str | None = None
        if head in module.imports:
            qual = ".".join((module.imports[head], *dotted[1:]))
        elif len(dotted) == 1:
            if f"{module.name}.{head}" in self.by_qualname:
                qual = f"{module.name}.{head}"
            elif head in module.classes:
                qual = f"{module.name}.{head}"
        elif dotted[0] in module.classes:
            qual = f"{module.name}.{'.'.join(dotted)}"
        if qual is not None:
            info = self.by_qualname.get(qual)
            if info is not None:
                # Explicit ClassName.method(obj, ...) passes the
                # receiver positionally; self.m / alias-module calls
                # do not reach this branch with a receiver.
                offset = 0
                return [(info, offset)]
            init = self.by_qualname.get(f"{qual}.__init__")
            if init is not None:
                return [(init, 1)]
            return []  # resolved to something outside the linted tree
        if len(dotted) >= 2 and dotted[-1] not in _BUILTIN_METHODS:
            # Attribute call on a value of unknown type: join every
            # same-named method (may-call approximation).  Names that
            # collide with builtin container/string/file methods are
            # excluded — `diagnostics.append(...)` must not join
            # `PoolJournal.append` just because both say "append".
            return [
                (info, 1)
                for info in self._by_terminal.get(dotted[-1], ())
                if info.is_method
            ]
        return []


def build_symbol_table(sources: dict[str, str]) -> SymbolTable:
    """Parse and index ``path → source text`` into a symbol table.

    Raises:
        ParameterError: When a source does not parse — like the
            per-file engine, the flow pass cannot vouch for a tree it
            cannot read.
    """
    if not sources:
        raise ParameterError("flow lint needs at least one source file")
    directories = {
        os.path.dirname(_posix(path)) or "." for path in sources
    }
    root = os.path.commonpath(list(directories)) if directories else None
    table = SymbolTable()
    for path in sorted(sources):
        try:
            tree = ast.parse(sources[path], filename=path)
        except SyntaxError as error:
            raise ParameterError(
                f"{path}: cannot flow-lint unparseable source: {error}"
            ) from error
        table.add_module(path, tree, root)
    return table
