"""Taint lattice and per-function transfer summaries for the flow pass.

The abstract domain is a set of *labels* per value.  Concrete labels
``("src", kind, origin)`` mark where a tainted value was born:

- ``entropy``   — OS entropy (seedless ``default_rng()``/
  ``SeedSequence()``, ``os.urandom``, ``uuid.uuid4`` ...);
- ``wallclock`` — wall-clock reads (``time.time``, ``datetime.now``...);
- ``env``       — ``os.environ`` / ``os.getenv`` values;
- ``poolpath``  — a path derived from the pool-protocol files
  (checkpoint entries, claims, journal, status/meta), recognised by
  the protocol's literal name markers (``".ckpt"``, ``".claim"``,
  ``"pool-journal"``...) anywhere in the path expression;
- ``claimpath`` — the ``.claim`` subset of ``poolpath`` (stricter
  rules apply: claim bodies must be born ``O_CREAT|O_EXCL``);
- ``tmppath``   — a staging path (``tempfile.mkstemp`` results,
  ``".tmp"``-suffixed names): writing one in place is the *first
  half* of the sanctioned temp-file+rename idiom, so it cancels the
  in-place-write rule.

Symbolic labels ``("param", name)`` stand for "whatever the caller
passes for parameter *name*"; they are what makes the analysis
interprocedural.  Each function gets a :class:`Summary`:

- ``returns``      — labels its return value may carry;
- ``param_sinks``  — sinks inside it (or transitively below it) that
  a parameter's taint would reach, with the residual concrete labels
  (``extra``) already present at the sink and the call chain
  (``via``) for diagnostics.

:class:`FunctionAnalyzer` computes one function's summary by a
flow-insensitive abstract interpretation of its AST (iterated a few
passes so loop-carried taint stabilises), consuming callee summaries.
The engine (:mod:`repro.analysis.flow.engine`) drives the whole-tree
fixpoint and the final reporting pass.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.findings import REGISTRY, Finding
from repro.analysis.flow.symbols import (
    FunctionInfo,
    ModuleInfo,
    SymbolTable,
)

__all__ = [
    "EMPTY",
    "FlowConfig",
    "FunctionAnalyzer",
    "ParamSink",
    "Summary",
    "concrete_kinds",
]

#: The empty label set, shared.
EMPTY: frozenset = frozenset()

#: Label-kind groups driving rule decisions.
_NONDET_KINDS = frozenset({"entropy", "wallclock", "env"})
_KEY_WALL_KINDS = frozenset({"wallclock", "entropy"})
_POOL_KINDS = frozenset({"poolpath", "claimpath"})

#: Seam ops whose payload write creates/truncates the file body (the
#: ops where a claim path demands O_EXCL instead).
_BODY_WRITE_OPS = frozenset(
    {"open", "os.open", "write_text", "write_bytes", "fsfaults.write_bytes"}
)


@dataclass(frozen=True)
class FlowConfig:
    """Repo-tuned knobs of the interprocedural pass.

    Attributes:
        sampling_sinks: Terminal callee names that consume an RNG for
            Monte-Carlo/fit work (the FLOW001 sinks).
        sampling_params: Parameter/keyword names that carry the RNG or
            seed into a sampling sink.
        key_markers: Substrings of a callee name marking deterministic
            key/fingerprint construction (FLOW002/FLOW003 sinks).
        key_names: Exact callee names that are key/shard sinks.
        key_suffixes: Callee-name suffixes marking the seed-derivation
            helpers (``*_seed``) — deterministic by contract, so
            nondeterministic inputs to them are findings.
        pool_markers: Literal substrings identifying pool-protocol
            file names in path expressions.
        claim_markers: The subset marking claim files.
        tmp_markers: Substrings marking staging/temp names.
        seam_files: Path fragments of the modules that *implement* the
            FS seam and atomic writers — their internal raw syscalls
            are the sanctioned bottom layer, never findings.
        max_rounds: Whole-program fixpoint round cap.
        local_passes: Per-function statement passes per round.
    """

    sampling_sinks: frozenset = frozenset(
        {
            "latin_hypercube",
            "lhs_normal",
            "lhs_transform",
            "fit_mixture_em",
            "fit_mixture_em_batch",
            "fit_mixture_em_multi",
            "kmeans_1d",
            "kmeans_1d_batch",
            "kmeans_nd",
            "sample",
            "sample_path_delays",
        }
    )
    sampling_params: tuple[str, ...] = (
        "rng",
        "seed",
        "seed_sequence",
        "random_state",
    )
    key_markers: tuple[str, ...] = (
        "fingerprint",
        "token",
        "checksum",
        "content_key",
    )
    key_names: frozenset = frozenset({"key_of", "shard_of", "shards"})
    key_suffixes: tuple[str, ...] = ("_seed",)
    pool_markers: tuple[str, ...] = (
        ".claim",
        ".ckpt",
        ".corrupt",
        "pool-journal",
        "pool-meta",
        "pool-status",
    )
    claim_markers: tuple[str, ...] = (".claim",)
    tmp_markers: tuple[str, ...] = (".tmp", ".staging", ".partial")
    seam_files: tuple[str, ...] = (
        "repro/runtime/fsfaults.py",
        "repro/runtime/export.py",
    )
    max_rounds: int = 12
    local_passes: int = 3


#: ``(param_name, channel, op, via, extra)`` — a sink reachable from a
#: parameter.  ``channel`` is ``"sampling"``, ``"key"``, ``"raw"`` or
#: ``"seam"``; ``op`` the concrete operation; ``via`` the (capped)
#: callee chain; ``extra`` the concrete labels already at the sink.
ParamSink = tuple


@dataclass(frozen=True)
class Summary:
    """One function's interprocedural transfer summary."""

    returns: frozenset = EMPTY
    param_sinks: frozenset = EMPTY


def concrete_kinds(labels: frozenset) -> set[str]:
    """The concrete taint kinds present in a label set."""
    return {label[1] for label in labels if label[0] == "src"}


def _origins(labels: frozenset, kinds: set[str]) -> list[str]:
    """Source descriptions for the labels of the given kinds, sorted."""
    return sorted(
        {
            f"{label[1]} from {label[2]}"
            for label in labels
            if label[0] == "src" and label[1] in kinds
        }
    )


def _param_labels(labels: frozenset) -> set[str]:
    return {label[1] for label in labels if label[0] == "param"}


#: Wall-clock calls, matched on the last two dotted components.
_WALLCLOCK_CALLS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
    }
)

#: Entropy calls, matched on the last two dotted components.
_ENTROPY_CALLS = frozenset(
    {
        ("os", "urandom"),
        ("uuid", "uuid1"),
        ("uuid", "uuid4"),
        ("secrets", "token_bytes"),
        ("secrets", "token_hex"),
        ("secrets", "token_urlsafe"),
        ("secrets", "randbits"),
    }
)

#: RNG/seed constructors whose result carries its seed's taint — and
#: is entropy-tainted when called with no seed at all.
_RNG_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "SeedSequence",
        "Generator",
        "RandomState",
        "PCG64",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Temp-name factories whose results are staging paths.
_TMP_FACTORIES = frozenset(
    {"mkstemp", "mkdtemp", "mktemp", "NamedTemporaryFile", "TemporaryDirectory"}
)

#: Seam entry points that are the *sanctioned* mutation idioms: their
#: own destination handling is what the POOL rules mandate.
_SEAM_SAFE = frozenset(
    {"append_line", "create_exclusive", "replace", "touch", "write_text_file"}
)

_WRITE_MODES = ("w", "wb", "a", "ab", "w+", "a+", "wt", "at", "r+", "rb+")


def _call_name(node: ast.Call) -> tuple[str, ...] | None:
    """Dotted name of a call target, e.g. ``("os", "replace")``."""
    parts: list[str] = []
    target = node.func
    while isinstance(target, ast.Attribute):
        parts.append(target.attr)
        target = target.value
    if isinstance(target, ast.Name):
        parts.append(target.id)
        return tuple(reversed(parts))
    return None


def _matches_any(text: str, markers: tuple[str, ...]) -> bool:
    return any(marker in text for marker in markers)


class FunctionAnalyzer:
    """Abstract interpretation of one function (or module) body.

    One instance is built per (function, round); :meth:`run` returns
    the function's :class:`Summary`.  With ``report`` set, sink hits
    whose trigger labels are concrete are emitted as findings — the
    engine only passes ``report`` on the final post-fixpoint pass.
    """

    def __init__(
        self,
        config: FlowConfig,
        table: SymbolTable,
        module: ModuleInfo,
        info: FunctionInfo | None,
        summaries: dict[str, Summary],
        class_attrs: dict[tuple[str, str], frozenset],
        module_envs: dict[str, dict[str, frozenset]],
        lines: list[str],
        report: list[Finding] | None = None,
    ) -> None:
        self.config = config
        self.table = table
        self.module = module
        self.info = info
        self.summaries = summaries
        self.class_attrs = class_attrs
        self.module_envs = module_envs
        self.lines = lines
        self.report = report
        self.env: dict[str, frozenset] = {}
        self.returns: frozenset = EMPTY
        self.param_sinks: set = set()
        self._is_seam = _matches_any(
            module.file.replace("\\", "/"), config.seam_files
        )
        self._reported: set = set()

    # ------------------------------------------------------------------
    def run(self) -> Summary:
        if self.info is not None:
            for name in self.info.params + self.info.kwonly:
                self.env[name] = frozenset({("param", name)})
            body = self.info.node.body
        else:
            body = [
                stmt
                for stmt in self.module.tree.body
                if not isinstance(
                    stmt,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                )
            ]
        for _ in range(self.config.local_passes):
            before = dict(self.env)
            for stmt in body:
                self._exec(stmt)
            if self.env == before:
                break
        if self.info is None:
            self.module_envs[self.module.name] = dict(self.env)
        return Summary(
            returns=self.returns,
            param_sinks=frozenset(self.param_sinks),
        )

    # ------------------------------------------------------------------
    # Statements (flow-insensitive: every branch contributes)
    # ------------------------------------------------------------------
    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            labels = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, labels)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            labels = self._eval(stmt.value) | self._eval(stmt.target)
            self._bind(stmt.target, labels)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returns |= self._eval(stmt.value)
        elif isinstance(stmt, (ast.Expr, ast.Assert)):
            value = stmt.value if isinstance(stmt, ast.Expr) else stmt.test
            self._eval(value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind(stmt.target, self._eval(stmt.iter))
            for sub in stmt.body + stmt.orelse:
                self._exec(sub)
        elif isinstance(stmt, (ast.While, ast.If)):
            self._eval(stmt.test)
            for sub in stmt.body + stmt.orelse:
                self._exec(sub)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                labels = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, labels)
            for sub in stmt.body:
                self._exec(sub)
        elif isinstance(stmt, ast.Try):
            for sub in stmt.body + stmt.orelse + stmt.finalbody:
                self._exec(sub)
            for handler in stmt.handlers:
                for sub in handler.body:
                    self._exec(sub)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested function (closure): its body reads the enclosing
            # frame, so analyze it inline against the current
            # environment — the `def attempt(): ...` idiom the seam
            # callers use.  Its own parameters are unknown (empty).
            for sub in stmt.body:
                self._exec(sub)
        elif isinstance(stmt, ast.ClassDef):
            pass
        elif isinstance(stmt, (ast.Raise, ast.Delete, ast.Global,
                               ast.Nonlocal, ast.Pass, ast.Break,
                               ast.Continue, ast.Import, ast.ImportFrom)):
            pass
        else:  # pragma: no cover — future statement kinds
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.stmt):
                    self._exec(sub)
                elif isinstance(sub, ast.expr):
                    self._eval(sub)

    def _bind(self, target: ast.expr, labels: frozenset) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = self.env.get(target.id, EMPTY) | labels
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, labels)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, labels)
        elif isinstance(target, ast.Attribute):
            # self.attr stores: keep only concrete labels — symbolic
            # parameter taint is per-call-site and would leak across
            # unrelated instances through the shared class map.
            if (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self.info is not None
                and self.info.cls is not None
            ):
                key = (self.info.cls, target.attr)
                concrete = frozenset(
                    label for label in labels if label[0] == "src"
                )
                self.class_attrs[key] = (
                    self.class_attrs.get(key, EMPTY) | concrete
                )
        elif isinstance(target, ast.Subscript):
            # Container element store: the container accumulates.
            if isinstance(target.value, ast.Name):
                name = target.value.id
                self.env[name] = self.env.get(name, EMPTY) | labels

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _eval(self, node: ast.expr) -> frozenset:
        if isinstance(node, ast.Constant):
            return self._constant_labels(node)
        if isinstance(node, ast.Name):
            return self._name_labels(node.id)
        if isinstance(node, ast.Attribute):
            return self._attribute_labels(node)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.BinOp):
            return self._eval(node.left) | self._eval(node.right)
        if isinstance(node, ast.JoinedStr):
            labels = EMPTY
            for part in node.values:
                labels |= self._eval(part)
            return labels
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value)
        if isinstance(node, ast.Subscript):
            return self._eval(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            labels = EMPTY
            for elt in node.elts:
                labels |= self._eval(elt)
            return labels
        if isinstance(node, ast.Dict):
            labels = EMPTY
            for value in node.values:
                if value is not None:
                    labels |= self._eval(value)
            return labels
        if isinstance(node, ast.IfExp):
            return self._eval(node.body) | self._eval(node.orelse)
        if isinstance(node, ast.BoolOp):
            labels = EMPTY
            for value in node.values:
                labels |= self._eval(value)
            return labels
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.Await):
            return self._eval(node.value)
        if isinstance(node, (ast.Compare, ast.Lambda)):
            return EMPTY
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            labels = self._comp_bind(node.generators)
            return labels | self._eval(node.elt)
        if isinstance(node, ast.DictComp):
            labels = self._comp_bind(node.generators)
            return labels | self._eval(node.value)
        if isinstance(node, ast.NamedExpr):
            labels = self._eval(node.value)
            self._bind(node.target, labels)
            return labels
        labels = EMPTY  # pragma: no cover — future expression kinds
        for sub in ast.iter_child_nodes(node):
            if isinstance(sub, ast.expr):
                labels |= self._eval(sub)
        return labels

    def _comp_bind(self, generators: list[ast.comprehension]) -> frozenset:
        labels = EMPTY
        for gen in generators:
            iter_labels = self._eval(gen.iter)
            self._bind(gen.target, iter_labels)
            labels |= iter_labels
        return labels

    def _src(self, kind: str, node: ast.AST) -> frozenset:
        origin = f"{self.module.file}:{getattr(node, 'lineno', 0)}"
        return frozenset({("src", kind, origin)})

    def _constant_labels(self, node: ast.Constant) -> frozenset:
        if not isinstance(node.value, str):
            return EMPTY
        labels = EMPTY
        if _matches_any(node.value, self.config.claim_markers):
            labels |= self._src("claimpath", node)
        if _matches_any(node.value, self.config.pool_markers):
            labels |= self._src("poolpath", node)
        if _matches_any(node.value, self.config.tmp_markers):
            labels |= self._src("tmppath", node)
        return labels

    def _name_labels(self, name: str) -> frozenset:
        labels = self.env.get(name, EMPTY)
        module_env = self.module_envs.get(self.module.name)
        if module_env is not None and name in module_env:
            labels |= module_env[name]
        target = self.module.imports.get(name)
        if target == "os.environ":
            labels |= frozenset(
                {("src", "env", f"{self.module.file}:os.environ")}
            )
        elif target and "." in target:
            # `from .journal import JOURNAL_FILENAME` — read the
            # constant's taint out of the defining module's namespace.
            mod_name, _, attr = target.rpartition(".")
            imported_env = self.module_envs.get(mod_name)
            if imported_env is not None and attr in imported_env:
                labels |= imported_env[attr]
        return labels

    def _attribute_labels(self, node: ast.Attribute) -> frozenset:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "os"
            and node.attr == "environ"
        ):
            return self._src("env", node)
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.info is not None
            and self.info.cls is not None
        ):
            key = (self.info.cls, node.attr)
            return self.class_attrs.get(key, EMPTY) | self._eval(node.value)
        return self._eval(node.value)

    # ------------------------------------------------------------------
    # Calls: sources, summaries, sinks
    # ------------------------------------------------------------------
    def _call(self, node: ast.Call) -> frozenset:
        dotted = _call_name(node)
        arg_labels = [self._eval(arg) for arg in node.args]
        kw_labels = {
            kw.arg: self._eval(kw.value)
            for kw in node.keywords
            if kw.arg is not None
        }
        star_kwargs = EMPTY
        for kw in node.keywords:
            if kw.arg is None:
                star_kwargs |= self._eval(kw.value)
        all_args = EMPTY
        for labels in arg_labels:
            all_args |= labels
        for labels in kw_labels.values():
            all_args |= labels
        all_args |= star_kwargs

        if dotted is None:
            # Chained attribute call on a computed receiver, e.g.
            # `entry_path(d, k).write_bytes(data)`: no resolvable
            # name, but the terminal attribute still hits sinks.
            if isinstance(node.func, ast.Attribute):
                self._check_sinks(
                    node,
                    ("<expr>", node.func.attr),
                    [],
                    arg_labels,
                    kw_labels,
                )
            return self._eval(node.func) | all_args

        source = self._source_labels(node, dotted, all_args)
        if source is not None:
            return source

        result = EMPTY
        candidates = self.table.resolve(
            self.module,
            self.info.cls if self.info is not None else None,
            dotted,
        )
        resolved_exactly = bool(candidates) and len(candidates) == 1 and (
            dotted[0] == "self"
            or dotted[0] in self.module.imports
            or len(dotted) == 1
            or dotted[0] in self.module.classes
        )
        for info, offset in candidates:
            summary = self.summaries.get(info.qualname)
            if summary is None:
                continue
            argmap = self._bind_args(
                info, offset, arg_labels, kw_labels, node
            )
            result |= self._substitute(summary.returns, argmap)
            self._lift_param_sinks(node, info, summary, argmap)
        if not candidates or not resolved_exactly:
            # Unknown or ambiguous receiver: propagate the receiver's
            # and the arguments' taint through the result (str(),
            # Path(), path.with_name(), "".join(), ...).
            if isinstance(node.func, ast.Attribute):
                result |= self._eval(node.func.value)
            result |= all_args

        self._check_sinks(node, dotted, candidates, arg_labels, kw_labels)
        return result

    def _source_labels(
        self,
        node: ast.Call,
        dotted: tuple[str, ...],
        all_args: frozenset,
    ) -> frozenset | None:
        """Labels when this call is itself a taint source, else None."""
        terminal = dotted[-1]
        last2 = (dotted[-2], dotted[-1]) if len(dotted) >= 2 else None
        if terminal in _RNG_CONSTRUCTORS:
            if not node.args and not node.keywords:
                return self._src("entropy", node)
            return all_args
        if last2 in _WALLCLOCK_CALLS:
            return self._src("wallclock", node)
        if last2 in _ENTROPY_CALLS:
            return self._src("entropy", node)
        if last2 == ("os", "getenv") or (
            len(dotted) == 1
            and terminal == "getenv"
            and self.module.imports.get("getenv") == "os.getenv"
        ):
            return self._src("env", node)
        if terminal in _TMP_FACTORIES:
            return self._src("tmppath", node) | all_args
        return None

    def _bind_args(
        self,
        info: FunctionInfo,
        offset: int,
        arg_labels: list[frozenset],
        kw_labels: dict[str, frozenset],
        node: ast.Call,
    ) -> dict[str, frozenset]:
        """Map callee parameter names to the labels passed for them."""
        argmap: dict[str, frozenset] = {}
        params = info.params
        skip = 1 if (info.is_method and offset == 1) else 0
        if (
            info.is_method
            and offset == 1
            and isinstance(node.func, ast.Attribute)
            and params
        ):
            # Instance call: the receiver expression binds `self`.
            argmap[params[0]] = self._eval(node.func.value)
        for index, labels in enumerate(arg_labels):
            target = index + skip
            if target < len(params):
                argmap[params[target]] = (
                    argmap.get(params[target], EMPTY) | labels
                )
        for name, labels in kw_labels.items():
            if name in params or name in info.kwonly:
                argmap[name] = argmap.get(name, EMPTY) | labels
        return argmap

    @staticmethod
    def _substitute(
        labels: frozenset, argmap: dict[str, frozenset]
    ) -> frozenset:
        result = EMPTY
        for label in labels:
            if label[0] == "param":
                result |= argmap.get(label[1], EMPTY)
            else:
                result |= frozenset({label})
        return result

    # ------------------------------------------------------------------
    # Sink machinery
    # ------------------------------------------------------------------
    def _emit(
        self, node: ast.AST, rule_id: str, message: str
    ) -> None:
        if self.report is None:
            return
        line = getattr(node, "lineno", 0)
        key = (self.module.file, line, rule_id, message)
        if key in self._reported:
            return
        self._reported.add(key)
        source = (
            self.lines[line - 1].strip()
            if 0 < line <= len(self.lines)
            else ""
        )
        self.report.append(
            REGISTRY.finding(
                rule_id, self.module.file, line, message, source=source
            )
        )

    def _sink_hit(
        self,
        node: ast.AST,
        channel: str,
        op: str,
        labels: frozenset,
        via: tuple[str, ...] = (),
    ) -> None:
        """Judge one value reaching one sink; report or lift."""
        kinds = concrete_kinds(labels)
        rule, detail_kinds = _decide(channel, op, kinds)
        if rule is not None:
            origins = _origins(labels, detail_kinds)
            chain = f" via {' -> '.join(via)}" if via else ""
            self._emit(
                node, rule, _MESSAGES[rule].format(
                    op=op, origins="; ".join(origins[:2]), chain=chain
                )
            )
            return
        extra = frozenset(label for label in labels if label[0] == "src")
        for name in _param_labels(labels):
            if (
                self.info is not None
                and len(via) < 4
            ):
                self.param_sinks.add((name, channel, op, via, extra))

    def _lift_param_sinks(
        self,
        node: ast.Call,
        info: FunctionInfo,
        summary: Summary,
        argmap: dict[str, frozenset],
    ) -> None:
        for name, channel, op, via, extra in summary.param_sinks:
            passed = argmap.get(name, EMPTY)
            if not passed:
                continue
            chain = (info.display,) + tuple(via)
            self._sink_hit(node, channel, op, passed | extra, chain[:4])

    def _check_sinks(
        self,
        node: ast.Call,
        dotted: tuple[str, ...],
        candidates: list[tuple[FunctionInfo, int]],
        arg_labels: list[frozenset],
        kw_labels: dict[str, frozenset],
    ) -> None:
        if self._is_seam:
            return
        terminal = dotted[-1]
        cfg = self.config

        # --- FLOW001: sampling sinks -------------------------------
        is_sampling = terminal in cfg.sampling_sinks or any(
            info.module.startswith(("repro.stats", "repro.ssta"))
            and info.name in cfg.sampling_sinks
            for info, _ in candidates
        )
        if is_sampling:
            for name, labels in kw_labels.items():
                if name in cfg.sampling_params:
                    self._sink_hit(node, "sampling", terminal, labels)
            bound_names: dict[int, str] = {}
            for info, offset in candidates:
                skip = 1 if (info.is_method and offset == 1) else 0
                for index in range(len(arg_labels)):
                    target = index + skip
                    if target < len(info.params):
                        bound_names[index] = info.params[target]
            for index, labels in enumerate(arg_labels):
                name = bound_names.get(index)
                if name in cfg.sampling_params:
                    self._sink_hit(node, "sampling", terminal, labels)
                elif name is None and "entropy" in concrete_kinds(labels):
                    # Unresolved positional: only the unambiguous case
                    # (an OS-entropy RNG object) is flagged.
                    self._sink_hit(node, "sampling", terminal, labels)

        # --- FLOW002/003: content-key sinks ------------------------
        is_key = (
            _matches_any(terminal, cfg.key_markers)
            or terminal in cfg.key_names
            or any(terminal.endswith(sfx) for sfx in cfg.key_suffixes)
        )
        if is_key:
            for labels in arg_labels:
                self._sink_hit(node, "key", terminal, labels)
            for labels in kw_labels.values():
                self._sink_hit(node, "key", terminal, labels)

        # --- POOL: filesystem mutation sinks -----------------------
        self._check_mutations(node, dotted, arg_labels, kw_labels)

    def _check_mutations(
        self,
        node: ast.Call,
        dotted: tuple[str, ...],
        arg_labels: list[frozenset],
        kw_labels: dict[str, frozenset],
    ) -> None:
        terminal = dotted[-1]
        last2 = (dotted[-2], dotted[-1]) if len(dotted) >= 2 else None

        def arg(index: int) -> frozenset:
            return arg_labels[index] if index < len(arg_labels) else EMPTY

        # Seam calls: the sanctioned idioms pass untouched; the
        # in-place overwrite entry point is still checked for claim
        # bodies and final protocol payloads.
        if last2 is not None and dotted[-2] == "fsfaults":
            if terminal == "write_bytes":
                dst = arg(0) | kw_labels.get("path", EMPTY)
                self._sink_hit(
                    node, "seam", "fsfaults.write_bytes", dst
                )
            return
        if len(dotted) == 1 and terminal in _SEAM_SAFE:
            # Bare-name seam calls (`from ...export import
            # write_text_file`).  Qualified names fall through so
            # `os.replace` is still judged below.
            return

        if terminal == "open" and len(dotted) == 1:
            if self._write_mode(node, mode_index=1):
                self._sink_hit(node, "raw", "open", arg(0))
            return
        if terminal == "open" and len(dotted) >= 2 and last2 != ("os", "open"):
            if self._write_mode(node, mode_index=0):
                base = self._eval(node.func.value)  # type: ignore[union-attr]
                self._sink_hit(node, "raw", "open", base)
            return
        if terminal in ("write_text", "write_bytes") and len(dotted) >= 2:
            base = self._eval(node.func.value)  # type: ignore[union-attr]
            self._sink_hit(node, "raw", terminal, base)
            return
        if last2 in (("os", "replace"), ("os", "rename")):
            dst = arg(1) | kw_labels.get("dst", EMPTY)
            self._sink_hit(node, "raw", "os.replace", dst)
            return
        if last2 == ("shutil", "move"):
            dst = arg(1) | kw_labels.get("dst", EMPTY)
            self._sink_hit(node, "raw", "os.replace", dst)
            return
        if last2 == ("os", "truncate"):
            self._sink_hit(node, "raw", "os.truncate", arg(0))
            return
        if last2 == ("os", "utime"):
            self._sink_hit(node, "raw", "os.utime", arg(0))
            return
        if last2 == ("os", "open"):
            flags = {
                sub.attr
                for index in range(1, len(node.args))
                for sub in ast.walk(node.args[index])
                if isinstance(sub, ast.Attribute)
            }
            for kw in node.keywords:
                if kw.arg == "flags":
                    flags |= {
                        sub.attr
                        for sub in ast.walk(kw.value)
                        if isinstance(sub, ast.Attribute)
                    }
            if "O_EXCL" in flags:
                return  # the claim-safe exclusive create
            if flags & {"O_WRONLY", "O_RDWR", "O_CREAT", "O_TRUNC", "O_APPEND"}:
                self._sink_hit(node, "raw", "os.open", arg(0))

    @staticmethod
    def _write_mode(node: ast.Call, mode_index: int) -> bool:
        mode: ast.expr | None = None
        if len(node.args) > mode_index:
            mode = node.args[mode_index]
        for kw in node.keywords:
            if kw.arg == "mode":
                mode = kw.value
        return (
            isinstance(mode, ast.Constant)
            and isinstance(mode.value, str)
            and mode.value in _WRITE_MODES
        )


def _decide(
    channel: str, op: str, kinds: set[str]
) -> tuple[str | None, set[str]]:
    """Map (sink channel, operation, concrete kinds) to a rule id."""
    if channel == "sampling":
        hit = kinds & _NONDET_KINDS
        if hit:
            return "FLOW001", hit
        return None, set()
    if channel == "key":
        wall = kinds & _KEY_WALL_KINDS
        if wall:
            return "FLOW002", wall
        if "env" in kinds:
            return "FLOW003", {"env"}
        return None, set()
    if channel == "raw":
        if "claimpath" in kinds and op in _BODY_WRITE_OPS:
            return "POOL002", {"claimpath"}
        if kinds & _POOL_KINDS:
            return "POOL001", kinds & _POOL_KINDS
        return None, set()
    if channel == "seam":
        if "claimpath" in kinds:
            return "POOL002", {"claimpath"}
        if "poolpath" in kinds and "tmppath" not in kinds:
            return "POOL003", {"poolpath"}
        return None, set()
    return None, set()


_MESSAGES = {
    "FLOW001": (
        "nondeterministically seeded RNG ({origins}) reaches sampling "
        "call {op}(){chain}; derive the seed from the run seed instead"
    ),
    "FLOW002": (
        "time-dependent value ({origins}) flows into deterministic "
        "key/seed derivation {op}(){chain}; content addresses must be "
        "pure functions of the request"
    ),
    "FLOW003": (
        "os.environ value ({origins}) flows into deterministic "
        "key/shard derivation {op}(){chain}; environment must not "
        "steer content addressing"
    ),
    "POOL001": (
        "{op} mutates a pool-protocol path ({origins}){chain} without "
        "the repro.runtime.fsfaults retry seam; transient shared-mount "
        "errors will surface as protocol corruption"
    ),
    "POOL002": (
        "claim body written via {op} ({origins}){chain}; claims must "
        "be born with fsfaults.create_exclusive (O_CREAT|O_EXCL) or "
        "two owners can both win the item"
    ),
    "POOL003": (
        "{op} truncates a pool payload in place ({origins}){chain}; "
        "stage to a temp name and fsfaults.replace so a kill cannot "
        "leave a torn entry"
    ),
}
