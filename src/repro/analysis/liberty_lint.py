"""Engine 2: domain lint for generated Liberty / LVF2 artifacts.

Unlike :func:`repro.liberty.validate.validate_library`, which checks a
*successfully bound* :class:`~repro.liberty.library.Library`, this
engine walks the raw parsed :class:`~repro.liberty.ast.Group` tree.
That boundary matters: the typed binder *raises* on the worst LVF2
contract violations (``ocv_weight2`` outside [0, 1], shape-mismatched
extension LUTs), so a broken library produced by a foreign flow can
never even reach ``validate_library``.  The AST linter accepts any
syntactically valid ``.lib`` text and turns every semantic violation
into a finding with a stable rule id and source line, so a library is
*rejected with a diagnosis* before it reaches SSTA or a downstream
STA tool.

Checks (ids in :mod:`repro.analysis.findings`):

- ``LIB001`` λ (= ``ocv_weight2``) within [0, 1];
- ``LIB002`` λ = 0 ⇒ the component-1 LUTs equal the plain-LVF moment
  LUTs — the paper's backward-compatibility claim (Eq. 10);
- ``LIB003`` index axes strictly increasing, non-negative;
- ``LIB004`` value-grid shape agreement across the nominal LUT and
  all seven LVF2 extension LUTs of an arc quantity;
- ``LIB005`` mixture moment sanity: every σ LUT positive, |skewness|
  below the skew-normal feasibility bound;
- ``LIB006`` template references resolve and axis lengths agree;
- ``LIB007`` nonzero λ comes with the full second-component LUT set;
- ``LIB008`` LUT groups carry parseable, rectangular value grids;
- ``LIB009`` library-level unit / delay-model attributes present;
- ``LIB010`` (info) extension LUTs present but λ ≡ 0 — plain LVF
  would do (Eq. 10 read in reverse).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.findings import REGISTRY, Finding
from repro.errors import LibertyError, ParameterError
from repro.liberty.ast import Group
from repro.liberty.lvf2_attrs import LVF2_PREFIXES, PREFIX_ALIASES
from repro.liberty.lvf_attrs import BASE_QUANTITIES, LVF_PREFIXES
from repro.liberty.parser import parse_liberty
from repro.liberty.tables import parse_number_list
from repro.stats.skew_normal import MAX_SKEWNESS

__all__ = ["lint_library_text", "lint_library_paths", "collect_lib_files"]

#: Relative tolerance for the λ=0 ⇒ plain-LVF equality check (LIB002).
_COLLAPSE_RTOL = 1e-9

#: Library-level attributes a signoff-grade library should carry.
_EXPECTED_LIBRARY_ATTRS = ("time_unit", "voltage_unit", "delay_model")

#: σ-valued and skew-valued LUT prefixes for LIB005.
_SIGMA_PREFIXES = ("ocv_std_dev", "ocv_std_dev1", "ocv_std_dev2")
_SKEW_PREFIXES = ("ocv_skewness", "ocv_skewness1", "ocv_skewness2")


def _match_stat_name(name: str) -> tuple[str, str] | None:
    """Split a LUT group name into (canonical prefix, base quantity)."""
    prefixes = (
        tuple(LVF_PREFIXES)
        + tuple(LVF2_PREFIXES)
        + tuple(PREFIX_ALIASES)
    )
    for prefix in prefixes:
        for base in BASE_QUANTITIES:
            if name == f"{prefix}_{base}":
                return (PREFIX_ALIASES.get(prefix, prefix), base)
    return None


@dataclass
class _Lut:
    """One leniently parsed LUT group.

    ``rows`` keeps the raw row lengths so ragged grids are reportable;
    ``shape`` is None when the grid could not be read at all.
    """

    group: Group
    index_1: tuple[float, ...]
    index_2: tuple[float, ...]
    rows: list[tuple[float, ...]]
    shape: tuple[int, ...] | None
    template: str

    @property
    def line(self) -> int:
        return self.group.line

    def flat(self) -> list[float]:
        return [value for row in self.rows for value in row]


class _LibraryLinter:
    """Walks one library AST, collecting findings."""

    def __init__(self, path: str):
        self.path = path
        self.findings: list[Finding] = []
        self.templates: dict[str, tuple[int, int]] = {}

    def _emit(
        self, rule_id: str, line: int, location: str, message: str,
        *, source: str = "",
    ) -> None:
        self.findings.append(
            REGISTRY.finding(
                rule_id,
                self.path,
                line,
                f"{location}: {message}" if location else message,
                source=source or location,
            )
        )

    # ------------------------------------------------------------------
    def lint(self, library: Group) -> list[Finding]:
        if library.name != "library":
            self._emit(
                "LIB008",
                library.line,
                library.label,
                f"top-level group is {library.name!r}, not 'library'",
            )
            return self.findings
        self._check_library_attrs(library)
        for template in library.groups():
            if template.name in (
                "lu_table_template",
                "ocv_table_template",
            ):
                self._register_template(template)
        for cell in library.groups("cell"):
            for pin in cell.groups("pin"):
                for index, timing in enumerate(pin.groups("timing")):
                    location = (
                        f"{cell.label}.{pin.label}"
                        f".timing[{index}]"
                    )
                    self._lint_timing(timing, location)
        return sorted(self.findings, key=Finding.sort_key)

    # ------------------------------------------------------------------
    def _check_library_attrs(self, library: Group) -> None:
        for attr in _EXPECTED_LIBRARY_ATTRS:
            if library.get(attr) is None:
                self._emit(
                    "LIB009",
                    library.line,
                    library.label,
                    f"library attribute {attr!r} is missing; downstream "
                    "STA tools will guess units",
                )
        delay_model = library.get("delay_model")
        if delay_model is not None and delay_model != "table_lookup":
            self._emit(
                "LIB009",
                library.line,
                library.label,
                f"delay_model {delay_model!r} is not 'table_lookup'; "
                "LVF LUT semantics assume table lookup",
            )

    def _register_template(self, group: Group) -> None:
        name = group.label
        lengths = []
        for axis in ("index_1", "index_2"):
            raw = group.get_complex(axis)
            if raw is None:
                lengths.append(0)
                continue
            try:
                lengths.append(len(parse_number_list(raw[0])))
            except LibertyError as error:
                self._emit(
                    "LIB008", group.line, name, f"{axis}: {error}"
                )
                lengths.append(0)
        if lengths[0] == 0:
            self._emit(
                "LIB006",
                group.line,
                name,
                "template has no index_1 axis",
            )
        self.templates[name] = (lengths[0], lengths[1])

    # ------------------------------------------------------------------
    def _parse_lut(self, group: Group, location: str) -> _Lut | None:
        def axis(name: str) -> tuple[float, ...]:
            raw = group.get_complex(name)
            if raw is None or not raw:
                return ()
            return parse_number_list(raw[0])

        try:
            index_1 = axis("index_1")
            index_2 = axis("index_2")
            raw_rows = group.get_complex("values")
            if raw_rows is None:
                self._emit(
                    "LIB008",
                    group.line,
                    location,
                    f"{group.name} has no values attribute",
                )
                return None
            rows = [parse_number_list(row) for row in raw_rows]
        except LibertyError as error:
            self._emit("LIB008", group.line, location, str(error))
            return None
        template = group.label
        if not index_1 and template in self.templates:
            n1, n2 = self.templates[template]
            index_1 = tuple(float(i) for i in range(n1))
            index_2 = tuple(float(i) for i in range(n2))
            inherited_axes = True
        else:
            inherited_axes = False
        shape: tuple[int, ...] | None
        row_lengths = {len(row) for row in rows}
        if len(rows) == 1 and index_2 and not inherited_axes and len(
            rows[0]
        ) == len(index_1) * len(index_2):
            # Flattened single-row 2-D form, accepted by the parser.
            shape = (len(index_1), len(index_2))
        elif len(row_lengths) > 1:
            self._emit(
                "LIB008",
                group.line,
                location,
                f"{group.name} value grid is ragged "
                f"(row lengths {sorted(row_lengths)})",
            )
            shape = None
        elif len(rows) == 1 and not index_2:
            shape = (len(rows[0]),)
        else:
            shape = (len(rows), len(rows[0]) if rows else 0)
        return _Lut(
            group=group,
            index_1=index_1,
            index_2=index_2,
            rows=rows,
            shape=shape,
            template=template,
        )

    def _check_axes(self, lut: _Lut, location: str) -> None:
        for axis_name, axis in (
            ("index_1", lut.index_1),
            ("index_2", lut.index_2),
        ):
            if len(axis) < 2:
                continue
            if any(b <= a for a, b in zip(axis, axis[1:])):
                self._emit(
                    "LIB003",
                    lut.line,
                    location,
                    f"{axis_name} is not strictly increasing: "
                    f"{list(axis)}",
                )
            if any(value < 0.0 for value in axis):
                self._emit(
                    "LIB003",
                    lut.line,
                    location,
                    f"{axis_name} contains negative breakpoints",
                )

    def _check_template(self, lut: _Lut, location: str) -> None:
        name = lut.template
        if not name:
            if not lut.index_1:
                self._emit(
                    "LIB006",
                    lut.line,
                    location,
                    "LUT has neither a template reference nor an "
                    "inline index_1",
                )
            return
        if name not in self.templates:
            self._emit(
                "LIB006",
                lut.line,
                location,
                f"references unknown table template {name!r}",
            )
            return
        n1, n2 = self.templates[name]
        for axis_name, axis, expected in (
            ("index_1", lut.index_1, n1),
            ("index_2", lut.index_2, n2),
        ):
            if axis and expected and len(axis) != expected:
                self._emit(
                    "LIB006",
                    lut.line,
                    location,
                    f"{axis_name} has {len(axis)} breakpoints but "
                    f"template {name!r} declares {expected}",
                )

    # ------------------------------------------------------------------
    def _lint_timing(self, timing: Group, location: str) -> None:
        nominal: dict[str, _Lut] = {}
        stat: dict[tuple[str, str], _Lut] = {}
        for child in timing.groups():
            base_name = child.name
            match = _match_stat_name(base_name)
            is_nominal = base_name in BASE_QUANTITIES
            if not (is_nominal or match):
                continue
            lut_location = f"{location}.{base_name}"
            lut = self._parse_lut(child, lut_location)
            if lut is None:
                continue
            self._check_axes(lut, lut_location)
            self._check_template(lut, lut_location)
            if is_nominal:
                nominal[base_name] = lut
            else:
                assert match is not None
                stat[match] = lut
        for base in BASE_QUANTITIES:
            self._lint_quantity(base, nominal.get(base), stat, location)

    def _lint_quantity(
        self,
        base: str,
        nominal: _Lut | None,
        stat: dict[tuple[str, str], _Lut],
        location: str,
    ) -> None:
        tables = {
            prefix: stat.get((prefix, base))
            for prefix in LVF_PREFIXES + LVF2_PREFIXES
        }
        present = {
            prefix: lut
            for prefix, lut in tables.items()
            if lut is not None
        }
        if nominal is None:
            if present:
                first = next(iter(present.values()))
                self._emit(
                    "LIB004",
                    first.line,
                    f"{location}.{base}",
                    "statistical LUTs present without a nominal "
                    f"{base} table",
                )
            return
        # LIB004: shape agreement against the nominal grid.
        if nominal.shape is not None:
            for prefix, lut in present.items():
                if lut.shape is not None and lut.shape != nominal.shape:
                    self._emit(
                        "LIB004",
                        lut.line,
                        f"{location}.{prefix}_{base}",
                        f"value grid shape {lut.shape} != nominal "
                        f"{base} shape {nominal.shape}",
                    )
        # LIB005: moment sanity.
        for prefix in _SIGMA_PREFIXES:
            lut = present.get(prefix)
            if lut is None:
                continue
            bad = [v for v in lut.flat() if v <= 0.0 or not math.isfinite(v)]
            if bad:
                self._emit(
                    "LIB005",
                    lut.line,
                    f"{location}.{prefix}_{base}",
                    f"{len(bad)} non-positive sigma entries "
                    f"(worst {min(bad):.6g})",
                )
        for prefix in _SKEW_PREFIXES:
            lut = present.get(prefix)
            if lut is None:
                continue
            worst = max((abs(v) for v in lut.flat()), default=0.0)
            if worst >= MAX_SKEWNESS:
                self._emit(
                    "LIB005",
                    lut.line,
                    f"{location}.{prefix}_{base}",
                    f"|skewness| {worst:.4f} >= SN feasibility bound "
                    f"{MAX_SKEWNESS:.4f}",
                )
        # LIB001 / LIB007 / LIB002 / LIB010: the mixture weight.
        weight = present.get("ocv_weight2")
        second = [
            present.get(prefix)
            for prefix in (
                "ocv_mean_shift2",
                "ocv_std_dev2",
                "ocv_skewness2",
            )
        ]
        if weight is not None:
            values = weight.flat()
            out_of_range = [
                v for v in values if v < 0.0 or v > 1.0 or not math.isfinite(v)
            ]
            if out_of_range:
                self._emit(
                    "LIB001",
                    weight.line,
                    f"{location}.ocv_weight2_{base}",
                    f"{len(out_of_range)} lambda values outside [0, 1] "
                    f"(worst {max(out_of_range, key=abs):.6g})",
                )
            has_mass = any(v > 0.0 for v in values)
            if has_mass and any(lut is None for lut in second):
                missing = [
                    prefix
                    for prefix, lut in zip(
                        ("ocv_mean_shift2", "ocv_std_dev2", "ocv_skewness2"),
                        second,
                    )
                    if lut is None
                ]
                self._emit(
                    "LIB007",
                    weight.line,
                    f"{location}.ocv_weight2_{base}",
                    "nonzero lambda but second-component LUTs missing: "
                    + ", ".join(missing),
                )
        zero_weight = weight is None or all(
            v == 0.0 for v in weight.flat()
        )
        if zero_weight:
            self._check_collapse(base, present, location)

    def _check_collapse(
        self, base: str, present: dict[str, _Lut], location: str
    ) -> None:
        """λ = 0 must degenerate to plain LVF (paper Eq. 10)."""
        any_extension = any(
            prefix in present for prefix in LVF2_PREFIXES
        )
        if not any_extension:
            return
        mismatched = False
        for lvf2_prefix, lvf_prefix in (
            ("ocv_mean_shift1", "ocv_mean_shift"),
            ("ocv_std_dev1", "ocv_std_dev"),
            ("ocv_skewness1", "ocv_skewness"),
        ):
            component = present.get(lvf2_prefix)
            plain = present.get(lvf_prefix)
            if component is None or plain is None:
                continue
            ours, theirs = component.flat(), plain.flat()
            if len(ours) != len(theirs):
                continue  # already a LIB004 finding
            for a, b in zip(ours, theirs):
                tolerance = _COLLAPSE_RTOL * max(abs(a), abs(b), 1.0)
                if abs(a - b) > tolerance:
                    self._emit(
                        "LIB002",
                        component.line,
                        f"{location}.{lvf2_prefix}_{base}",
                        "lambda is zero but component-1 LUT differs "
                        f"from {lvf_prefix}_{base} "
                        f"({a:.6g} != {b:.6g}); a legacy-LVF reader "
                        "would see a different distribution (Eq. 10)",
                    )
                    mismatched = True
                    break
        if not mismatched:
            first = next(
                present[prefix]
                for prefix in LVF2_PREFIXES
                if prefix in present
            )
            self._emit(
                "LIB010",
                first.line,
                f"{location}.{base}",
                "LVF2 extension LUTs present but lambda is zero "
                "everywhere; plain LVF represents this arc exactly",
            )


def lint_library_text(path: str, text: str) -> list[Finding]:
    """Lint Liberty source text; returns findings.

    Raises:
        ParameterError: When the text is empty or cannot be parsed at
            the syntax level — the domain linter needs an AST.
    """
    if not text.strip():
        raise ParameterError(f"{path}: library file is empty")
    try:
        library = parse_liberty(text)
    except LibertyError as error:
        raise ParameterError(
            f"{path}: cannot lint unparseable Liberty source: {error}"
        ) from error
    return _LibraryLinter(path).lint(library)


def collect_lib_files(paths: list[str]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.lib`` files.

    Raises:
        ParameterError: On a missing path or when no ``.lib`` file is
            found at all.
    """
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.lib")))
        elif path.is_file():
            files.append(path)
        else:
            raise ParameterError(f"no such file or directory: {raw}")
    files = sorted({file.as_posix(): file for file in files}.values())
    if not files:
        raise ParameterError(
            f"no .lib files found under: {', '.join(paths)}"
        )
    return files


def lint_library_paths(
    paths: list[str],
) -> tuple[list[Finding], dict[str, str]]:
    """Lint ``.lib`` files/directories; returns (findings, sources)."""
    findings: list[Finding] = []
    sources: dict[str, str] = {}
    for file in collect_lib_files(paths):
        try:
            text = file.read_text()
        except OSError as error:
            raise ParameterError(
                f"cannot read {file}: {error}"
            ) from error
        sources[file.as_posix()] = text
        findings.extend(lint_library_text(file.as_posix(), text))
    return findings, sources
