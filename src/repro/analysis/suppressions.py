"""Inline suppression directives and the grandfathering baseline.

Two waiver mechanisms, applied in this order:

1. **Inline directives** — a comment on the offending line (or a
   file-scope directive on its own line) waives named rules::

       value = legacy_call()  # repro-lint: disable=RNG001
       # repro-lint: disable-file=PAR003

   Directives name rules by id or symbolic name, comma-separated.
   Suppressed findings are still reported (marked ``suppressed``) so a
   waiver is visible, but they never fail the run.

2. **Baseline file** — a JSON list of grandfathered findings created
   with ``repro lint --write-baseline``.  Entries match on
   ``(file, rule, hash of the stripped source line)`` so findings
   survive unrelated edits that shift line numbers, but *new*
   occurrences of the same rule in the same file still fail.

Both engines share this module; Liberty findings can be baselined the
same way (their ``source`` is the offending group header).
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path

from repro.analysis.findings import REGISTRY, Finding
from repro.errors import ParameterError
from repro.runtime.export import write_text_file

__all__ = [
    "SuppressionIndex",
    "apply_baseline",
    "apply_suppressions",
    "load_baseline",
    "write_baseline",
]

#: ``# repro-lint: disable=RULE[,RULE...]`` / ``disable-file=...``.
_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\- ]+)"
)


class SuppressionIndex:
    """Parsed inline directives of one source file."""

    def __init__(self, file_rules: set[str], line_rules: dict[int, set[str]]):
        self._file_rules = file_rules
        self._line_rules = line_rules

    @classmethod
    def from_source(cls, text: str, *, file: str = "<source>") -> "SuppressionIndex":
        """Scan ``text`` for directives.

        Raises:
            ParameterError: When a directive names an unknown rule —
                a typo'd suppression silently failing open is worse
                than an error.
        """
        file_rules: set[str] = set()
        line_rules: dict[int, set[str]] = {}
        for number, line in enumerate(text.splitlines(), start=1):
            match = _DIRECTIVE.search(line)
            if match is None:
                continue
            names = [
                piece.strip()
                for piece in match.group("rules").split(",")
                if piece.strip()
            ]
            if not names:
                raise ParameterError(
                    f"{file}:{number}: empty repro-lint directive"
                )
            ids = set()
            for name in names:
                rule = REGISTRY.get(name)  # raises on unknown rule
                ids.add(rule.rule_id)
            if match.group("scope") == "disable-file":
                file_rules |= ids
            else:
                line_rules.setdefault(number, set()).update(ids)
        return cls(file_rules, line_rules)

    def waives(self, rule_id: str, line: int) -> bool:
        """Whether the directive set waives ``rule_id`` at ``line``."""
        if rule_id in self._file_rules:
            return True
        return rule_id in self._line_rules.get(line, set())


def apply_suppressions(
    findings: list[Finding], sources: dict[str, str]
) -> list[Finding]:
    """Mark findings waived by inline directives in their file.

    Args:
        findings: Raw engine output.
        sources: Map of file path -> source text (files absent from the
            map keep their findings active).
    """
    indices: dict[str, SuppressionIndex] = {}
    result = []
    for finding in findings:
        index = indices.get(finding.file)
        if index is None and finding.file in sources:
            index = SuppressionIndex.from_source(
                sources[finding.file], file=finding.file
            )
            indices[finding.file] = index
        if index is not None and index.waives(finding.rule_id, finding.line):
            finding = finding.waived(suppressed=True)
        result.append(finding)
    return result


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------
_BASELINE_SCHEMA = "repro.lint_baseline/1"


def _entry_key(finding: Finding) -> tuple[str, str, str]:
    digest = hashlib.sha256(
        finding.source.strip().encode()
    ).hexdigest()[:16]
    return (finding.file, finding.rule_id, digest)


def write_baseline(path: str | Path, findings: list[Finding]) -> int:
    """Write the active findings as a baseline; returns entry count.

    Suppressed findings are excluded — an inline waiver already covers
    them, and double-listing would hide the directive going stale.
    """
    entries = [
        {
            "file": file,
            "rule": rule,
            "source_hash": digest,
        }
        for file, rule, digest in sorted(
            _entry_key(finding)
            for finding in findings
            if not finding.suppressed
        )
    ]
    payload = {"schema": _BASELINE_SCHEMA, "entries": entries}
    write_text_file(
        path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    return len(entries)


def load_baseline(path: str | Path) -> set[tuple[str, str, str]]:
    """Load a baseline file into a set of match keys.

    Raises:
        ParameterError: When the file is unreadable or not a baseline.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except OSError as error:
        raise ParameterError(
            f"cannot read baseline {path}: {error}"
        ) from error
    except json.JSONDecodeError as error:
        raise ParameterError(
            f"baseline {path} is not valid JSON: {error}"
        ) from error
    if (
        not isinstance(payload, dict)
        or payload.get("schema") != _BASELINE_SCHEMA
        or not isinstance(payload.get("entries"), list)
    ):
        raise ParameterError(
            f"baseline {path} has an unknown format "
            f"(expected schema {_BASELINE_SCHEMA!r})"
        )
    keys = set()
    for entry in payload["entries"]:
        try:
            keys.add(
                (entry["file"], entry["rule"], entry["source_hash"])
            )
        except (TypeError, KeyError) as error:
            raise ParameterError(
                f"baseline {path} entry missing field: {error}"
            ) from error
    return keys


def apply_baseline(
    findings: list[Finding], keys: set[tuple[str, str, str]]
) -> list[Finding]:
    """Mark findings covered by baseline ``keys`` as grandfathered."""
    return [
        finding.waived(baselined=_entry_key(finding) in keys)
        for finding in findings
    ]
