"""Static analysis: determinism lint for sources and LVF2 artifacts.

Three engines share one rule registry, finding model and reporters
(see DESIGN.md §"Static analysis" and §12):

- :mod:`repro.analysis.python_lint` — an :mod:`ast`-based per-file
  linter for the repo's own sources, enforcing the reproducibility
  contract the checkpoint/resume layer and the parallel
  characterisation workers depend on (RNG discipline, determinism
  hazards, numerical safety, shared-state rules).  CLI: ``repro
  lint``.
- :mod:`repro.analysis.liberty_lint` — a domain linter over the parsed
  Liberty AST that statically checks LVF2 semantics (λ range, Eq. 10
  backward compatibility, LUT shape/axis agreement, mixture moment
  sanity) so a bad library is rejected with rule-tagged diagnostics
  before it reaches SSTA.  CLI: ``repro lint-lib``.
- :mod:`repro.analysis.flow` — an interprocedural taint pass over the
  whole linted tree: determinism provenance (FLOW0xx — RNG/entropy/
  wall-clock/env values crossing function boundaries into sampling or
  content keys) and the pool filesystem-race detector (POOL0xx —
  protocol paths mutated outside the fsfaults/O_EXCL/temp+rename
  idioms).  CLI: ``repro lint --flow``.

All support inline suppression (``# repro-lint: disable=RULE``) and a
grandfathering baseline file (:mod:`repro.analysis.suppressions`), and
emit human text, telemetry-convention JSONL, or SARIF 2.1.0
(:mod:`repro.analysis.reporter`).  Like the telemetry package, this
package imports nothing heavyweight at module load.
"""

from repro.analysis.findings import (
    REGISTRY,
    Finding,
    LintSeverity,
    Rule,
    RuleRegistry,
)
from repro.analysis.flow import (
    FlowConfig,
    lint_flow_paths,
    lint_flow_sources,
)
from repro.analysis.liberty_lint import (
    collect_lib_files,
    lint_library_paths,
    lint_library_text,
)
from repro.analysis.python_lint import (
    LintConfig,
    collect_python_files,
    lint_paths,
    lint_source,
)
from repro.analysis.reporter import (
    fails,
    render_jsonl,
    render_sarif,
    render_stats,
    render_text,
    scan_stats,
    summarize,
)
from repro.analysis.suppressions import (
    SuppressionIndex,
    apply_baseline,
    apply_suppressions,
    load_baseline,
    write_baseline,
)

__all__ = [
    "Finding",
    "FlowConfig",
    "LintConfig",
    "LintSeverity",
    "REGISTRY",
    "Rule",
    "RuleRegistry",
    "SuppressionIndex",
    "apply_baseline",
    "apply_suppressions",
    "collect_lib_files",
    "collect_python_files",
    "fails",
    "lint_flow_paths",
    "lint_flow_sources",
    "lint_library_paths",
    "lint_library_text",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "render_jsonl",
    "render_sarif",
    "render_stats",
    "render_text",
    "scan_stats",
    "summarize",
    "write_baseline",
]
