"""Finding model and rule registry shared by both lint engines.

A *rule* is a named invariant with a stable id (``RNG001``,
``LIB004``...); a *finding* is one concrete violation of a rule at a
file/line.  Both the Python source engine
(:mod:`repro.analysis.python_lint`) and the Liberty domain engine
(:mod:`repro.analysis.liberty_lint`) register their rules in the one
:class:`RuleRegistry` below, so ``repro lint --rules`` can render a
single table and rule ids can never collide across engines.

Severities mirror :class:`repro.liberty.validate.Severity`: ``INFO``
findings never fail a run, ``WARNING`` and ``ERROR`` do unless
baselined or suppressed (see :mod:`repro.analysis.suppressions`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.errors import ParameterError

__all__ = [
    "Finding",
    "LintSeverity",
    "Rule",
    "RuleRegistry",
    "REGISTRY",
]


class LintSeverity(enum.Enum):
    """Finding severity, in increasing order of gravity."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return ("info", "warning", "error").index(self.value)


@dataclass(frozen=True)
class Rule:
    """One registered invariant.

    Attributes:
        rule_id: Stable short id, e.g. ``RNG001``.
        name: Symbolic kebab-case name, e.g. ``global-rng``.
        engine: ``"python"`` or ``"liberty"``.
        severity: Default severity of findings from this rule.
        summary: One-line description for the rule table.
    """

    rule_id: str
    name: str
    engine: str
    severity: LintSeverity
    summary: str


@dataclass(frozen=True)
class Finding:
    """One concrete rule violation.

    Attributes:
        rule_id: Id of the violated rule.
        severity: Effective severity (defaults to the rule's).
        file: Path of the offending file, as given to the engine.
        line: 1-based line number (0 when unknown, e.g. a file-level
            Liberty finding).
        message: Human-readable description of the violation.
        source: Stripped text of the offending source line; used for
            drift-tolerant baseline matching.
        suppressed: True when an inline directive waived this finding.
        baselined: True when a baseline entry grandfathered it.
    """

    rule_id: str
    severity: LintSeverity
    file: str
    line: int
    message: str
    source: str = ""
    suppressed: bool = False
    baselined: bool = False

    @property
    def is_active(self) -> bool:
        """Whether this finding still counts against the run."""
        return not (self.suppressed or self.baselined)

    def sort_key(self) -> tuple:
        return (self.file, self.line, self.rule_id, self.message)

    def to_dict(self) -> dict:
        """JSONL record (telemetry conventions: self-describing type)."""
        return {
            "type": "finding",
            "rule": self.rule_id,
            "severity": self.severity.value,
            "file": self.file,
            "line": self.line,
            "message": self.message,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }

    def waived(self, *, suppressed: bool = False, baselined: bool = False) -> "Finding":
        """Copy of the finding with a waiver flag set."""
        return replace(
            self,
            suppressed=self.suppressed or suppressed,
            baselined=self.baselined or baselined,
        )


class RuleRegistry:
    """All registered rules, keyed by id and by symbolic name."""

    def __init__(self) -> None:
        self._rules: dict[str, Rule] = {}
        self._by_name: dict[str, Rule] = {}

    def register(self, rule: Rule) -> Rule:
        if rule.rule_id in self._rules:
            raise ParameterError(
                f"duplicate rule id {rule.rule_id!r}"
            )
        if rule.name in self._by_name:
            raise ParameterError(
                f"duplicate rule name {rule.name!r}"
            )
        self._rules[rule.rule_id] = rule
        self._by_name[rule.name] = rule
        return rule

    def get(self, key: str) -> Rule:
        """Look a rule up by id or symbolic name.

        Raises:
            ParameterError: For an unknown rule.
        """
        rule = self._rules.get(key) or self._by_name.get(key)
        if rule is None:
            raise ParameterError(f"unknown lint rule {key!r}")
        return rule

    def __contains__(self, key: str) -> bool:
        return key in self._rules or key in self._by_name

    def rules(self, engine: str | None = None) -> list[Rule]:
        """All rules (optionally one engine's), sorted by id."""
        return sorted(
            (
                rule
                for rule in self._rules.values()
                if engine is None or rule.engine == engine
            ),
            key=lambda rule: rule.rule_id,
        )

    def finding(
        self,
        rule_id: str,
        file: str,
        line: int,
        message: str,
        *,
        source: str = "",
        severity: LintSeverity | None = None,
    ) -> Finding:
        """Build a finding for a registered rule (id must exist)."""
        rule = self.get(rule_id)
        return Finding(
            rule_id=rule.rule_id,
            severity=severity if severity is not None else rule.severity,
            file=file,
            line=line,
            message=message,
            source=source,
        )

    def table(self) -> str:
        """Render the rule table for ``repro lint --rules``."""
        lines = []
        for rule in self.rules():
            lines.append(
                f"{rule.rule_id}  {rule.severity.value:<7s} "
                f"{rule.name:<24s} {rule.summary}"
            )
        return "\n".join(lines)


#: The process-wide registry both engines populate at import time.
#: Read-only after module import — safe to share across workers.
REGISTRY = RuleRegistry()


def _register(
    rule_id: str,
    name: str,
    engine: str,
    severity: LintSeverity,
    summary: str,
) -> Rule:
    return REGISTRY.register(
        Rule(rule_id, name, engine, severity, summary)
    )


# ---------------------------------------------------------------------------
# Python source rules (engine 1): RNG discipline, determinism hazards,
# numerical-safety smells, parallel-readiness.
# ---------------------------------------------------------------------------
_register(
    "RNG001",
    "global-rng",
    "python",
    LintSeverity.ERROR,
    "np.random.* global-state call; thread a Generator instead",
)
_register(
    "RNG002",
    "seedless-rng",
    "python",
    LintSeverity.ERROR,
    "default_rng() without a seed outside conftest/faults",
)
_register(
    "RNG003",
    "sampler-no-rng",
    "python",
    LintSeverity.WARNING,
    "sampler function does not accept an rng argument",
)
_register(
    "DET001",
    "set-iteration",
    "python",
    LintSeverity.ERROR,
    "iteration over an unordered set feeds ordered output",
)
_register(
    "DET002",
    "wallclock-fingerprint",
    "python",
    LintSeverity.ERROR,
    "wall-clock/entropy call inside a fingerprint/token function",
)
_register(
    "NUM001",
    "bare-except",
    "python",
    LintSeverity.ERROR,
    "bare except (or except-pass) swallows numerical errors",
)
_register(
    "NUM002",
    "silent-errstate",
    "python",
    LintSeverity.ERROR,
    'np.errstate(all="ignore") silences every FP signal',
)
_register(
    "NUM003",
    "unguarded-division",
    "python",
    LintSeverity.WARNING,
    "division in stats/ by a value never checked against zero",
)
_register(
    "PAR001",
    "module-mutable-state",
    "python",
    LintSeverity.ERROR,
    "module-level mutable container blocks parallel workers",
)
_register(
    "PAR002",
    "non-atomic-write",
    "python",
    LintSeverity.ERROR,
    "file write bypasses the atomic repro.runtime.export helpers",
)
_register(
    "PAR003",
    "global-rebind",
    "python",
    LintSeverity.WARNING,
    "function rebinds module state via `global` in repro.runtime",
)

# ---------------------------------------------------------------------------
# Interprocedural flow rules (engine 3): determinism provenance and the
# pool filesystem-race detector (:mod:`repro.analysis.flow`).  Unlike
# the per-file RNG/DET rules above, these track values across
# call/return/attribute flow through the whole linted tree.
# ---------------------------------------------------------------------------
_register(
    "FLOW001",
    "tainted-rng-flow",
    "flow",
    LintSeverity.ERROR,
    "entropy/wall-clock/env-seeded RNG reaches a sampling API",
)
_register(
    "FLOW002",
    "wallclock-into-key",
    "flow",
    LintSeverity.ERROR,
    "wall-clock/entropy value flows into a content key or shard",
)
_register(
    "FLOW003",
    "env-into-key",
    "flow",
    LintSeverity.ERROR,
    "os.environ value flows into a content key or shard",
)
_register(
    "POOL001",
    "pool-write-bypasses-seam",
    "flow",
    LintSeverity.ERROR,
    "pool-protocol path mutated without the fsfaults retry seam",
)
_register(
    "POOL002",
    "claim-write-not-exclusive",
    "flow",
    LintSeverity.ERROR,
    "claim-file body written without an O_CREAT|O_EXCL create",
)
_register(
    "POOL003",
    "inplace-pool-write",
    "flow",
    LintSeverity.ERROR,
    "pool payload truncated in place; stage to a temp file + rename",
)

# ---------------------------------------------------------------------------
# Liberty / LVF2 domain rules (engine 2), paper §3.3 semantics.
# ---------------------------------------------------------------------------
_register(
    "LIB001",
    "weight-range",
    "liberty",
    LintSeverity.ERROR,
    "ocv_weight2 (lambda) value outside [0, 1]",
)
_register(
    "LIB002",
    "backward-compat",
    "liberty",
    LintSeverity.ERROR,
    "lambda=0 tables do not collapse to plain LVF (Eq. 10)",
)
_register(
    "LIB003",
    "axis-monotonicity",
    "liberty",
    LintSeverity.ERROR,
    "LUT index axis not strictly increasing",
)
_register(
    "LIB004",
    "shape-mismatch",
    "liberty",
    LintSeverity.ERROR,
    "LVF2 attribute table shape disagrees across the seven LUTs",
)
_register(
    "LIB005",
    "moment-sanity",
    "liberty",
    LintSeverity.ERROR,
    "mixture moment out of range (sigma<=0 or |skew|>=SN bound)",
)
_register(
    "LIB006",
    "template-consistency",
    "liberty",
    LintSeverity.ERROR,
    "LUT references a missing template or contradicts its axes",
)
_register(
    "LIB007",
    "mixture-completeness",
    "liberty",
    LintSeverity.ERROR,
    "nonzero ocv_weight2 without the full second-component LUT set",
)
_register(
    "LIB008",
    "malformed-table",
    "liberty",
    LintSeverity.ERROR,
    "LUT group is missing values or carries unparseable numbers",
)
_register(
    "LIB009",
    "unit-consistency",
    "liberty",
    LintSeverity.WARNING,
    "library-level unit/delay-model attributes absent or unusual",
)
_register(
    "LIB010",
    "dead-extension",
    "liberty",
    LintSeverity.INFO,
    "LVF2 extension LUTs present but lambda is zero everywhere",
)
