"""Engine 1: AST lint for numerical determinism over Python sources.

The rules are tuned to this codebase's reproducibility contract — the
checkpoint/resume layer assumes identical inputs produce bit-identical
arcs, and the future parallel characterisation workers assume no
shared mutable module state.  Four rule families (ids in
:mod:`repro.analysis.findings`):

RNG discipline
    ``RNG001`` — any ``np.random.<fn>()`` global-state call (seeding or
    sampling through the legacy singleton); ``RNG002`` — a seedless
    ``default_rng()`` outside the allowlisted files (conftest, fault
    injection); ``RNG003`` — a function named ``sample``/``sampler``
    without an ``rng`` parameter.

Determinism hazards
    ``DET001`` — iterating directly over a ``set``/``frozenset``
    expression (order feeds output); ``DET002`` — wall-clock or
    entropy calls (``time.time``, ``os.urandom``, ``uuid.uuid4``...)
    inside fingerprint/token/checksum functions.

Numerical safety
    ``NUM001`` — bare ``except:`` or an ``except`` whose handler is
    only ``pass``; ``NUM002`` — ``np.errstate(all="ignore")``;
    ``NUM003`` — in ``stats/`` files, division by a local value that
    is never compared against anything (no zero guard anywhere in the
    function, following one assignment hop).

Parallel readiness (``repro.runtime`` and the write path)
    ``PAR001`` — module-level mutable containers in ``repro/runtime``;
    ``PAR002`` — write-mode ``open()`` / ``Path.write_text`` outside
    the atomic :mod:`repro.runtime.export` / telemetry sink modules
    (calls through the :mod:`repro.runtime.fsfaults` seam are the
    sanctioned path and never match);
    ``PAR003`` — ``global`` rebinding inside ``repro/runtime``
    functions (the sites a worker protocol must revisit).

Everything is :mod:`ast`-based — no text matching beyond the
suppression comments — and zero-dependency, like the telemetry layer.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import REGISTRY, Finding
from repro.errors import ParameterError

__all__ = ["LintConfig", "lint_source", "lint_paths", "collect_python_files"]

#: ``np.random`` attributes that hit the legacy global state.  The
#: modern API (``default_rng``, ``Generator``, ``SeedSequence``...) is
#: exempt.
_GLOBAL_RNG_ATTRS = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "standard_normal",
        "lognormal",
        "exponential",
        "beta",
        "gamma",
        "binomial",
        "poisson",
        "get_state",
        "set_state",
    }
)

#: Wall-clock / entropy calls that must never feed a fingerprint.
_WALLCLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "perf_counter"),
    ("os", "urandom"),
    ("uuid", "uuid1"),
    ("uuid", "uuid4"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
}

#: Function-name fragments marking deterministic-fingerprint scope.
_FINGERPRINT_MARKERS = ("fingerprint", "token", "checksum")


@dataclass(frozen=True)
class LintConfig:
    """Repo-tuned knobs for the Python engine.

    Attributes:
        rng_allowed_files: File-name fragments where a seedless
            ``default_rng()`` is legitimate (test fixtures, fault
            injection contexts that derive their own seeds).
        atomic_write_files: File-name fragments allowed to open files
            in write mode directly — the atomic helpers themselves.
        runtime_fragment: Path fragment identifying ``repro.runtime``
            sources for the PAR rules.
        stats_fragment: Path fragment identifying ``stats/`` sources
            for NUM003.
    """

    rng_allowed_files: tuple[str, ...] = ("conftest.py", "faults.py")
    atomic_write_files: tuple[str, ...] = (
        "runtime/export.py",
        "runtime/telemetry/sinks.py",
    )
    runtime_fragment: str = "repro/runtime"
    stats_fragment: str = "repro/stats"


def _posix(path: str) -> str:
    return path.replace("\\", "/")


def _matches(path: str, fragments: tuple[str, ...] | str) -> bool:
    posix = _posix(path)
    if isinstance(fragments, str):
        fragments = (fragments,)
    return any(fragment in posix for fragment in fragments)


def _call_name(node: ast.Call) -> tuple[str, ...] | None:
    """Dotted name of a call target, e.g. ``("np", "random", "seed")``."""
    parts: list[str] = []
    target = node.func
    while isinstance(target, ast.Attribute):
        parts.append(target.attr)
        target = target.value
    if isinstance(target, ast.Name):
        parts.append(target.id)
        return tuple(reversed(parts))
    return None


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _call_name(node)
        return name is not None and name[-1] in ("set", "frozenset")
    return False


_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "defaultdict", "deque", "Counter", "bytearray"}
)


def _is_mutable_container(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _call_name(node)
        return name is not None and name[-1] in _MUTABLE_CALLS
    return False


class _FileLinter(ast.NodeVisitor):
    """Single-file rule walker; collects raw findings (no waivers)."""

    def __init__(self, path: str, lines: list[str], config: LintConfig):
        self.path = path
        self.lines = lines
        self.config = config
        self.findings: list[Finding] = []
        self._function_stack: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
        self._in_runtime = _matches(path, config.runtime_fragment)
        self._in_stats = _matches(path, config.stats_fragment)

    # ------------------------------------------------------------------
    def _emit(self, rule_id: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        source = (
            self.lines[line - 1].strip()
            if 0 < line <= len(self.lines)
            else ""
        )
        self.findings.append(
            REGISTRY.finding(
                rule_id, self.path, line, message, source=source
            )
        )

    @property
    def _enclosing_function(self):
        return self._function_stack[-1] if self._function_stack else None

    def _in_fingerprint_scope(self) -> bool:
        return any(
            any(m in fn.name.lower() for m in _FINGERPRINT_MARKERS)
            for fn in self._function_stack
        )

    # ------------------------------------------------------------------
    # RNG + DET002 + NUM002 + PAR002: all call-shaped rules
    # ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if name is not None:
            self._check_rng(node, name)
            self._check_wallclock(node, name)
            self._check_errstate(node, name)
            self._check_write(node, name)
        self.generic_visit(node)

    def _check_rng(self, node: ast.Call, name: tuple[str, ...]) -> None:
        if (
            len(name) >= 3
            and name[-3] in ("np", "numpy")
            and name[-2] == "random"
            and name[-1] in _GLOBAL_RNG_ATTRS
        ):
            self._emit(
                "RNG001",
                node,
                f"np.random.{name[-1]} mutates the process-global RNG; "
                "thread an np.random.Generator instead",
            )
        if name[-1] == "default_rng" and not node.args and not node.keywords:
            if not _matches(self.path, self.config.rng_allowed_files):
                self._emit(
                    "RNG002",
                    node,
                    "default_rng() without a seed draws OS entropy; "
                    "pass the run seed so re-runs are bit-identical",
                )

    def _check_wallclock(self, node: ast.Call, name: tuple[str, ...]) -> None:
        if len(name) < 2 or not self._in_fingerprint_scope():
            return
        if (name[-2], name[-1]) in _WALLCLOCK_CALLS:
            self._emit(
                "DET002",
                node,
                f"{name[-2]}.{name[-1]}() inside a fingerprint/token "
                "function makes the content address time-dependent",
            )

    def _check_errstate(self, node: ast.Call, name: tuple[str, ...]) -> None:
        if name[-1] != "errstate":
            return
        for keyword in node.keywords:
            if (
                keyword.arg == "all"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value == "ignore"
            ):
                self._emit(
                    "NUM002",
                    node,
                    'errstate(all="ignore") hides overflow/invalid '
                    "signals; silence only the class you expect",
                )

    _WRITE_MODES = ("w", "wb", "a", "ab", "w+", "a+", "wt", "at")

    def _check_write(self, node: ast.Call, name: tuple[str, ...]) -> None:
        if _matches(self.path, self.config.atomic_write_files):
            return
        bypass = False
        if name[-1] == "open" and len(name) == 1:
            mode: ast.expr | None = None
            if len(node.args) >= 2:
                mode = node.args[1]
            for keyword in node.keywords:
                if keyword.arg == "mode":
                    mode = keyword.value
            bypass = (
                isinstance(mode, ast.Constant)
                and isinstance(mode.value, str)
                and mode.value in self._WRITE_MODES
            )
        elif name[-1] in ("write_text", "write_bytes") and len(name) > 1:
            # Calls routed through the retrying FS seam are the
            # sanctioned write path, not a Path method bypassing it.
            bypass = name[-2] != "fsfaults"
        elif name[-1] == "open" and len(name) > 1:
            # Path.open("w") method form.
            mode = node.args[0] if node.args else None
            for keyword in node.keywords:
                if keyword.arg == "mode":
                    mode = keyword.value
            bypass = (
                isinstance(mode, ast.Constant)
                and isinstance(mode.value, str)
                and mode.value in self._WRITE_MODES
            )
        if bypass:
            self._emit(
                "PAR002",
                node,
                "direct write-mode file access; route through "
                "repro.runtime.export.write_text_file so a kill cannot "
                "leave a truncated artifact",
            )

    # ------------------------------------------------------------------
    # RNG003 + function scope tracking + NUM003
    # ------------------------------------------------------------------
    def _visit_function(self, node) -> None:
        if node.name in ("sample", "sampler") or node.name.endswith("_sampler"):
            arg_names = {
                arg.arg
                for arg in (
                    node.args.args
                    + node.args.kwonlyargs
                    + node.args.posonlyargs
                )
            }
            if "rng" not in arg_names:
                self._emit(
                    "RNG003",
                    node,
                    f"sampler {node.name}() takes no rng argument; "
                    "callers cannot thread a Generator through it",
                )
        self._function_stack.append(node)
        self.generic_visit(node)
        self._function_stack.pop()
        if self._in_stats and not self._function_stack:
            self._check_divisions(node)

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # ------------------------------------------------------------------
    # DET001: set iteration
    # ------------------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if _is_set_expression(node.iter):
            self._emit(
                "DET001",
                node,
                "iterating a set yields hash order; sort it before it "
                "can feed ordered output",
            )
        self.generic_visit(node)

    def visit_comprehension_iter(self, node) -> None:
        for generator in node.generators:
            if _is_set_expression(generator.iter):
                self._emit(
                    "DET001",
                    node,
                    "comprehension iterates a set in hash order; "
                    "sort it before it can feed ordered output",
                )
        self.generic_visit(node)

    visit_ListComp = visit_comprehension_iter
    visit_GeneratorExp = visit_comprehension_iter

    # ------------------------------------------------------------------
    # NUM001: bare / swallowing except
    # ------------------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._emit(
                "NUM001",
                node,
                "bare except catches KeyboardInterrupt and hides "
                "numerical failures; name the exception family",
            )
        elif len(node.body) == 1 and isinstance(node.body[0], ast.Pass):
            names = []
            targets = (
                node.type.elts
                if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    names.append(target.id)
                elif isinstance(target, ast.Attribute):
                    names.append(target.attr)
            if any(
                name in ("Exception", "BaseException") for name in names
            ):
                self._emit(
                    "NUM001",
                    node,
                    "except-and-pass on Exception swallows every "
                    "failure silently",
                )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # PAR001 / PAR003: module state
    # ------------------------------------------------------------------
    def check_module_state(self, tree: ast.Module) -> None:
        if not self._in_runtime:
            return
        for statement in tree.body:
            value = None
            targets: list[ast.expr] = []
            if isinstance(statement, ast.Assign):
                value = statement.value
                targets = statement.targets
            elif isinstance(statement, ast.AnnAssign):
                value = statement.value
                targets = [statement.target]
            # Dunder metadata (__all__ and friends) is written once at
            # import and read-only by convention — not worker state.
            if any(
                isinstance(target, ast.Name)
                and target.id.startswith("__")
                and target.id.endswith("__")
                for target in targets
            ):
                continue
            if value is not None and _is_mutable_container(value):
                self._emit(
                    "PAR001",
                    statement,
                    "module-level mutable container is shared state a "
                    "process pool would race on; use an immutable "
                    "mapping/tuple or move it into an object",
                )

    def visit_Global(self, node: ast.Global) -> None:
        if self._in_runtime:
            self._emit(
                "PAR003",
                node,
                f"rebinds module state ({', '.join(node.names)}); "
                "parallel workers each see their own copy — see "
                "DESIGN.md 'Parallel-readiness rules'",
            )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # NUM003: unguarded division in stats/
    # ------------------------------------------------------------------
    def _check_divisions(self, function: ast.AST) -> None:
        """Flag divisions by locals that are never zero-guarded.

        A denominator is *guarded* when its name (or, one assignment
        hop back, any name on the right-hand side it was computed
        from) appears in a comparison, an ``assert``, a ``max``/
        ``clip``/``abs`` call, or is validated by raising anywhere in
        the function.  Parameters with defaults and loop variables are
        skipped — the rule targets computed scale factors (sigma,
        totals) that silently reach zero.
        """
        compared: set[str] = set()
        assigned_from: dict[str, set[str]] = {}
        for node in ast.walk(function):
            if isinstance(node, ast.Compare):
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Name):
                        compared.add(sub.id)
            elif isinstance(node, ast.Assert):
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Name):
                        compared.add(sub.id)
            elif isinstance(node, ast.Call):
                name = _call_name(node)
                if name is not None and name[-1] in (
                    "max",
                    "maximum",
                    "clip",
                    "abs",
                    "validate_samples",
                ):
                    for sub in ast.walk(node):
                        if isinstance(sub, ast.Name):
                            compared.add(sub.id)
            elif isinstance(node, ast.Assign):
                rhs_names = {
                    sub.id
                    for sub in ast.walk(node.value)
                    if isinstance(sub, ast.Name)
                }
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        assigned_from.setdefault(target.id, set()).update(
                            rhs_names
                        )

        def guarded(name: str, depth: int = 0) -> bool:
            if name in compared:
                return True
            if depth >= 2:
                return False
            return any(
                guarded(origin, depth + 1)
                for origin in assigned_from.get(name, ())
            )

        for node in ast.walk(function):
            if not (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, (ast.Div, ast.FloorDiv, ast.Mod))
            ):
                continue
            denominator = node.right
            # Accept ``x`` and ``x ** k`` shapes; anything else (calls,
            # attributes, literals) is out of scope for a static check.
            if (
                isinstance(denominator, ast.BinOp)
                and isinstance(denominator.op, ast.Pow)
            ):
                denominator = denominator.left
            if not isinstance(denominator, ast.Name):
                continue
            if denominator.id not in assigned_from:
                continue  # parameters / loop vars: caller's contract
            if not guarded(denominator.id):
                self._emit(
                    "NUM003",
                    node,
                    f"division by {denominator.id!r} which is never "
                    "compared against zero in this function",
                )


def lint_source(
    path: str, text: str, config: LintConfig | None = None
) -> list[Finding]:
    """Lint one Python source string; returns raw findings.

    Raises:
        ParameterError: When the source does not parse — the linter
            cannot vouch for a file it cannot read.
    """
    config = config or LintConfig()
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as error:
        raise ParameterError(
            f"{path}: cannot lint unparseable source: {error}"
        ) from error
    linter = _FileLinter(path, text.splitlines(), config)
    linter.visit(tree)
    linter.check_module_state(tree)
    return sorted(linter.findings, key=Finding.sort_key)


def collect_python_files(paths: list[str]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Raises:
        ParameterError: When a path is missing, or no Python source is
            found at all (an empty input is a configuration error, not
            a clean run).
    """
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise ParameterError(f"no such file or directory: {raw}")
    files = sorted({file.as_posix(): file for file in files}.values())
    if not files:
        raise ParameterError(
            f"no Python sources found under: {', '.join(paths)}"
        )
    return files


def lint_paths(
    paths: list[str], config: LintConfig | None = None
) -> tuple[list[Finding], dict[str, str]]:
    """Lint files/directories; returns (findings, sources-by-path).

    The source map feeds
    :func:`repro.analysis.suppressions.apply_suppressions`.
    """
    config = config or LintConfig()
    findings: list[Finding] = []
    sources: dict[str, str] = {}
    for file in collect_python_files(paths):
        try:
            text = file.read_text()
        except OSError as error:
            raise ParameterError(
                f"cannot read {file}: {error}"
            ) from error
        sources[file.as_posix()] = text
        findings.extend(lint_source(file.as_posix(), text, config))
    return findings, sources
