"""Finding reporters: human text, JSONL, SARIF, and scan statistics.

The JSONL stream follows the same conventions as the telemetry sinks
(:mod:`repro.runtime.telemetry.sinks`): one self-describing object per
line with a ``type`` key — ``finding`` records followed by a single
``lint_summary`` record — so the same tooling that tails traces can
tail lint output, and ``repro trace summarize``-style consumers can
skip unknown record types.

The SARIF reporter emits a minimal but valid SARIF 2.1.0 document
(one run, one driver, rule metadata from the shared registry) so any
engine's findings — syntactic, Liberty, or interprocedural flow — can
surface in GitHub code scanning without a format shim.
"""

from __future__ import annotations

import json
from typing import TextIO

from repro.analysis.findings import REGISTRY, Finding, LintSeverity

__all__ = [
    "fails",
    "render_jsonl",
    "render_sarif",
    "render_stats",
    "render_text",
    "scan_stats",
    "summarize",
]

#: SARIF 2.1.0 level names by finding severity.
_SARIF_LEVELS = {"error": "error", "warning": "warning", "info": "note"}

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def summarize(findings: list[Finding]) -> dict:
    """Aggregate counts for the summary line / JSONL trailer."""
    active = [finding for finding in findings if finding.is_active]
    by_severity = {severity.value: 0 for severity in LintSeverity}
    by_rule: dict[str, int] = {}
    for finding in active:
        by_severity[finding.severity.value] += 1
        by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
    return {
        "type": "lint_summary",
        "total": len(findings),
        "active": len(active),
        "suppressed": sum(1 for f in findings if f.suppressed),
        "baselined": sum(1 for f in findings if f.baselined),
        "by_severity": by_severity,
        "by_rule": dict(sorted(by_rule.items())),
    }


def fails(findings: list[Finding]) -> bool:
    """Whether the active findings should fail the run.

    INFO findings never fail; any active WARNING or ERROR does — the
    CI gate is "no non-baselined findings", not "no catastrophes".
    """
    return any(
        finding.is_active
        and finding.severity is not LintSeverity.INFO
        for finding in findings
    )


def render_text(findings: list[Finding], stream: TextIO) -> None:
    """One line per finding plus a summary, pylint-style."""
    for finding in sorted(findings, key=Finding.sort_key):
        waiver = ""
        if finding.suppressed:
            waiver = " (suppressed)"
        elif finding.baselined:
            waiver = " (baselined)"
        location = (
            f"{finding.file}:{finding.line}"
            if finding.line
            else finding.file
        )
        stream.write(
            f"{location}: {finding.rule_id} "
            f"[{finding.severity.value}] {finding.message}{waiver}\n"
        )
    counts = summarize(findings)
    severities = counts["by_severity"]
    stream.write(
        f"{counts['active']} finding(s) "
        f"({severities['error']} error, {severities['warning']} warning, "
        f"{severities['info']} info), "
        f"{counts['suppressed']} suppressed, "
        f"{counts['baselined']} baselined\n"
    )


def render_jsonl(findings: list[Finding], stream: TextIO) -> None:
    """Self-describing JSONL: finding records, then one summary."""
    for finding in sorted(findings, key=Finding.sort_key):
        stream.write(
            json.dumps(finding.to_dict(), sort_keys=True) + "\n"
        )
    stream.write(
        json.dumps(summarize(findings), sort_keys=True) + "\n"
    )


def _sarif_result(finding: Finding) -> dict:
    result: dict = {
        "ruleId": finding.rule_id,
        "level": _SARIF_LEVELS[finding.severity.value],
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.file},
                    "region": {"startLine": max(finding.line, 1)},
                }
            }
        ],
    }
    if finding.suppressed or finding.baselined:
        kind = "inSource" if finding.suppressed else "external"
        result["suppressions"] = [{"kind": kind}]
    return result


def render_sarif(findings: list[Finding], stream: TextIO) -> None:
    """SARIF 2.1.0 document for GitHub code scanning.

    Rule metadata (short description, default level) comes from the
    shared registry, so every rule id that appears in the results is
    also declared in ``tool.driver.rules`` — the shape code-scanning
    ingestion validates.  Waived findings are kept, marked with a
    SARIF ``suppressions`` entry (``inSource`` for inline directives,
    ``external`` for baseline grandfathering), so the upload reflects
    the same ledger as the text report.
    """
    ordered = sorted(findings, key=Finding.sort_key)
    rule_ids = sorted({finding.rule_id for finding in ordered})
    rules = [
        {
            "id": rule.rule_id,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS[rule.severity.value]
            },
        }
        for rule in (REGISTRY.get(rule_id) for rule_id in rule_ids)
    ]
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "results": [_sarif_result(f) for f in ordered],
            }
        ],
    }
    stream.write(json.dumps(document, sort_keys=True, indent=2) + "\n")


def scan_stats(findings: list[Finding], sources: dict[str, str]) -> dict:
    """Per-rule finding counts plus scanned file/loc totals."""
    by_rule: dict[str, dict[str, int]] = {}
    for finding in sorted(findings, key=Finding.sort_key):
        entry = by_rule.setdefault(
            finding.rule_id,
            {"total": 0, "active": 0, "suppressed": 0, "baselined": 0},
        )
        entry["total"] += 1
        if finding.suppressed:
            entry["suppressed"] += 1
        elif finding.baselined:
            entry["baselined"] += 1
        else:
            entry["active"] += 1
    return {
        "type": "lint_stats",
        "files": len(sources),
        "loc": sum(len(text.splitlines()) for text in sources.values()),
        "by_rule": by_rule,
    }


def render_stats(
    findings: list[Finding],
    sources: dict[str, str],
    stream: TextIO,
) -> None:
    """Human-readable scan statistics block."""
    stats = scan_stats(findings, sources)
    stream.write(
        f"scanned {stats['files']} file(s), {stats['loc']} line(s)\n"
    )
    if not stats["by_rule"]:
        stream.write("no findings by rule\n")
        return
    for rule_id, entry in sorted(stats["by_rule"].items()):
        stream.write(
            f"{rule_id}  total={entry['total']} "
            f"active={entry['active']} "
            f"suppressed={entry['suppressed']} "
            f"baselined={entry['baselined']}\n"
        )
