"""Finding reporters: human text and JSONL (telemetry conventions).

The JSONL stream follows the same conventions as the telemetry sinks
(:mod:`repro.runtime.telemetry.sinks`): one self-describing object per
line with a ``type`` key — ``finding`` records followed by a single
``lint_summary`` record — so the same tooling that tails traces can
tail lint output, and ``repro trace summarize``-style consumers can
skip unknown record types.
"""

from __future__ import annotations

import json
from typing import TextIO

from repro.analysis.findings import Finding, LintSeverity

__all__ = ["render_text", "render_jsonl", "summarize", "fails"]


def summarize(findings: list[Finding]) -> dict:
    """Aggregate counts for the summary line / JSONL trailer."""
    active = [finding for finding in findings if finding.is_active]
    by_severity = {severity.value: 0 for severity in LintSeverity}
    by_rule: dict[str, int] = {}
    for finding in active:
        by_severity[finding.severity.value] += 1
        by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
    return {
        "type": "lint_summary",
        "total": len(findings),
        "active": len(active),
        "suppressed": sum(1 for f in findings if f.suppressed),
        "baselined": sum(1 for f in findings if f.baselined),
        "by_severity": by_severity,
        "by_rule": dict(sorted(by_rule.items())),
    }


def fails(findings: list[Finding]) -> bool:
    """Whether the active findings should fail the run.

    INFO findings never fail; any active WARNING or ERROR does — the
    CI gate is "no non-baselined findings", not "no catastrophes".
    """
    return any(
        finding.is_active
        and finding.severity is not LintSeverity.INFO
        for finding in findings
    )


def render_text(findings: list[Finding], stream: TextIO) -> None:
    """One line per finding plus a summary, pylint-style."""
    for finding in sorted(findings, key=Finding.sort_key):
        waiver = ""
        if finding.suppressed:
            waiver = " (suppressed)"
        elif finding.baselined:
            waiver = " (baselined)"
        location = (
            f"{finding.file}:{finding.line}"
            if finding.line
            else finding.file
        )
        stream.write(
            f"{location}: {finding.rule_id} "
            f"[{finding.severity.value}] {finding.message}{waiver}\n"
        )
    counts = summarize(findings)
    severities = counts["by_severity"]
    stream.write(
        f"{counts['active']} finding(s) "
        f"({severities['error']} error, {severities['warning']} warning, "
        f"{severities['info']} info), "
        f"{counts['suppressed']} suppressed, "
        f"{counts['baselined']} baselined\n"
    )


def render_jsonl(findings: list[Finding], stream: TextIO) -> None:
    """Self-describing JSONL: finding records, then one summary."""
    for finding in sorted(findings, key=Finding.sort_key):
        stream.write(
            json.dumps(finding.to_dict(), sort_keys=True) + "\n"
        )
    stream.write(
        json.dumps(summarize(findings), sort_keys=True) + "\n"
    )
