"""Statistics substrate: distributions, moments, sampling, EM.

Everything in this package is generic probability/statistics machinery;
the timing-model semantics live in :mod:`repro.models`.
"""

from repro.stats.empirical import EmpiricalDistribution, cdf_grid, ecdf
from repro.stats.em import (
    ComponentFamily,
    EMConfig,
    EMResult,
    fit_mixture_em,
    fit_mixture_em_batch,
)
from repro.stats.extended_skew_normal import ExtendedSkewNormal
from repro.stats.kmeans import (
    KMeansResult,
    kmeans_1d,
    kmeans_1d_batch,
    kmeans_nd,
)
from repro.stats.lhs import discrepancy, latin_hypercube, lhs_normal, lhs_transform
from repro.stats.mixtures import Mixture, mixture_moments
from repro.stats.moments import (
    MomentSummary,
    sample_moments,
    sample_moments_batch,
    weighted_moments,
    weighted_moments_batch,
)
from repro.stats.skew_normal import (
    MAX_SKEWNESS,
    SkewNormal,
    clamp_skewness,
    moments_to_params,
    params_to_moments,
)

__all__ = [
    "MAX_SKEWNESS",
    "ComponentFamily",
    "EMConfig",
    "EMResult",
    "EmpiricalDistribution",
    "ExtendedSkewNormal",
    "KMeansResult",
    "Mixture",
    "MomentSummary",
    "SkewNormal",
    "cdf_grid",
    "clamp_skewness",
    "discrepancy",
    "ecdf",
    "fit_mixture_em",
    "fit_mixture_em_batch",
    "kmeans_1d",
    "kmeans_1d_batch",
    "kmeans_nd",
    "latin_hypercube",
    "lhs_normal",
    "lhs_transform",
    "mixture_moments",
    "moments_to_params",
    "params_to_moments",
    "sample_moments",
    "sample_moments_batch",
    "weighted_moments",
    "weighted_moments_batch",
]
