"""Empirical-distribution utilities.

The paper's "golden" reference for every metric is the raw SPICE
Monte-Carlo sample set.  :class:`EmpiricalDistribution` wraps such a
sample set with the same query surface the parametric models expose
(cdf / ppf / moments / bin probabilities), so golden and model values
are computed through one code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import ParameterError
from repro.stats.moments import MomentSummary, sample_moments, validate_samples

__all__ = ["EmpiricalDistribution", "ecdf", "cdf_grid"]


def _validate_query(x: np.ndarray) -> np.ndarray:
    """Coerce CDF query points to float, rejecting NaN.

    ``+/-inf`` queries are legitimate limits (they clamp to 1 and 0)
    but a NaN query has no ordering against the samples —
    ``searchsorted`` would silently place it past the maximum and
    report ``F = 1``, turning a data bug into fake full yield.
    """
    array = np.asarray(x, dtype=float)
    if np.any(np.isnan(array)):
        raise ParameterError("CDF query points must not be NaN")
    return array


def ecdf(samples: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Empirical CDF of ``samples`` evaluated at points ``x``.

    Uses the right-continuous convention ``F(x) = #{s <= x} / n``.

    Far-tail convention: strictly below the sample minimum the value
    clamps to exactly ``0`` and at/above the maximum to exactly ``1``
    — never NaN.  The smallest resolvable tail probability is
    ``1 / n``; probing beyond that resolution needs the
    variance-reduced engines in :mod:`repro.yield_est`.

    Raises:
        FittingError: If ``samples`` is empty or contains non-finite
            values (an empty sample set has no CDF — the old behaviour
            was a silent NaN from ``0 / 0``).
        ParameterError: If ``x`` contains NaN (``+/-inf`` is allowed
            and clamps to 0/1).
    """
    sorted_samples = np.sort(validate_samples(samples, minimum=1))
    positions = np.searchsorted(sorted_samples, _validate_query(x), "right")
    return positions / sorted_samples.size


def cdf_grid(
    samples: np.ndarray, n_points: int = 256, spread: float = 4.0
) -> np.ndarray:
    """Evaluation grid spanning ``mean +/- spread * std`` of ``samples``.

    This is the grid on which CDF RMSE (the Fig. 4 indicator) is scored.
    """
    array = validate_samples(samples)
    mean = float(array.mean())
    std = float(array.std())
    if std == 0.0:
        raise ParameterError("cannot build a grid for constant samples")
    return np.linspace(mean - spread * std, mean + spread * std, n_points)


@dataclass(frozen=True)
class EmpiricalDistribution:
    """A golden Monte-Carlo sample set with a distribution interface."""

    samples: np.ndarray

    def __post_init__(self) -> None:
        array = validate_samples(self.samples)
        object.__setattr__(self, "samples", array)

    @cached_property
    def _sorted(self) -> np.ndarray:
        return np.sort(self.samples)

    @property
    def size(self) -> int:
        return int(self.samples.size)

    @property
    def tail_resolution(self) -> float:
        """Smallest tail probability the sample set can resolve, ``1/n``.

        Below this, :meth:`sf` reads exactly 0 — a resolution floor,
        not evidence of zero failures.  Far-tail queries should go
        through :mod:`repro.yield_est` instead.
        """
        return 1.0 / self.size

    def cdf(self, x: np.ndarray) -> np.ndarray:
        """Right-continuous empirical CDF (see :func:`ecdf` for the
        far-tail clamp convention; NaN queries raise)."""
        positions = np.searchsorted(
            self._sorted, _validate_query(x), side="right"
        )
        return positions / self._sorted.size

    def sf(self, x: np.ndarray) -> np.ndarray:
        """Survival function ``1 - cdf``; clamps to exactly 0 at and
        past the sample maximum (resolution :attr:`tail_resolution`)."""
        return 1.0 - self.cdf(x)

    def ppf(self, q: np.ndarray) -> np.ndarray:
        """Empirical quantiles (linear interpolation between order stats)."""
        quantiles = np.asarray(q, dtype=float)
        if np.any((quantiles < 0.0) | (quantiles > 1.0)):
            raise ParameterError("quantiles must lie in [0, 1]")
        return np.quantile(self._sorted, quantiles)

    def moments(self) -> MomentSummary:
        return sample_moments(self.samples)

    def rvs(
        self, size: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Bootstrap resample."""
        generator = (
            rng
            if isinstance(rng, np.random.Generator)
            else np.random.default_rng(rng)
        )
        return generator.choice(self.samples, size=size, replace=True)

    def histogram(
        self, n_bins: int = 100
    ) -> tuple[np.ndarray, np.ndarray]:
        """Density histogram ``(bin_centers, density)`` for plotting."""
        density, edges = np.histogram(
            self.samples, bins=n_bins, density=True
        )
        centers = 0.5 * (edges[:-1] + edges[1:])
        return centers, density

    def grid(self, n_points: int = 256, spread: float = 4.0) -> np.ndarray:
        return cdf_grid(self.samples, n_points=n_points, spread=spread)

    def probability_between(self, lower: float, upper: float) -> float:
        """``P(lower < X <= upper)`` under the empirical law."""
        if upper < lower:
            raise ParameterError(
                f"upper bound {upper} below lower bound {lower}"
            )
        return float(self.cdf(upper) - self.cdf(lower))
