"""The skew-normal (SN) distribution and the LVF moment bijection.

LVF (paper §2.2) stores three moment LUTs — mean shift, standard
deviation and skewness — and interprets them as the unique skew-normal
distribution with those moments.  This module implements the SN law

    f(x | xi, omega, alpha)
        = (2 / omega) * phi((x - xi) / omega) * Phi(alpha (x - xi) / omega)

(Eq. 3) together with the bijection ``g`` between the moment vector
``theta = (mu, sigma, gamma)`` and the direct-parameter vector
``Theta = (xi, omega, alpha)`` (Eq. 2, after Azzalini [11]).

The SN family can only express skewness in the open interval
(-MAX_SKEWNESS, MAX_SKEWNESS) with ``MAX_SKEWNESS ~= 0.9953``; the
bijection clamps requested skewness to that range, exactly as an LVF
characterisation tool must.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq
from scipy.special import ndtr, ndtri, owens_t

from repro.errors import ParameterError
from repro.stats.moments import MomentSummary

__all__ = [
    "MAX_SKEWNESS",
    "SkewNormal",
    "delta_from_alpha",
    "alpha_from_delta",
    "moments_to_params",
    "params_to_moments",
    "clamp_skewness",
]

_B = math.sqrt(2.0 / math.pi)
#: Supremum of |skewness| attainable by a skew-normal distribution:
#: the limit alpha -> +inf of the SN skewness formula.
MAX_SKEWNESS = (
    0.5 * (4.0 - math.pi) * (_B**3) / (1.0 - 2.0 / math.pi) ** 1.5
)
#: Default safety margin used when clamping sample skewness into the
#: attainable range; keeps ``alpha`` finite and well-conditioned.
DEFAULT_SKEW_MARGIN = 1e-4

#: ``(0.5 * (4 - pi)) ** (2/3)``, the constant denominator term of the
#: moments->params inversion — hoisted because the EM M-step runs the
#: inversion once per component update.
_HALF_GAP = (0.5 * (4.0 - math.pi)) ** (2.0 / 3.0)


def delta_from_alpha(alpha: float) -> float:
    """Return ``delta = alpha / sqrt(1 + alpha^2)``."""
    return alpha / math.sqrt(1.0 + alpha * alpha)


def alpha_from_delta(delta: float) -> float:
    """Inverse of :func:`delta_from_alpha`; requires ``|delta| < 1``."""
    if not -1.0 < delta < 1.0:
        raise ParameterError(f"delta must lie in (-1, 1), got {delta}")
    return delta / math.sqrt(1.0 - delta * delta)


def clamp_skewness(
    gamma: float, margin: float = DEFAULT_SKEW_MARGIN
) -> float:
    """Clamp ``gamma`` into the attainable SN skewness range.

    Args:
        gamma: Requested skewness (e.g. a sample skewness, which can
            exceed the SN bound for heavy-tailed data).
        margin: Distance kept from the theoretical supremum so the
            resulting ``alpha`` stays finite.

    Returns:
        The clamped skewness.
    """
    # Scalar clip in plain Python: ``np.clip`` on a 0-d input costs a
    # full ufunc dispatch, and this runs once per EM component update.
    # Branch order matches ``minimum(maximum(g, -b), b)`` exactly,
    # including NaN (both comparisons false -> NaN passes through).
    bound = MAX_SKEWNESS - margin
    if gamma > bound:
        return float(bound)
    if gamma < -bound:
        return float(-bound)
    return float(gamma)


def moments_to_params(
    mean: float,
    std: float,
    skew: float,
    *,
    margin: float = DEFAULT_SKEW_MARGIN,
) -> tuple[float, float, float]:
    """The bijection ``g``: moments ``(mu, sigma, gamma) -> (xi, omega, alpha)``.

    Inverts the classic SN moment formulas:

        mu    = xi + omega * delta * b          (b = sqrt(2/pi))
        sigma = omega * sqrt(1 - b^2 delta^2)
        gamma = (4 - pi)/2 * (delta b)^3 / (1 - b^2 delta^2)^{3/2}

    Args:
        mean: Target mean.
        std: Target standard deviation, must be positive.
        skew: Target skewness; clamped into the attainable range.
        margin: Clamping margin, see :func:`clamp_skewness`.

    Returns:
        ``(xi, omega, alpha)``: location, scale, shape.

    Raises:
        ParameterError: If ``std`` is not positive and finite.
    """
    if not (std > 0.0 and math.isfinite(std)):
        raise ParameterError(f"std must be positive and finite, got {std}")
    gamma = clamp_skewness(skew, margin)
    magnitude = abs(gamma)
    if magnitude < 1e-14:
        return (float(mean), float(std), 0.0)
    ratio = magnitude ** (2.0 / 3.0)
    abs_delta = math.sqrt(
        (math.pi / 2.0) * ratio / (ratio + _HALF_GAP)
    )
    delta = math.copysign(min(abs_delta, 1.0 - 1e-12), gamma)
    alpha = alpha_from_delta(delta)
    omega = std / math.sqrt(1.0 - (_B * delta) ** 2)
    xi = mean - omega * delta * _B
    return (float(xi), float(omega), float(alpha))


def params_to_moments(
    xi: float, omega: float, alpha: float
) -> tuple[float, float, float]:
    """Inverse bijection: ``(xi, omega, alpha) -> (mu, sigma, gamma)``."""
    if not (omega > 0.0 and math.isfinite(omega)):
        raise ParameterError(
            f"omega must be positive and finite, got {omega}"
        )
    delta = delta_from_alpha(alpha)
    mean = xi + omega * delta * _B
    variance = omega * omega * (1.0 - (_B * delta) ** 2)
    std = math.sqrt(variance)
    centered = delta * _B
    gamma = (
        0.5
        * (4.0 - math.pi)
        * centered**3
        / (1.0 - centered**2) ** 1.5
    )
    return (float(mean), float(std), float(gamma))


@dataclass(frozen=True)
class SkewNormal:
    """A skew-normal distribution in direct parameterisation.

    Attributes:
        xi: Location parameter.
        omega: Scale parameter (positive).
        alpha: Shape parameter; 0 recovers the Gaussian.
    """

    xi: float
    omega: float
    alpha: float

    def __post_init__(self) -> None:
        if not (self.omega > 0.0 and math.isfinite(self.omega)):
            raise ParameterError(
                f"omega must be positive and finite, got {self.omega}"
            )
        if not (math.isfinite(self.xi) and math.isfinite(self.alpha)):
            raise ParameterError("xi and alpha must be finite")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_moments(
        cls, mean: float, std: float, skew: float = 0.0
    ) -> "SkewNormal":
        """Build the SN with the given moments (the LVF interpretation)."""
        xi, omega, alpha = moments_to_params(mean, std, skew)
        return cls(xi, omega, alpha)

    @classmethod
    def standard(cls, alpha: float = 0.0) -> "SkewNormal":
        """Unit-location/scale SN with the given shape."""
        return cls(0.0, 1.0, alpha)

    # ------------------------------------------------------------------
    # Density / distribution functions
    # ------------------------------------------------------------------
    def _z(self, x: np.ndarray) -> np.ndarray:
        return (np.asarray(x, dtype=float) - self.xi) / self.omega

    def pdf(self, x: np.ndarray) -> np.ndarray:
        """Probability density (Eq. 3)."""
        z = self._z(x)
        base = np.exp(-0.5 * z * z) / math.sqrt(2.0 * math.pi)
        return 2.0 / self.omega * base * ndtr(self.alpha * z)

    def logpdf(self, x: np.ndarray) -> np.ndarray:
        """Log-density, numerically stable in the far tail."""
        z = self._z(x)
        log_phi = -0.5 * z * z - 0.5 * math.log(2.0 * math.pi)
        # log Phi via scipy's log_ndtr for tail stability.
        from scipy.special import log_ndtr

        return (
            math.log(2.0 / self.omega) + log_phi + log_ndtr(self.alpha * z)
        )

    def cdf(self, x: np.ndarray) -> np.ndarray:
        """CDF via Owen's T: ``Phi(z) - 2 T(z, alpha)``."""
        z = self._z(x)
        values = ndtr(z) - 2.0 * owens_t(z, self.alpha)
        return np.clip(values, 0.0, 1.0)

    def sf(self, x: np.ndarray) -> np.ndarray:
        """Survival function ``1 - cdf``."""
        return 1.0 - self.cdf(x)

    def ppf(self, q: np.ndarray) -> np.ndarray:
        """Quantile function by bracketed root-finding on the CDF."""
        quantiles = np.asarray(q, dtype=float)
        scalar = quantiles.ndim == 0
        flat = np.atleast_1d(quantiles).astype(float)
        if np.any((flat < 0.0) | (flat > 1.0)):
            raise ParameterError("quantiles must lie in [0, 1]")
        out = np.empty_like(flat)
        mean, std, _ = self.moments_tuple()
        lo_0 = mean - 12.0 * std
        hi_0 = mean + 12.0 * std
        for index, prob in enumerate(flat):
            if prob <= 0.0:
                out[index] = -math.inf
                continue
            if prob >= 1.0:
                out[index] = math.inf
                continue
            lo, hi = lo_0, hi_0
            while self.cdf(lo) > prob:
                lo -= 8.0 * std
            while self.cdf(hi) < prob:
                hi += 8.0 * std
            out[index] = brentq(
                lambda value: float(self.cdf(value)) - prob, lo, hi,
                xtol=1e-12 * max(1.0, abs(mean)) + 1e-15,
            )
        return out[0] if scalar else out.reshape(quantiles.shape)

    # ------------------------------------------------------------------
    # Sampling and moments
    # ------------------------------------------------------------------
    def rvs(
        self,
        size: int,
        rng: np.random.Generator | int | None = None,
    ) -> np.ndarray:
        """Draw samples using the two-normal representation.

        If ``(U0, U1)`` are iid standard normal and
        ``delta = alpha / sqrt(1 + alpha^2)``, then
        ``Z = delta |U0| + sqrt(1 - delta^2) U1`` is standard SN(alpha).
        """
        generator = (
            rng
            if isinstance(rng, np.random.Generator)
            else np.random.default_rng(rng)
        )
        delta = delta_from_alpha(self.alpha)
        u0 = generator.standard_normal(size)
        u1 = generator.standard_normal(size)
        z = delta * np.abs(u0) + math.sqrt(1.0 - delta * delta) * u1
        return self.xi + self.omega * z

    def moments_tuple(self) -> tuple[float, float, float]:
        """Return ``(mean, std, skewness)``."""
        return params_to_moments(self.xi, self.omega, self.alpha)

    def moments(self) -> MomentSummary:
        """Full four-moment summary (analytic, including kurtosis)."""
        mean, std, gamma = self.moments_tuple()
        delta = delta_from_alpha(self.alpha)
        centered = _B * delta
        kurt = (
            2.0
            * (math.pi - 3.0)
            * centered**4
            / (1.0 - centered**2) ** 2
        )
        return MomentSummary(mean, std, gamma, kurt, count=0)

    @property
    def mean(self) -> float:
        return self.moments_tuple()[0]

    @property
    def std(self) -> float:
        return self.moments_tuple()[1]

    @property
    def skewness(self) -> float:
        return self.moments_tuple()[2]

    def median(self) -> float:
        """Median (the 0.5 quantile)."""
        return float(self.ppf(0.5))

    def support_grid(self, n_points: int = 512, spread: float = 6.0) -> np.ndarray:
        """Evenly spaced grid covering ``mean +/- spread * std``."""
        mean, std, _ = self.moments_tuple()
        return np.linspace(mean - spread * std, mean + spread * std, n_points)

    def shift(self, offset: float) -> "SkewNormal":
        """Return the distribution of ``X + offset``."""
        return SkewNormal(self.xi + offset, self.omega, self.alpha)

    def scale(self, factor: float) -> "SkewNormal":
        """Return the distribution of ``factor * X`` for ``factor > 0``."""
        if factor <= 0.0:
            raise ParameterError("scale factor must be positive")
        return SkewNormal(self.xi * factor, self.omega * factor, self.alpha)


def _gaussian_quantile(q: np.ndarray) -> np.ndarray:
    """Standard-normal quantile (exported for internal reuse)."""
    return ndtri(np.asarray(q, dtype=float))
