"""Sample-moment utilities.

The LVF family of timing models is defined in terms of the first four
standardised moments: mean, standard deviation, skewness and (excess)
kurtosis.  This module computes them for plain and weighted samples and
provides a small container, :class:`MomentSummary`, used throughout the
model-fitting code.

Skewness follows the Fisher-Pearson definition ``E[(x-mu)^3] / sigma^3``
and kurtosis is the *excess* kurtosis ``E[(x-mu)^4] / sigma^4 - 3`` so a
Gaussian scores 0 on both, matching the conventions of the LVF standard
and of the LESN literature the paper compares against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FittingError
from repro.runtime import telemetry

__all__ = [
    "MomentSummary",
    "central_moment",
    "excess_kurtosis",
    "sample_moments",
    "skewness",
    "standard_error_of_mean",
    "validate_samples",
    "weighted_moments",
]


@dataclass(frozen=True)
class MomentSummary:
    """First four standardised moments of a sample or distribution.

    Attributes:
        mean: First raw moment.
        std: Standard deviation (positive).
        skewness: Fisher-Pearson skewness; 0 for symmetric laws.
        kurtosis: *Excess* kurtosis; 0 for a Gaussian.
        count: Number of samples summarised (0 for analytic moments).
    """

    mean: float
    std: float
    skewness: float
    kurtosis: float
    count: int = 0

    @property
    def variance(self) -> float:
        """Second central moment."""
        return self.std * self.std

    def standardize(self, x: np.ndarray) -> np.ndarray:
        """Map ``x`` to zero-mean unit-variance coordinates."""
        return (np.asarray(x, dtype=float) - self.mean) / self.std

    def sigma_point(self, k: float) -> float:
        """Return ``mean + k * std`` (e.g. ``k=3`` for the 3-sigma point)."""
        return self.mean + k * self.std

    def as_tuple(self) -> tuple[float, float, float, float]:
        """Return ``(mean, std, skewness, kurtosis)``."""
        return (self.mean, self.std, self.skewness, self.kurtosis)


def validate_samples(samples: np.ndarray, minimum: int = 2) -> np.ndarray:
    """Coerce ``samples`` to a finite 1-D float array.

    Args:
        samples: Array-like of observations.
        minimum: Minimum acceptable number of samples.

    Returns:
        A contiguous 1-D ``float64`` array.

    Raises:
        FittingError: If the input is empty, too short, or contains
            non-finite values.
    """
    array = np.asarray(samples, dtype=float).ravel()
    if array.size < minimum:
        raise FittingError(
            f"need at least {minimum} samples, got {array.size}"
        )
    if not np.all(np.isfinite(array)):
        bad = int(np.count_nonzero(~np.isfinite(array)))
        raise FittingError(f"samples contain {bad} non-finite values")
    return np.ascontiguousarray(array)


def central_moment(samples: np.ndarray, order: int) -> float:
    """Return the ``order``-th central moment of ``samples``."""
    array = np.asarray(samples, dtype=float)
    if order < 1:
        raise ValueError(f"moment order must be >= 1, got {order}")
    if order == 1:
        return 0.0
    deviations = array - array.mean()
    return float(np.mean(deviations**order))


def skewness(samples: np.ndarray) -> float:
    """Fisher-Pearson skewness of ``samples`` (0 for symmetric data)."""
    array = validate_samples(samples)
    std = array.std()
    if std == 0.0:
        return 0.0
    return central_moment(array, 3) / std**3


def excess_kurtosis(samples: np.ndarray) -> float:
    """Excess kurtosis of ``samples`` (0 for Gaussian data)."""
    array = validate_samples(samples)
    std = array.std()
    if std == 0.0:
        return 0.0
    return central_moment(array, 4) / std**4 - 3.0


def sample_moments(samples: np.ndarray) -> MomentSummary:
    """Compute the first four standardised moments of ``samples``.

    Raises:
        FittingError: If the sample is degenerate (zero variance) —
            a constant "distribution" cannot parameterise any of the
            timing models.
    """
    with telemetry.span("moments.sample", n=int(np.size(samples))):
        array = validate_samples(samples)
        mean = float(array.mean())
        std = float(array.std())
        if std == 0.0:
            raise FittingError("samples have zero variance")
        deviations = (array - mean) / std
        skew = float(np.mean(deviations**3))
        kurt = float(np.mean(deviations**4) - 3.0)
    return MomentSummary(mean, std, skew, kurt, count=array.size)


def weighted_moments(samples: np.ndarray, weights: np.ndarray) -> MomentSummary:
    """Compute weighted moments, as used in the EM M-step.

    Args:
        samples: 1-D observations.
        weights: Non-negative responsibilities, same shape as ``samples``.
            They need not be normalised.

    Returns:
        Moments of the weighted empirical distribution.

    Raises:
        FittingError: If total weight is not positive, shapes mismatch,
            or the weighted variance vanishes.
    """
    array = np.asarray(samples, dtype=float).ravel()
    weight = np.asarray(weights, dtype=float).ravel()
    if array.shape != weight.shape:
        raise FittingError(
            f"samples/weights shape mismatch: {array.shape} vs {weight.shape}"
        )
    if np.any(weight < 0.0):
        raise FittingError("weights must be non-negative")
    total = weight.sum()
    if not np.isfinite(total) or total <= 0.0:
        raise FittingError("total weight must be positive and finite")
    probability = weight / total
    mean = float(np.dot(probability, array))
    deviations = array - mean
    squared = deviations * deviations
    variance = float(np.dot(probability, squared))
    if variance <= 0.0:
        raise FittingError("weighted variance is zero")
    std = variance**0.5
    cubed = squared * deviations
    skew = float(np.dot(probability, cubed)) / std**3
    kurt = float(np.dot(probability, cubed * deviations)) / std**4 - 3.0
    # Effective sample size a la Kish; informative for diagnostics.
    effective = int(round(total**2 / float(np.dot(weight, weight))))
    return MomentSummary(mean, std, skew, kurt, count=effective)


def standard_error_of_mean(samples: np.ndarray) -> float:
    """Standard error of the sample mean."""
    array = validate_samples(samples)
    return float(array.std(ddof=1) / np.sqrt(array.size))
