"""Sample-moment utilities.

The LVF family of timing models is defined in terms of the first four
standardised moments: mean, standard deviation, skewness and (excess)
kurtosis.  This module computes them for plain and weighted samples and
provides a small container, :class:`MomentSummary`, used throughout the
model-fitting code.

Skewness follows the Fisher-Pearson definition ``E[(x-mu)^3] / sigma^3``
and kurtosis is the *excess* kurtosis ``E[(x-mu)^4] / sigma^4 - 3`` so a
Gaussian scores 0 on both, matching the conventions of the LVF standard
and of the LESN literature the paper compares against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FittingError
from repro.runtime import telemetry

__all__ = [
    "MomentSummary",
    "central_moment",
    "excess_kurtosis",
    "sample_moments",
    "sample_moments_batch",
    "skewness",
    "standard_error_of_mean",
    "validate_samples",
    "validate_samples_batch",
    "weighted_moments",
    "weighted_moments_batch",
]


@dataclass(frozen=True)
class MomentSummary:
    """First four standardised moments of a sample or distribution.

    Attributes:
        mean: First raw moment.
        std: Standard deviation (positive).
        skewness: Fisher-Pearson skewness; 0 for symmetric laws.
        kurtosis: *Excess* kurtosis; 0 for a Gaussian.
        count: Number of samples summarised (0 for analytic moments).
    """

    mean: float
    std: float
    skewness: float
    kurtosis: float
    count: int = 0

    @property
    def variance(self) -> float:
        """Second central moment."""
        return self.std * self.std

    def standardize(self, x: np.ndarray) -> np.ndarray:
        """Map ``x`` to zero-mean unit-variance coordinates."""
        return (np.asarray(x, dtype=float) - self.mean) / self.std

    def sigma_point(self, k: float) -> float:
        """Return ``mean + k * std`` (e.g. ``k=3`` for the 3-sigma point)."""
        return self.mean + k * self.std

    def as_tuple(self) -> tuple[float, float, float, float]:
        """Return ``(mean, std, skewness, kurtosis)``."""
        return (self.mean, self.std, self.skewness, self.kurtosis)


def validate_samples(samples: np.ndarray, minimum: int = 2) -> np.ndarray:
    """Coerce ``samples`` to a finite 1-D float array.

    Args:
        samples: Array-like of observations.
        minimum: Minimum acceptable number of samples.

    Returns:
        A contiguous 1-D ``float64`` array.

    Raises:
        FittingError: If the input is empty, too short, or contains
            non-finite values.
    """
    array = np.asarray(samples, dtype=float).ravel()
    if array.size < minimum:
        raise FittingError(
            f"need at least {minimum} samples, got {array.size}"
        )
    if not np.all(np.isfinite(array)):
        bad = int(np.count_nonzero(~np.isfinite(array)))
        raise FittingError(f"samples contain {bad} non-finite values")
    return np.ascontiguousarray(array)


def validate_samples_batch(
    samples: np.ndarray, minimum: int = 2
) -> np.ndarray:
    """Coerce a stacked ``(n_points, n_samples)`` batch to finite floats.

    The batched counterpart of :func:`validate_samples`: every row must
    individually pass the serial checks, and the error raised for a bad
    row carries the exact message the serial validator would produce for
    that row, so a batched caller fails identically to a per-row loop.

    Args:
        samples: 2-D array-like, one row per grid point.
        minimum: Minimum acceptable number of samples per row.

    Returns:
        A C-contiguous 2-D ``float64`` array.  Row-contiguity is what
        makes per-row reductions (``axis=-1``) bit-identical to the
        serial 1-D reductions.

    Raises:
        FittingError: If the input is not 2-D, a row is too short, or a
            row contains non-finite values.
    """
    array = np.asarray(samples, dtype=float)
    if array.ndim != 2:
        raise FittingError(
            "batched samples must be a 2-D (n_points, n_samples) "
            f"array, got ndim={array.ndim}"
        )
    if array.shape[1] < minimum:
        raise FittingError(
            f"need at least {minimum} samples, got {array.shape[1]}"
        )
    finite = np.isfinite(array)
    if not np.all(finite):
        row = int(np.argmin(np.all(finite, axis=1)))
        bad = int(np.count_nonzero(~finite[row]))
        raise FittingError(f"samples contain {bad} non-finite values")
    return np.ascontiguousarray(array)


def central_moment(samples: np.ndarray, order: int) -> float:
    """Return the ``order``-th central moment of ``samples``."""
    array = np.asarray(samples, dtype=float)
    if order < 1:
        raise ValueError(f"moment order must be >= 1, got {order}")
    if order == 1:
        return 0.0
    deviations = array - array.mean()
    return float(np.mean(deviations**order))


def skewness(samples: np.ndarray) -> float:
    """Fisher-Pearson skewness of ``samples`` (0 for symmetric data)."""
    array = validate_samples(samples)
    std = array.std()
    if std == 0.0:
        return 0.0
    return central_moment(array, 3) / std**3


def excess_kurtosis(samples: np.ndarray) -> float:
    """Excess kurtosis of ``samples`` (0 for Gaussian data)."""
    array = validate_samples(samples)
    std = array.std()
    if std == 0.0:
        return 0.0
    return central_moment(array, 4) / std**4 - 3.0


def sample_moments(samples: np.ndarray) -> MomentSummary:
    """Compute the first four standardised moments of ``samples``.

    Raises:
        FittingError: If the sample is degenerate (zero variance) —
            a constant "distribution" cannot parameterise any of the
            timing models.
    """
    with telemetry.span("moments.sample", n=int(np.size(samples))):
        array = validate_samples(samples)
        mean = float(array.mean())
        std = float(array.std())
        if std == 0.0:
            raise FittingError("samples have zero variance")
        deviations = (array - mean) / std
        skew = float(np.mean(deviations**3))
        kurt = float(np.mean(deviations**4) - 3.0)
    return MomentSummary(mean, std, skew, kurt, count=array.size)


def weighted_moments(samples: np.ndarray, weights: np.ndarray) -> MomentSummary:
    """Compute weighted moments, as used in the EM M-step.

    Args:
        samples: 1-D observations.
        weights: Non-negative responsibilities, same shape as ``samples``.
            They need not be normalised.

    Returns:
        Moments of the weighted empirical distribution.

    Raises:
        FittingError: If total weight is not positive, shapes mismatch,
            or the weighted variance vanishes.
    """
    array = np.asarray(samples, dtype=float).ravel()
    weight = np.asarray(weights, dtype=float).ravel()
    if array.shape != weight.shape:
        raise FittingError(
            f"samples/weights shape mismatch: {array.shape} vs {weight.shape}"
        )
    if np.any(weight < 0.0):
        raise FittingError("weights must be non-negative")
    total = weight.sum()
    if not np.isfinite(total) or total <= 0.0:
        raise FittingError("total weight must be positive and finite")
    # Reductions are explicit elementwise-product + pairwise ``np.sum``
    # (not ``np.dot``): BLAS dot products use a different accumulation
    # order, and the batched kernel below must reproduce these sums
    # bit-for-bit with ``axis=1`` reductions.
    probability = weight / total
    mean = float(np.sum(probability * array))
    deviations = array - mean
    squared = deviations * deviations
    variance = float(np.sum(probability * squared))
    if variance <= 0.0:
        raise FittingError("weighted variance is zero")
    std = float(np.sqrt(variance))
    cubed = squared * deviations
    skew = float(np.sum(probability * cubed)) / std**3
    kurt = (
        float(np.sum(probability * (cubed * deviations))) / std**4 - 3.0
    )
    # Effective sample size a la Kish; informative for diagnostics.
    effective = int(round(total**2 / float(np.sum(weight * weight))))
    return MomentSummary(mean, std, skew, kurt, count=effective)


def sample_moments_batch(samples: np.ndarray) -> list[MomentSummary]:
    """Batched :func:`sample_moments` over a ``(n_points, n_samples)`` stack.

    Every reduction runs along the last axis of a C-contiguous stack,
    where numpy's pairwise summation visits each row in exactly the
    order the serial 1-D reduction does — the results are bit-identical
    to calling :func:`sample_moments` on each row, not approximately
    equal.

    Raises:
        FittingError: With the serial error message if any row is
            degenerate (zero variance) or fails validation; raised for
            the first offending row in row order, exactly where a
            serial loop would stop.
    """
    with telemetry.span(
        "moments.sample_batch",
        n_points=int(np.shape(samples)[0]) if np.ndim(samples) else 0,
        n=int(np.size(samples)),
    ):
        array = validate_samples_batch(samples)
        means = array.mean(axis=1)
        stds = array.std(axis=1)
        if np.any(stds == 0.0):
            raise FittingError("samples have zero variance")
        deviations = (array - means[:, None]) / stds[:, None]
        skews = np.mean(deviations**3, axis=1)
        kurts = np.mean(deviations**4, axis=1) - 3.0
    count = array.shape[1]
    return [
        MomentSummary(
            float(means[p]),
            float(stds[p]),
            float(skews[p]),
            float(kurts[p]),
            count=count,
        )
        for p in range(array.shape[0])
    ]


def weighted_moments_batch(
    samples: np.ndarray,
    weights: np.ndarray,
    *,
    errors: str = "raise",
    raw: bool = False,
) -> "list[MomentSummary | tuple | Exception]":
    """Batched :func:`weighted_moments` over stacked rows.

    The EM M-step calls this once per component with the whole grid's
    responsibilities stacked row-wise.  All sums run along ``axis=1``
    of C-contiguous stacks (bit-identical to the serial pairwise sums);
    the scalar finishing arithmetic per row (``/ std**3`` etc.) is
    plain Python, mirroring the serial expressions token for token.

    Args:
        samples: ``(n_points, n_samples)`` observations.
        weights: Non-negative responsibilities, same shape.
        errors: ``"raise"`` re-raises the first failing row's error in
            row order (serial-loop semantics); ``"capture"`` returns
            the exception in that row's slot instead, so the caller
            can eject just the bad rows.
        raw: Return plain ``(mean, std, skewness)`` tuples instead of
            :class:`MomentSummary` objects.  Every scalar (and every
            possible error, including the Kish effective-count
            arithmetic) is still computed identically — only the
            container allocation is skipped, for callers on the EM hot
            path that read just the moment triple.

    Returns:
        One :class:`MomentSummary` (or raw triple) per row, with
        captured errors interleaved when ``errors="capture"``.
    """
    if errors not in ("raise", "capture"):
        raise ValueError(f"unknown errors mode: {errors!r}")
    array = np.asarray(samples, dtype=float)
    weight = np.asarray(weights, dtype=float)
    if array.ndim != 2 or weight.ndim != 2:
        raise FittingError(
            "batched samples/weights must be 2-D (n_points, n_samples) "
            f"arrays, got ndim={array.ndim} vs ndim={weight.ndim}"
        )
    if array.shape != weight.shape:
        raise FittingError(
            f"samples/weights shape mismatch: {array.shape} vs "
            f"{weight.shape}"
        )
    array = np.ascontiguousarray(array)
    weight = np.ascontiguousarray(weight)
    negative = np.any(weight < 0.0, axis=1)
    totals = weight.sum(axis=1)
    bad_total = ~np.isfinite(totals) | (totals <= 0.0)
    # Rows with a bad total divide by zero/inf below; their lanes are
    # discarded per-row, and lanes are independent, so suppress the
    # warnings rather than branch per row.
    with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
        probability = weight / totals[:, None]
        means = np.sum(probability * array, axis=1)
        deviations = array - means[:, None]
        squared = deviations * deviations
        variances = np.sum(probability * squared, axis=1)
        cubed = squared * deviations
        sums3 = np.sum(probability * cubed, axis=1)
        sums4 = np.sum(probability * (cubed * deviations), axis=1)
        sumw2 = np.sum(weight * weight, axis=1)
        stds = np.sqrt(variances)
    results: list[MomentSummary | Exception] = []
    # ``tolist`` converts every lane to a Python float in one C pass —
    # exactly ``float(x[p])`` per element, hoisted out of the hot loop.
    # ``totals`` stays an array: the serial Kish formula squares the
    # ``np.float64`` total, and that operation must stay identical.
    negative_l = negative.tolist()
    bad_total_l = bad_total.tolist()
    variances_l = variances.tolist()
    means_l = means.tolist()
    stds_l = stds.tolist()
    sums3_l = sums3.tolist()
    sums4_l = sums4.tolist()
    sumw2_l = sumw2.tolist()
    for p in range(array.shape[0]):
        error: FittingError | None = None
        if negative_l[p]:
            error = FittingError("weights must be non-negative")
        elif bad_total_l[p]:
            error = FittingError(
                "total weight must be positive and finite"
            )
        elif variances_l[p] <= 0.0:
            error = FittingError("weighted variance is zero")
        if error is not None:
            if errors == "raise":
                raise error
            results.append(error)
            continue
        try:
            # The finishing arithmetic can itself raise — e.g.
            # ``ZeroDivisionError`` when a positive variance is small
            # enough that ``std**3`` underflows to zero — exactly as
            # the serial expressions would for that row.
            std = stds_l[p]
            skew = sums3_l[p] / std**3
            kurt = sums4_l[p] / std**4 - 3.0
            effective = int(round(totals[p] ** 2 / sumw2_l[p]))
        except Exception as finishing_error:  # noqa: BLE001 — serial parity
            if errors == "raise":
                raise
            results.append(finishing_error)
            continue
        if raw:
            results.append((means_l[p], std, skew))
        else:
            results.append(
                MomentSummary(
                    means_l[p], std, skew, kurt, count=effective
                )
            )
    return results


def standard_error_of_mean(samples: np.ndarray) -> float:
    """Standard error of the sample mean."""
    array = validate_samples(samples)
    return float(array.std(ddof=1) / np.sqrt(array.size))
