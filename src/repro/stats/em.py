"""Generic expectation-maximisation driver for finite mixtures.

Implements the fitting loop of paper §3.2: latent responsibilities
(Eq. 6) in the E-step, component re-estimation in the M-step (Eqs. 8-9),
initialised by k-means partitioning plus per-group method-of-moments
estimates.  The driver is component-family agnostic: the same loop fits
LVF2 (skew-normal components) and Norm2 (Gaussian components), the two
mixture models compared in the paper.

The M-step is pluggable.  The default family implementations use
weighted method-of-moments updates — a conditional-maximisation step
that is fast, closed-form and stable; an optional weighted-MLE
refinement (true M-step) is available on the model classes.  Both keep
the observed-data log-likelihood (Eq. 5) non-decreasing in practice,
which the test suite checks property-style.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ConvergenceWarningError, FittingError
from repro.runtime import telemetry
from repro.stats.kmeans import (
    KMeansResult,
    kmeans_1d,
    kmeans_1d_batch,
    split_by_labels,
)
from repro.stats.mixtures import Mixture
from repro.stats.moments import validate_samples

__all__ = [
    "ComponentFamily",
    "EMConfig",
    "EMResult",
    "concentric_initial",
    "fit_mixture_em",
    "fit_mixture_em_batch",
    "fit_mixture_em_multi",
]


@dataclass(frozen=True)
class ComponentFamily:
    """A parametric family usable as mixture components.

    Attributes:
        name: Family name for diagnostics ("skew-normal", "normal").
        fit: Unweighted fit used on the initial k-means groups.
        fit_weighted: Weighted fit used in the M-step; receives all
            samples plus that component's responsibilities.
        logpdf_batch: Optional vectorized density — receives one
            component per stacked row plus the ``(n_points, n_samples)``
            data stack and returns per-row log densities bit-identical
            to calling each component's ``logpdf`` on its row.  When
            absent, :func:`fit_mixture_em_batch` falls back to the
            serial loop per row.
        fit_weighted_batch: Optional vectorized M-step — receives the
            data stack plus per-row responsibilities and returns one
            fitted component (or the captured exception) per row.
            The components it returns may be lightweight stand-ins
            (carrying just what ``logpdf_batch`` reads) as long as
            ``realize`` can turn each one into the exact model the
            serial ``fit_weighted`` would have produced.
        realize: Optional finisher for ``fit_weighted_batch``
            stand-ins — called on every component of a converged
            mixture before it is returned.  ``None`` means the batch
            M-step already returns real components.
    """

    name: str
    fit: Callable[[np.ndarray], Any]
    fit_weighted: Callable[[np.ndarray, np.ndarray], Any]
    logpdf_batch: (
        Callable[[Sequence[Any], np.ndarray], np.ndarray] | None
    ) = None
    fit_weighted_batch: (
        Callable[[np.ndarray, np.ndarray], list[Any]] | None
    ) = None
    realize: Callable[[Any], Any] | None = None


@dataclass(frozen=True)
class EMConfig:
    """Tuning knobs for :func:`fit_mixture_em`.

    Attributes:
        max_iter: Iteration cap for the E/M loop.
        tol: Relative log-likelihood improvement below which the loop
            is declared converged.
        min_weight: A component whose weight falls below this value is
            considered collapsed; the fit degrades gracefully to fewer
            components rather than chasing a degenerate optimum.
        kmeans_restarts: Restarts for the k-means initialiser.
        seed: Seed forwarded to k-means seeding.
        require_convergence: Raise instead of returning a best-effort
            result when the loop hits ``max_iter``.
    """

    max_iter: int = 200
    tol: float = 1e-8
    min_weight: float = 1e-4
    kmeans_restarts: int = 4
    seed: int | None = 0
    require_convergence: bool = False


@dataclass(frozen=True)
class EMResult:
    """Outcome of an EM fit.

    Attributes:
        mixture: Fitted mixture, components sorted by mean.
        loglik: Final observed-data log-likelihood (Eq. 5).
        n_iter: E/M iterations performed.
        converged: Whether the tolerance criterion was met.
        collapsed: True when a component degenerated and the result has
            fewer effective components than requested.
        history: Log-likelihood trace, one entry per iteration.
    """

    mixture: Mixture
    loglik: float
    n_iter: int
    converged: bool
    collapsed: bool = False
    history: tuple[float, ...] = field(default_factory=tuple)


def _initial_mixture(
    samples: np.ndarray,
    family: ComponentFamily,
    n_components: int,
    config: EMConfig,
) -> Mixture:
    """K-means + per-group method-of-moments initialisation (§3.2)."""
    with telemetry.span("kmeans.seed", n=int(samples.size)):
        result = kmeans_1d(
            samples,
            n_components,
            n_restarts=config.kmeans_restarts,
            seed=config.seed,
        )
    return _initial_from_kmeans(samples, family, result)


def _initial_from_kmeans(
    samples: np.ndarray,
    family: ComponentFamily,
    result: KMeansResult,
) -> Mixture:
    """Per-group method-of-moments estimates from a k-means split."""
    groups = split_by_labels(samples, result.labels)
    weights: list[float] = []
    components: list[Any] = []
    for group in groups:
        if group.size < 8 or np.unique(group).size < 2:
            continue
        try:
            components.append(family.fit(group))
        except FittingError:
            continue
        weights.append(group.size / samples.size)
    total = sum(weights)
    if not components or total <= 0.0:
        raise FittingError(
            f"could not initialise any {family.name} component"
        )
    return Mixture(
        tuple(weight / total for weight in weights), tuple(components)
    )


def _collapse(
    samples: np.ndarray, family: ComponentFamily
) -> Mixture:
    """Single-component fallback when the mixture degenerates."""
    return Mixture((1.0,), (family.fit(samples),))


def fit_mixture_em(
    samples: np.ndarray,
    family: ComponentFamily,
    n_components: int = 2,
    *,
    config: EMConfig | None = None,
    initial: Mixture | Sequence[Any] | None = None,
) -> EMResult:
    """Fit an ``n_components`` mixture of ``family`` by EM.

    Args:
        samples: 1-D observations (the 50k-sample MC population in the
            paper's characterisation flow).
        family: Component family (skew-normal for LVF2, normal for
            Norm2).
        n_components: Number of mixture components (paper uses 2).
        config: Loop configuration; defaults to :class:`EMConfig`.
        initial: Optional warm start — either a ready mixture or a
            sequence of components (equal initial weights).

    Returns:
        An :class:`EMResult`; ``result.mixture`` components are sorted
        by ascending mean for deterministic downstream handling.

    Raises:
        FittingError: For degenerate inputs.
        ConvergenceWarningError: Only when
            ``config.require_convergence`` is set and the cap is hit.
    """
    with telemetry.span(
        "em.fit", family=family.name, n_components=n_components
    ):
        result = _fit_mixture_em_impl(
            samples, family, n_components, config=config, initial=initial
        )
    telemetry.counter_inc("em.fits")
    telemetry.observe("em.iterations", result.n_iter)
    if result.collapsed:
        telemetry.counter_inc("em.collapsed")
    if not result.converged:
        telemetry.counter_inc("em.nonconverged")
    return result


def _fit_mixture_em_impl(
    samples: np.ndarray,
    family: ComponentFamily,
    n_components: int,
    *,
    config: EMConfig | None,
    initial: Mixture | Sequence[Any] | None,
) -> EMResult:
    # An accidental (n_points, n_samples) stack would silently flatten
    # in validate_samples and fit one garbage mixture to the whole
    # grid; reject it loudly instead.
    if np.ndim(samples) > 1:
        raise FittingError(
            "fit_mixture_em expects 1-D samples, got "
            f"ndim={np.ndim(samples)}; use fit_mixture_em_batch for "
            "stacked (n_points, n_samples) grids"
        )
    data = validate_samples(samples, minimum=max(16, 8 * n_components))
    cfg = config or EMConfig()
    if n_components < 1:
        raise FittingError(f"n_components must be >= 1, got {n_components}")

    if initial is None:
        mixture = _initial_mixture(data, family, n_components, cfg)
    elif isinstance(initial, Mixture):
        mixture = initial
    else:
        count = len(initial)
        mixture = Mixture(
            tuple(1.0 / count for _ in range(count)), tuple(initial)
        )

    collapsed = mixture.n_components < n_components
    if mixture.n_components == 1:
        single = _collapse(data, family)
        return EMResult(
            single, single.loglik(data), 0, True, collapsed=True
        )

    def _log_rows(current: Mixture) -> np.ndarray:
        """Per-component weighted log densities (one pass per iter)."""
        import math

        rows = np.full((current.n_components, data.size), -np.inf)
        for row, (weight, component) in enumerate(
            zip(current.weights, current.components)
        ):
            if weight > 0.0:
                rows[row] = math.log(weight) + component.logpdf(data)
        return rows

    history: list[float] = []
    log_rows = _log_rows(mixture)
    # np.logaddexp.reduce: same math as scipy's logsumexp with far
    # less per-call overhead (this loop is the fitting hot path).
    loglik = float(np.sum(np.logaddexp.reduce(log_rows, axis=0)))
    converged = False
    iteration = 0
    for iteration in range(1, cfg.max_iter + 1):
        log_norm = np.logaddexp.reduce(log_rows, axis=0)
        responsibilities = np.exp(log_rows - log_norm)
        weights = responsibilities.mean(axis=1)

        if np.any(weights < cfg.min_weight):
            keep = weights >= cfg.min_weight
            if int(keep.sum()) <= 1:
                single = _collapse(data, family)
                return EMResult(
                    single,
                    single.loglik(data),
                    iteration,
                    True,
                    collapsed=True,
                    history=tuple(history),
                )
            responsibilities = responsibilities[keep]
            responsibilities = responsibilities / responsibilities.sum(
                axis=0, keepdims=True
            )
            weights = responsibilities.mean(axis=1)
            mixture = Mixture(
                tuple(weights / weights.sum()),
                tuple(
                    component
                    for flag, component in zip(keep, mixture.components)
                    if flag
                ),
            )
            collapsed = True

        new_components: list[Any] = []
        for row, component in enumerate(mixture.components):
            try:
                new_components.append(
                    family.fit_weighted(data, responsibilities[row])
                )
            except FittingError:
                # Keep the previous estimate if the weighted update is
                # degenerate for this iteration.
                new_components.append(component)
        weights = weights / weights.sum()
        mixture = Mixture(tuple(weights), tuple(new_components))

        log_rows = _log_rows(mixture)
        new_loglik = float(
            np.sum(np.logaddexp.reduce(log_rows, axis=0))
        )
        history.append(new_loglik)
        if abs(new_loglik - loglik) <= cfg.tol * (abs(loglik) + 1e-12):
            loglik = new_loglik
            converged = True
            break
        loglik = new_loglik

    if not converged and cfg.require_convergence:
        raise ConvergenceWarningError(
            f"EM did not converge in {cfg.max_iter} iterations "
            f"(last loglik {loglik:.6g})"
        )
    return EMResult(
        mixture.sorted_by_mean(),
        loglik,
        iteration,
        converged,
        collapsed=collapsed,
        history=tuple(history),
    )


def fit_mixture_em_batch(
    samples: np.ndarray,
    family: ComponentFamily,
    n_components: int = 2,
    *,
    config: EMConfig | None = None,
    initials: Sequence[Mixture | Sequence[Any] | None] | None = None,
    errors: str = "raise",
) -> list[EMResult | Exception]:
    """Fit one mixture per row of a ``(n_points, n_samples)`` stack.

    Bit-identical to looping :func:`fit_mixture_em` over the rows: the
    E-step (log densities, responsibilities, weights) and the weighted
    M-step moments run as batched numpy over every still-iterating row,
    with all reductions along the last axis of C-contiguous stacks so
    numpy's summation order matches the serial 1-D reductions exactly.
    Rows that satisfy the convergence criterion freeze and are
    compacted out while stragglers keep iterating.

    Any row that leaves the common lockstep path — k-means init that
    produced fewer components, a ``min_weight`` collapse, a non-
    :class:`FittingError` from the weighted update, non-finite weights
    — is *ejected*: recomputed through the serial implementation from
    its already-built initial mixture, which reproduces the serial
    result (and the serial exception) exactly.  Families without the
    batch hooks run every row through the serial path.

    Args:
        samples: 2-D stack, one row of observations per grid point.
        family: Component family (needs ``logpdf_batch`` /
            ``fit_weighted_batch`` for the vectorized path).
        n_components: Mixture size per row.
        config: Loop configuration shared by all rows.
        initials: Optional per-row warm starts, same convention as the
            serial ``initial`` argument; ``None`` entries k-means-seed.
        errors: ``"raise"`` re-raises the first failing row's error in
            row order (serial-loop semantics); ``"capture"`` returns
            the exception in that row's slot.

    Returns:
        One :class:`EMResult` per row, with captured exceptions
        interleaved when ``errors="capture"``.
    """
    if errors not in ("raise", "capture"):
        raise ValueError(f"unknown errors mode: {errors!r}")
    stack = np.asarray(samples, dtype=float)
    if stack.ndim != 2:
        raise FittingError(
            "batched samples must be a 2-D (n_points, n_samples) "
            f"array, got ndim={stack.ndim}"
        )
    stack = np.ascontiguousarray(stack)
    cfg = config or EMConfig()
    n_points = stack.shape[0]
    if initials is None:
        initial_list: list[Mixture | Sequence[Any] | None] = (
            [None] * n_points
        )
    else:
        initial_list = list(initials)
        if len(initial_list) != n_points:
            raise FittingError(
                f"initials length {len(initial_list)} does not match "
                f"{n_points} rows"
            )
    results: list[EMResult | Exception | None] = [None] * n_points

    with telemetry.span(
        "em.fit_batch",
        family=family.name,
        n_components=n_components,
        n_points=n_points,
    ):
        _fit_mixture_em_batch_impl(
            stack, family, n_components, cfg, initial_list, results
        )
    for outcome in results:
        if not isinstance(outcome, EMResult):
            continue
        telemetry.counter_inc("em.fits")
        telemetry.observe("em.iterations", outcome.n_iter)
        if outcome.collapsed:
            telemetry.counter_inc("em.collapsed")
        if not outcome.converged:
            telemetry.counter_inc("em.nonconverged")
    if errors == "raise":
        for outcome in results:
            if isinstance(outcome, Exception):
                raise outcome
    assert all(outcome is not None for outcome in results)
    return results  # type: ignore[return-value]


def _fit_mixture_em_batch_impl(
    stack: np.ndarray,
    family: ComponentFamily,
    n_components: int,
    cfg: EMConfig,
    initial_list: list[Mixture | Sequence[Any] | None],
    results: list[EMResult | Exception | None],
) -> None:
    """Fill ``results`` with one ``EMResult`` or exception per row."""
    import math

    n_points, n_samples = stack.shape
    minimum = max(16, 8 * n_components)

    def _eject(p: int, initial: Mixture) -> None:
        """Replay a row through the serial path from its built initial."""
        try:
            results[p] = _fit_mixture_em_impl(
                stack[p],
                family,
                n_components,
                config=cfg,
                initial=initial,
            )
        except Exception as error:  # captured; re-raised by the caller
            results[p] = error

    # --- per-row validation, mirroring the serial entry checks -------
    active: list[int] = []
    for p in range(n_points):
        try:
            validate_samples(stack[p], minimum=minimum)
            if n_components < 1:
                raise FittingError(
                    f"n_components must be >= 1, got {n_components}"
                )
        except FittingError as error:
            results[p] = error
            continue
        active.append(p)

    # --- initial mixtures (batched k-means where not supplied) -------
    need_seed = [p for p in active if initial_list[p] is None]
    seed_results: dict[int, KMeansResult | FittingError] = {}
    if need_seed:
        with telemetry.span(
            "kmeans.seed_batch",
            n_points=len(need_seed),
            n=int(n_samples) * len(need_seed),
        ):
            batch = kmeans_1d_batch(
                stack[np.asarray(need_seed, dtype=np.intp)],
                n_components,
                n_restarts=cfg.kmeans_restarts,
                seed=cfg.seed,
                errors="capture",
            )
        seed_results = dict(zip(need_seed, batch))
    mixtures: dict[int, Mixture] = {}
    still: list[int] = []
    for p in active:
        initial = initial_list[p]
        try:
            if initial is None:
                seeded = seed_results[p]
                if isinstance(seeded, Exception):
                    raise seeded
                mixtures[p] = _initial_from_kmeans(
                    stack[p], family, seeded
                )
            elif isinstance(initial, Mixture):
                mixtures[p] = initial
            else:
                count = len(initial)
                mixtures[p] = Mixture(
                    tuple(1.0 / count for _ in range(count)),
                    tuple(initial),
                )
        except Exception as error:
            results[p] = error
            continue
        still.append(p)

    # --- trivial / off-lockstep rows ---------------------------------
    batch_rows: list[int] = []
    for p in still:
        mixture = mixtures[p]
        if mixture.n_components == 1:
            try:
                single = _collapse(stack[p], family)
                results[p] = EMResult(
                    single,
                    single.loglik(stack[p]),
                    0,
                    True,
                    collapsed=True,
                )
            except Exception as error:
                results[p] = error
            continue
        if mixture.n_components != n_components:
            _eject(p, mixture)
            continue
        batch_rows.append(p)

    if not batch_rows:
        return
    if family.logpdf_batch is None or family.fit_weighted_batch is None:
        for p in batch_rows:
            _eject(p, mixtures[p])
        return

    # --- lockstep E/M loop with per-row convergence masking ----------
    logpdf_batch = family.logpdf_batch
    fit_weighted_batch = family.fit_weighted_batch

    def _log_rows_batch(
        mixture_list: list[Mixture], data_c: np.ndarray
    ) -> np.ndarray:
        """Batched per-component weighted log densities."""
        count = len(mixture_list)
        # math.log(weight) is the serial scalar constant; the broadcast
        # adds below are elementwise, hence lane-identical to the
        # serial per-row ``log(w) + logpdf`` add.
        if all(
            w > 0.0 for m in mixture_list for w in m.weights
        ):
            # Common case (``min_weight`` ejection keeps every lockstep
            # weight positive): one merged density call over all
            # (row, component) pairs.  Each density row is an
            # independent lane computation, so splitting the result
            # per component is bit-identical to per-component calls.
            comps = [
                m.components[k]
                for k in range(n_components)
                for m in mixture_list
            ]
            consts = np.array(
                [
                    math.log(m.weights[k])
                    for k in range(n_components)
                    for m in mixture_list
                ]
            )
            densities = logpdf_batch(
                comps, np.concatenate([data_c] * n_components)
            )
            out = consts[:, None] + densities
            rows = np.empty(
                (count, n_components, data_c.shape[1])
            )
            for k in range(n_components):
                rows[:, k, :] = out[k * count : (k + 1) * count]
            return rows
        rows = np.full((count, n_components, data_c.shape[1]), -np.inf)
        for k in range(n_components):
            pos = [
                a
                for a in range(count)
                if mixture_list[a].weights[k] > 0.0
            ]
            if not pos:
                continue
            consts = np.array(
                [math.log(mixture_list[a].weights[k]) for a in pos]
            )
            sub = data_c[np.asarray(pos, dtype=np.intp)]
            densities = logpdf_batch(
                [mixture_list[a].components[k] for a in pos], sub
            )
            rows[np.asarray(pos, dtype=np.intp), k] = (
                consts[:, None] + densities
            )
        return rows

    def _realized(mixture: Mixture) -> Mixture:
        """Swap M-step stand-ins for the real components, if any."""
        if family.realize is None:
            return mixture
        return Mixture(
            mixture.weights,
            tuple(family.realize(c) for c in mixture.components),
        )

    data_c = stack[np.asarray(batch_rows, dtype=np.intp)]
    mixtures_c = [mixtures[p] for p in batch_rows]
    idx_c = np.arange(len(batch_rows))
    histories: list[list[float]] = [[] for _ in batch_rows]
    finished: dict[int, EMResult] = {}
    ejected: set[int] = set()

    log_rows_c = _log_rows_batch(mixtures_c, data_c)
    # ufunc.reduce along axis=1 of the C-contiguous (A, K, N) stack is
    # the same sequential left fold over components the serial axis=0
    # reduce performs; the outer sum is pairwise per contiguous row.
    logliks = np.sum(np.logaddexp.reduce(log_rows_c, axis=1), axis=1)

    iteration = 0
    for iteration in range(1, cfg.max_iter + 1):
        if not mixtures_c:
            break
        log_norm = np.logaddexp.reduce(log_rows_c, axis=1)
        responsibilities = np.exp(log_rows_c - log_norm[:, None, :])
        weights_c = responsibilities.mean(axis=2)

        # Rows that would prune a component (or produced non-finite
        # weights) leave the lockstep path; the serial replay applies
        # the exact collapse/pruning semantics.
        off_path = np.any(weights_c < cfg.min_weight, axis=1) | ~np.all(
            np.isfinite(weights_c), axis=1
        )
        if np.any(off_path):
            for a in np.nonzero(off_path)[0]:
                ejected.add(int(idx_c[a]))
            keep = ~off_path
            data_c = data_c[keep]
            log_rows_c = log_rows_c[keep]
            responsibilities = responsibilities[keep]
            weights_c = weights_c[keep]
            logliks = logliks[keep]
            idx_c = idx_c[keep]
            mixtures_c = [
                m for m, flag in zip(mixtures_c, keep) if flag
            ]
            if not mixtures_c:
                break

        # One merged weighted-moment call over all (row, component)
        # pairs: every row of the stacked arrays is an independent
        # lane/row-reduction computation, so slicing the result back
        # per component is bit-identical to per-component calls.
        alive = len(mixtures_c)
        flat_updates = fit_weighted_batch(
            np.concatenate([data_c] * n_components),
            np.concatenate(
                [responsibilities[:, k, :] for k in range(n_components)]
            ),
        )
        updates = [
            flat_updates[k * alive : (k + 1) * alive]
            for k in range(n_components)
        ]
        # One batched normalize replaces the serial per-point
        # ``weights / weights.sum()``: the last-axis row reduce of the
        # C-contiguous (A, K) array is the same sequential/pairwise sum
        # as the serial 1-D ``sum()``, and the broadcast divide is
        # elementwise, so each row is bit-identical.
        norm_weights = (
            weights_c / weights_c.sum(axis=1)[:, None]
        ).tolist()
        new_mixtures: list[Mixture | None] = []
        off_mask = np.zeros(len(mixtures_c), dtype=bool)
        for a in range(len(mixtures_c)):
            components: list[Any] = []
            for k in range(n_components):
                update = updates[k][a]
                if isinstance(update, FittingError):
                    # Serial semantics: keep the previous estimate when
                    # the weighted update is degenerate this iteration.
                    components.append(mixtures_c[a].components[k])
                elif isinstance(update, Exception):
                    off_mask[a] = True
                    break
                else:
                    components.append(update)
            if off_mask[a]:
                new_mixtures.append(None)
                continue
            try:
                new_mixtures.append(
                    Mixture(tuple(norm_weights[a]), tuple(components))
                )
            except Exception:
                off_mask[a] = True
                new_mixtures.append(None)
        if np.any(off_mask):
            for a in np.nonzero(off_mask)[0]:
                ejected.add(int(idx_c[a]))
            keep = ~off_mask
            data_c = data_c[keep]
            logliks = logliks[keep]
            idx_c = idx_c[keep]
            mixtures_c = [
                m for m, flag in zip(new_mixtures, keep) if flag
            ]
        else:
            mixtures_c = [m for m in new_mixtures if m is not None]
        if not mixtures_c:
            break

        log_rows_c = _log_rows_batch(mixtures_c, data_c)
        new_logliks = np.sum(
            np.logaddexp.reduce(log_rows_c, axis=1), axis=1
        )
        # ``tolist`` converts each element exactly like ``float(x[a])``
        # in one C pass; the hoisted lists feed the bookkeeping loops.
        idx_l = idx_c.tolist()
        new_logliks_l = new_logliks.tolist()
        for a in range(len(mixtures_c)):
            histories[idx_l[a]].append(new_logliks_l[a])
        conv = np.abs(new_logliks - logliks) <= cfg.tol * (
            np.abs(logliks) + 1e-12
        )
        logliks = new_logliks
        if np.any(conv):
            for a in np.nonzero(conv)[0]:
                i = idx_l[a]
                try:
                    finished[i] = EMResult(
                        _realized(mixtures_c[a]).sorted_by_mean(),
                        new_logliks_l[a],
                        iteration,
                        True,
                        collapsed=False,
                        history=tuple(histories[i]),
                    )
                except Exception:
                    ejected.add(i)
            keep = ~conv
            data_c = data_c[keep]
            log_rows_c = log_rows_c[keep]
            logliks = logliks[keep]
            idx_c = idx_c[keep]
            mixtures_c = [
                m for m, flag in zip(mixtures_c, keep) if flag
            ]

    # --- max_iter exhausted: non-converged leftovers -----------------
    for a in range(len(mixtures_c)):
        i = int(idx_c[a])
        if cfg.require_convergence:
            results[batch_rows[i]] = ConvergenceWarningError(
                f"EM did not converge in {cfg.max_iter} iterations "
                f"(last loglik {float(logliks[a]):.6g})"
            )
            continue
        try:
            finished[i] = EMResult(
                _realized(mixtures_c[a]).sorted_by_mean(),
                float(logliks[a]),
                iteration,
                False,
                collapsed=False,
                history=tuple(histories[i]),
            )
        except Exception:
            ejected.add(i)

    for i, outcome in finished.items():
        results[batch_rows[i]] = outcome
    for i in sorted(ejected):
        _eject(batch_rows[i], mixtures[batch_rows[i]])


def concentric_initial(
    samples: np.ndarray,
    family: ComponentFamily,
    *,
    inner_mass: float = 0.6,
) -> Mixture | None:
    """Narrow-core / wide-shell initial mixture.

    K-means splits by location and therefore cannot seed *concentric*
    mixtures — the paper's Kurtosis scenario (two components with
    similar centres but different sigmas).  This initialiser fits one
    component to the central ``inner_mass`` of the sorted samples and
    the other to the tails, giving EM a starting point on the right
    basin.  Returns ``None`` when either part is degenerate.
    """
    data = np.sort(np.asarray(samples, dtype=float).ravel())
    lower = np.quantile(data, 0.5 - inner_mass / 2.0)
    upper = np.quantile(data, 0.5 + inner_mass / 2.0)
    central = data[(data >= lower) & (data <= upper)]
    outer = data[(data < lower) | (data > upper)]
    if central.size < 8 or outer.size < 8:
        return None
    try:
        components = (family.fit(central), family.fit(outer))
    except FittingError:
        return None
    return Mixture((inner_mass, 1.0 - inner_mass), components)


def fit_mixture_em_multi(
    samples: np.ndarray,
    family: ComponentFamily,
    n_components: int = 2,
    *,
    config: EMConfig | None = None,
    extra_initials: Sequence[Mixture] = (),
) -> EMResult:
    """Multi-start EM: k-means, concentric, and caller-supplied starts.

    Runs :func:`fit_mixture_em` from every viable initialisation and
    returns the highest-likelihood result.  This is what makes LVF2
    dominate Norm2 on the paper's Minor Saddle / Kurtosis scenarios,
    where the default k-means basin is not the global one.
    """
    if np.ndim(samples) > 1:
        raise FittingError(
            "fit_mixture_em_multi expects 1-D samples, got "
            f"ndim={np.ndim(samples)}; use fit_mixture_em_batch for "
            "stacked (n_points, n_samples) grids"
        )
    data = validate_samples(samples, minimum=max(16, 8 * n_components))
    results = [
        fit_mixture_em(data, family, n_components, config=config)
    ]
    if n_components == 2:
        concentric = concentric_initial(data, family)
        if concentric is not None:
            results.append(
                fit_mixture_em(
                    data,
                    family,
                    n_components,
                    config=config,
                    initial=concentric,
                )
            )
    for initial in extra_initials:
        results.append(
            fit_mixture_em(
                data, family, n_components, config=config, initial=initial
            )
        )
    return max(results, key=lambda result: result.loglik)
