"""Generic expectation-maximisation driver for finite mixtures.

Implements the fitting loop of paper §3.2: latent responsibilities
(Eq. 6) in the E-step, component re-estimation in the M-step (Eqs. 8-9),
initialised by k-means partitioning plus per-group method-of-moments
estimates.  The driver is component-family agnostic: the same loop fits
LVF2 (skew-normal components) and Norm2 (Gaussian components), the two
mixture models compared in the paper.

The M-step is pluggable.  The default family implementations use
weighted method-of-moments updates — a conditional-maximisation step
that is fast, closed-form and stable; an optional weighted-MLE
refinement (true M-step) is available on the model classes.  Both keep
the observed-data log-likelihood (Eq. 5) non-decreasing in practice,
which the test suite checks property-style.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ConvergenceWarningError, FittingError
from repro.runtime import telemetry
from repro.stats.kmeans import kmeans_1d, split_by_labels
from repro.stats.mixtures import Mixture
from repro.stats.moments import validate_samples

__all__ = [
    "ComponentFamily",
    "EMConfig",
    "EMResult",
    "concentric_initial",
    "fit_mixture_em",
    "fit_mixture_em_multi",
]


@dataclass(frozen=True)
class ComponentFamily:
    """A parametric family usable as mixture components.

    Attributes:
        name: Family name for diagnostics ("skew-normal", "normal").
        fit: Unweighted fit used on the initial k-means groups.
        fit_weighted: Weighted fit used in the M-step; receives all
            samples plus that component's responsibilities.
    """

    name: str
    fit: Callable[[np.ndarray], Any]
    fit_weighted: Callable[[np.ndarray, np.ndarray], Any]


@dataclass(frozen=True)
class EMConfig:
    """Tuning knobs for :func:`fit_mixture_em`.

    Attributes:
        max_iter: Iteration cap for the E/M loop.
        tol: Relative log-likelihood improvement below which the loop
            is declared converged.
        min_weight: A component whose weight falls below this value is
            considered collapsed; the fit degrades gracefully to fewer
            components rather than chasing a degenerate optimum.
        kmeans_restarts: Restarts for the k-means initialiser.
        seed: Seed forwarded to k-means seeding.
        require_convergence: Raise instead of returning a best-effort
            result when the loop hits ``max_iter``.
    """

    max_iter: int = 200
    tol: float = 1e-8
    min_weight: float = 1e-4
    kmeans_restarts: int = 4
    seed: int | None = 0
    require_convergence: bool = False


@dataclass(frozen=True)
class EMResult:
    """Outcome of an EM fit.

    Attributes:
        mixture: Fitted mixture, components sorted by mean.
        loglik: Final observed-data log-likelihood (Eq. 5).
        n_iter: E/M iterations performed.
        converged: Whether the tolerance criterion was met.
        collapsed: True when a component degenerated and the result has
            fewer effective components than requested.
        history: Log-likelihood trace, one entry per iteration.
    """

    mixture: Mixture
    loglik: float
    n_iter: int
    converged: bool
    collapsed: bool = False
    history: tuple[float, ...] = field(default_factory=tuple)


def _initial_mixture(
    samples: np.ndarray,
    family: ComponentFamily,
    n_components: int,
    config: EMConfig,
) -> Mixture:
    """K-means + per-group method-of-moments initialisation (§3.2)."""
    with telemetry.span("kmeans.seed", n=int(samples.size)):
        result = kmeans_1d(
            samples,
            n_components,
            n_restarts=config.kmeans_restarts,
            seed=config.seed,
        )
    groups = split_by_labels(samples, result.labels)
    weights: list[float] = []
    components: list[Any] = []
    for group in groups:
        if group.size < 8 or np.unique(group).size < 2:
            continue
        try:
            components.append(family.fit(group))
        except FittingError:
            continue
        weights.append(group.size / samples.size)
    total = sum(weights)
    if not components or total <= 0.0:
        raise FittingError(
            f"could not initialise any {family.name} component"
        )
    return Mixture(
        tuple(weight / total for weight in weights), tuple(components)
    )


def _collapse(
    samples: np.ndarray, family: ComponentFamily
) -> Mixture:
    """Single-component fallback when the mixture degenerates."""
    return Mixture((1.0,), (family.fit(samples),))


def fit_mixture_em(
    samples: np.ndarray,
    family: ComponentFamily,
    n_components: int = 2,
    *,
    config: EMConfig | None = None,
    initial: Mixture | Sequence[Any] | None = None,
) -> EMResult:
    """Fit an ``n_components`` mixture of ``family`` by EM.

    Args:
        samples: 1-D observations (the 50k-sample MC population in the
            paper's characterisation flow).
        family: Component family (skew-normal for LVF2, normal for
            Norm2).
        n_components: Number of mixture components (paper uses 2).
        config: Loop configuration; defaults to :class:`EMConfig`.
        initial: Optional warm start — either a ready mixture or a
            sequence of components (equal initial weights).

    Returns:
        An :class:`EMResult`; ``result.mixture`` components are sorted
        by ascending mean for deterministic downstream handling.

    Raises:
        FittingError: For degenerate inputs.
        ConvergenceWarningError: Only when
            ``config.require_convergence`` is set and the cap is hit.
    """
    with telemetry.span(
        "em.fit", family=family.name, n_components=n_components
    ):
        result = _fit_mixture_em_impl(
            samples, family, n_components, config=config, initial=initial
        )
    telemetry.counter_inc("em.fits")
    telemetry.observe("em.iterations", result.n_iter)
    if result.collapsed:
        telemetry.counter_inc("em.collapsed")
    if not result.converged:
        telemetry.counter_inc("em.nonconverged")
    return result


def _fit_mixture_em_impl(
    samples: np.ndarray,
    family: ComponentFamily,
    n_components: int,
    *,
    config: EMConfig | None,
    initial: Mixture | Sequence[Any] | None,
) -> EMResult:
    data = validate_samples(samples, minimum=max(16, 8 * n_components))
    cfg = config or EMConfig()
    if n_components < 1:
        raise FittingError(f"n_components must be >= 1, got {n_components}")

    if initial is None:
        mixture = _initial_mixture(data, family, n_components, cfg)
    elif isinstance(initial, Mixture):
        mixture = initial
    else:
        count = len(initial)
        mixture = Mixture(
            tuple(1.0 / count for _ in range(count)), tuple(initial)
        )

    collapsed = mixture.n_components < n_components
    if mixture.n_components == 1:
        single = _collapse(data, family)
        return EMResult(
            single, single.loglik(data), 0, True, collapsed=True
        )

    def _log_rows(current: Mixture) -> np.ndarray:
        """Per-component weighted log densities (one pass per iter)."""
        import math

        rows = np.full((current.n_components, data.size), -np.inf)
        for row, (weight, component) in enumerate(
            zip(current.weights, current.components)
        ):
            if weight > 0.0:
                rows[row] = math.log(weight) + component.logpdf(data)
        return rows

    history: list[float] = []
    log_rows = _log_rows(mixture)
    # np.logaddexp.reduce: same math as scipy's logsumexp with far
    # less per-call overhead (this loop is the fitting hot path).
    loglik = float(np.sum(np.logaddexp.reduce(log_rows, axis=0)))
    converged = False
    iteration = 0
    for iteration in range(1, cfg.max_iter + 1):
        log_norm = np.logaddexp.reduce(log_rows, axis=0)
        responsibilities = np.exp(log_rows - log_norm)
        weights = responsibilities.mean(axis=1)

        if np.any(weights < cfg.min_weight):
            keep = weights >= cfg.min_weight
            if int(keep.sum()) <= 1:
                single = _collapse(data, family)
                return EMResult(
                    single,
                    single.loglik(data),
                    iteration,
                    True,
                    collapsed=True,
                    history=tuple(history),
                )
            responsibilities = responsibilities[keep]
            responsibilities = responsibilities / responsibilities.sum(
                axis=0, keepdims=True
            )
            weights = responsibilities.mean(axis=1)
            mixture = Mixture(
                tuple(weights / weights.sum()),
                tuple(
                    component
                    for flag, component in zip(keep, mixture.components)
                    if flag
                ),
            )
            collapsed = True

        new_components: list[Any] = []
        for row, component in enumerate(mixture.components):
            try:
                new_components.append(
                    family.fit_weighted(data, responsibilities[row])
                )
            except FittingError:
                # Keep the previous estimate if the weighted update is
                # degenerate for this iteration.
                new_components.append(component)
        weights = weights / weights.sum()
        mixture = Mixture(tuple(weights), tuple(new_components))

        log_rows = _log_rows(mixture)
        new_loglik = float(
            np.sum(np.logaddexp.reduce(log_rows, axis=0))
        )
        history.append(new_loglik)
        if abs(new_loglik - loglik) <= cfg.tol * (abs(loglik) + 1e-12):
            loglik = new_loglik
            converged = True
            break
        loglik = new_loglik

    if not converged and cfg.require_convergence:
        raise ConvergenceWarningError(
            f"EM did not converge in {cfg.max_iter} iterations "
            f"(last loglik {loglik:.6g})"
        )
    return EMResult(
        mixture.sorted_by_mean(),
        loglik,
        iteration,
        converged,
        collapsed=collapsed,
        history=tuple(history),
    )


def concentric_initial(
    samples: np.ndarray,
    family: ComponentFamily,
    *,
    inner_mass: float = 0.6,
) -> Mixture | None:
    """Narrow-core / wide-shell initial mixture.

    K-means splits by location and therefore cannot seed *concentric*
    mixtures — the paper's Kurtosis scenario (two components with
    similar centres but different sigmas).  This initialiser fits one
    component to the central ``inner_mass`` of the sorted samples and
    the other to the tails, giving EM a starting point on the right
    basin.  Returns ``None`` when either part is degenerate.
    """
    data = np.sort(np.asarray(samples, dtype=float).ravel())
    lower = np.quantile(data, 0.5 - inner_mass / 2.0)
    upper = np.quantile(data, 0.5 + inner_mass / 2.0)
    central = data[(data >= lower) & (data <= upper)]
    outer = data[(data < lower) | (data > upper)]
    if central.size < 8 or outer.size < 8:
        return None
    try:
        components = (family.fit(central), family.fit(outer))
    except FittingError:
        return None
    return Mixture((inner_mass, 1.0 - inner_mass), components)


def fit_mixture_em_multi(
    samples: np.ndarray,
    family: ComponentFamily,
    n_components: int = 2,
    *,
    config: EMConfig | None = None,
    extra_initials: Sequence[Mixture] = (),
) -> EMResult:
    """Multi-start EM: k-means, concentric, and caller-supplied starts.

    Runs :func:`fit_mixture_em` from every viable initialisation and
    returns the highest-likelihood result.  This is what makes LVF2
    dominate Norm2 on the paper's Minor Saddle / Kurtosis scenarios,
    where the default k-means basin is not the global one.
    """
    data = validate_samples(samples, minimum=max(16, 8 * n_components))
    results = [
        fit_mixture_em(data, family, n_components, config=config)
    ]
    if n_components == 2:
        concentric = concentric_initial(data, family)
        if concentric is not None:
            results.append(
                fit_mixture_em(
                    data,
                    family,
                    n_components,
                    config=config,
                    initial=concentric,
                )
            )
    for initial in extra_initials:
        results.append(
            fit_mixture_em(
                data, family, n_components, config=config, initial=initial
            )
        )
    return max(results, key=lambda result: result.loglik)
